//! Criterion micro-benchmarks for the running-time figure (Fig. 4b) and
//! the online mechanism's per-round overhead.
//!
//! Run with `cargo bench -p edge-bench`. The paper reports SSAM staying
//! under 100 ms up to 75 microservices with linear growth; these benches
//! reproduce that measurement rigorously (warm-up, outlier rejection)
//! where the `fig4b` binary gives the quick table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edge_auction::bid::Bid;
use edge_auction::msoa::MsoaConfig;
use edge_auction::ssam::{run_ssam, run_ssam_reference, SsamConfig};
use edge_auction::variants::{run_variant, MsoaVariant};
use edge_auction::wsp::WspInstance;
use edge_bench::scenario::{multi_round_instance, single_round_instance};
use edge_common::id::{BidId, MicroserviceId};
use edge_common::rng::derive_rng;
use edge_workload::params::PaperParams;
use rand::Rng;

fn bench_ssam(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssam");
    for s in [25usize, 50, 75] {
        for req in [100u64, 200] {
            let params = PaperParams::default()
                .with_microservices(s)
                .with_requests(req);
            let mut rng = derive_rng(42, "bench-ssam");
            let inst = single_round_instance(&params, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("req{req}"), s),
                &inst,
                |b, inst| b.iter(|| run_ssam(inst, &SsamConfig::default()).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_msoa(c: &mut Criterion) {
    let mut group = c.benchmark_group("msoa");
    group.sample_size(20);
    for s in [25usize, 50, 75] {
        let params = PaperParams::default().with_microservices(s);
        let mut rng = derive_rng(42, "bench-msoa");
        let inst = multi_round_instance(&params, 0.25, &mut rng);
        group.bench_with_input(BenchmarkId::new("T10", s), &inst, |b, inst| {
            b.iter(|| run_variant(inst, &MsoaConfig::default(), MsoaVariant::Plain).unwrap())
        });
    }
    group.finish();
}

fn bench_offline_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_dp");
    for s in [25usize, 75] {
        let params = PaperParams::default().with_microservices(s);
        let mut rng = derive_rng(42, "bench-dp");
        let inst = single_round_instance(&params, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(s), &inst, |b, inst| {
            b.iter(|| inst.to_group_cover().solve_exact().unwrap())
        });
    }
    group.finish();
}

/// A wide single-round instance: `n` sellers × 2 alternative bids, with
/// a fixed small demand so the winner count (and hence the payment
/// replays both implementations share) stays constant while the
/// candidate population scales. This isolates the part the heap
/// rework changes: the reference re-scans all `n` sellers per selection
/// step (O(W·n)), the heap pops from a priority queue (O(n + W log n)).
fn wide_instance(n: usize) -> WspInstance {
    let mut rng = derive_rng(7, "bench-heap-vs-ref");
    let bids: Vec<Bid> = (0..n)
        .flat_map(|s| (0..2usize).map(move |j| (s, j)))
        .map(|(s, j)| {
            let amount = rng.gen_range(1u64..10);
            let unit: f64 = rng.gen_range(8.0..20.0);
            Bid::new(
                MicroserviceId::new(s),
                BidId::new(j),
                amount,
                unit * amount as f64,
            )
            .unwrap()
        })
        .collect();
    WspInstance::new(60, bids).unwrap()
}

/// The tentpole measurement: heap-based SSAM vs the seed's scan
/// reference at n ∈ {100, 1k, 10k} sellers. The acceptance bar is the
/// heap strictly faster at n = 10k.
fn bench_heap_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssam_heap_vs_reference");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let inst = wide_instance(n);
        group.bench_with_input(BenchmarkId::new("heap", n), &inst, |b, inst| {
            b.iter(|| run_ssam(inst, &SsamConfig::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &inst, |b, inst| {
            b.iter(|| run_ssam_reference(inst, &SsamConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ssam,
    bench_msoa,
    bench_offline_dp,
    bench_heap_vs_reference
);
criterion_main!(benches);
