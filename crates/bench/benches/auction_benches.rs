//! Criterion micro-benchmarks for the running-time figure (Fig. 4b) and
//! the online mechanism's per-round overhead.
//!
//! Run with `cargo bench -p edge-bench`. The paper reports SSAM staying
//! under 100 ms up to 75 microservices with linear growth; these benches
//! reproduce that measurement rigorously (warm-up, outlier rejection)
//! where the `fig4b` binary gives the quick table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edge_auction::msoa::MsoaConfig;
use edge_auction::ssam::{run_ssam, SsamConfig};
use edge_auction::variants::{run_variant, MsoaVariant};
use edge_bench::scenario::{multi_round_instance, single_round_instance};
use edge_common::rng::derive_rng;
use edge_workload::params::PaperParams;

fn bench_ssam(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssam");
    for s in [25usize, 50, 75] {
        for req in [100u64, 200] {
            let params = PaperParams::default().with_microservices(s).with_requests(req);
            let mut rng = derive_rng(42, "bench-ssam");
            let inst = single_round_instance(&params, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("req{req}"), s),
                &inst,
                |b, inst| b.iter(|| run_ssam(inst, &SsamConfig::default()).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_msoa(c: &mut Criterion) {
    let mut group = c.benchmark_group("msoa");
    group.sample_size(20);
    for s in [25usize, 50, 75] {
        let params = PaperParams::default().with_microservices(s);
        let mut rng = derive_rng(42, "bench-msoa");
        let inst = multi_round_instance(&params, 0.25, &mut rng);
        group.bench_with_input(BenchmarkId::new("T10", s), &inst, |b, inst| {
            b.iter(|| run_variant(inst, &MsoaConfig::default(), MsoaVariant::Plain).unwrap())
        });
    }
    group.finish();
}

fn bench_offline_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_dp");
    for s in [25usize, 75] {
        let params = PaperParams::default().with_microservices(s);
        let mut rng = derive_rng(42, "bench-dp");
        let inst = single_round_instance(&params, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(s), &inst, |b, inst| {
            b.iter(|| inst.to_group_cover().solve_exact().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssam, bench_msoa, bench_offline_dp);
criterion_main!(benches);
