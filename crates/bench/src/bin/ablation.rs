//! Ablation: SSAM's price-per-marginal-unit ranking vs the §I baselines
//! (fixed pricing, random selection, total-price greedy). Not a paper
//! figure — this backs DESIGN.md's claim that the ranking rule is the
//! load-bearing design choice.

use edge_bench::runner::{ablation_mechanisms, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = ablation_mechanisms(seeds);

    println!("Ablation — mechanisms compared (mean over {seeds} seeds)\n");
    let mut table = Table::new(["mechanism", "|S|", "social cost", "payment", "coverage"]);
    for r in &rows {
        table.push([
            r.mechanism.clone(),
            r.microservices.to_string(),
            f3(r.mean_social_cost),
            f3(r.mean_payment),
            f3(r.coverage_rate),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
