//! Figure 3(a): SSAM performance ratio vs number of microservices, for
//! J ∈ {1, 2} bids per seller.

use edge_bench::runner::{fig3a, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = fig3a(seeds);

    println!("Figure 3(a) — SSAM performance ratio (mean over {seeds} seeds)\n");
    let mut table = Table::new(["J", "|S|", "ratio", "certified π"]);
    for r in &rows {
        table.push([
            r.bids_per_seller.to_string(),
            r.microservices.to_string(),
            f3(r.mean_ratio),
            f3(r.mean_certified_pi),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
