//! Figure 3(a), set-cover form: SSAM's ratio over the paper's *general*
//! per-buyer formulation (ILP 7), where the greedy gap grows with the
//! population as the paper plots.

use edge_bench::runner::{fig3a_setcover, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = fig3a_setcover(seeds);

    println!("Figure 3(a), set-cover form — greedy/optimal ratio (mean over {seeds} seeds)\n");
    let mut table = Table::new(["J", "|S|", "ratio", "samples"]);
    for r in &rows {
        table.push([
            r.bids_per_seller.to_string(),
            r.microservices.to_string(),
            f3(r.mean_ratio),
            r.samples.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
