//! Figure 3(b): SSAM social cost, total payment, and optimal social cost
//! vs number of microservices, for 100 vs 200 requests per round.

use edge_bench::runner::{fig3b, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = fig3b(seeds);

    println!("Figure 3(b) — SSAM cost series (mean over {seeds} seeds)\n");
    let mut table = Table::new(["requests", "|S|", "social cost", "payment", "optimal"]);
    for r in &rows {
        table.push([
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.social_cost),
            f3(r.total_payment),
            f3(r.optimal),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
