//! Figure 4(a): per-winning-bid payment vs actual price (individual
//! rationality, Theorem 5, made visible).

use edge_bench::runner::fig4a;
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let rows = fig4a(seed);

    println!("Figure 4(a) — payment vs price per winning bid (seed {seed})\n");
    let mut table = Table::new(["winner", "price", "payment", "payment ≥ price"]);
    for r in &rows {
        table.push([
            r.winner.to_string(),
            f3(r.price),
            f3(r.payment),
            (r.payment >= r.price - 1e-9).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
