//! Figure 4(b): SSAM running time vs number of microservices and request
//! volume. The paper reports sub-100 ms with roughly linear growth; see
//! also the Criterion benchmarks (`cargo bench -p edge-bench`).

use edge_bench::runner::{fig4b, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = fig4b(seeds);

    println!("Figure 4(b) — SSAM running time (mean over {seeds} seeds)\n");
    let mut table = Table::new(["requests", "|S|", "runtime (µs)"]);
    for r in &rows {
        table.push([
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.mean_runtime_us),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
