//! Figure 5(a): MSOA performance ratio vs number of microservices and
//! request volume, comparing MSOA with MSOA-DA, MSOA-RC, and MSOA-OA.

use edge_bench::runner::{fig5a, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = fig5a(seeds);

    println!("Figure 5(a) — MSOA variants, online/offline ratio (mean over {seeds} seeds)\n");
    let mut table = Table::new(["variant", "requests", "|S|", "ratio", "infeasible rounds"]);
    for r in &rows {
        table.push([
            r.variant.clone(),
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.mean_ratio),
            f3(r.mean_infeasible_rounds),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
