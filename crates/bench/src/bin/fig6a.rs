//! Figure 6(a): MSOA performance ratio vs number of rounds T, for
//! J ∈ {1, 2, 4} bids per seller.

use edge_bench::runner::{fig6a, DEFAULT_SEEDS};
use edge_bench::table::{f3, to_json, Table};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEEDS);
    let rows = fig6a(seeds);

    println!("Figure 6(a) — MSOA ratio vs rounds T and bids J (mean over {seeds} seeds)\n");
    let mut table = Table::new(["J", "T", "ratio"]);
    for r in &rows {
        table.push([
            r.bids_per_seller.to_string(),
            r.rounds.to_string(),
            f3(r.mean_ratio),
        ]);
    }
    println!("{}", table.render());
    println!("json:\n{}", to_json(&rows));
}
