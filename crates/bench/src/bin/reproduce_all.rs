//! One-shot reproduction: runs every figure runner and the ablation,
//! printing each table and writing the raw JSON series to `results/`.
//!
//! ```bash
//! cargo run -p edge-bench --release --bin reproduce_all [seeds] [--threads N]
//! ```
//!
//! `--threads N` sizes the worker pool the sweeps fan out on (`0` or
//! absent = one worker per core). The tables are byte-identical at any
//! thread count.

use edge_bench::{parallel, report, runner};
use std::fs;
use std::path::Path;
use std::process::exit;

fn save(name: &str, json: &str) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.json")), json);
    }
}

fn main() {
    let mut seeds = runner::DEFAULT_SEEDS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" | "--parallel" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: {arg} expects a non-negative integer");
                    exit(2);
                };
                parallel::set_threads(n);
            }
            _ => match arg.parse::<u64>() {
                Ok(n) => seeds = n,
                Err(_) => {
                    eprintln!("usage: reproduce_all [seeds] [--threads N]");
                    exit(2);
                }
            },
        }
    }
    println!(
        "reproducing all figures with {seeds} seeds per point ({} worker threads)\n",
        parallel::current_threads()
    );

    for name in report::FIGURES {
        let fig = report::render_figure(name, seeds).expect("FIGURES entries render");
        println!("{}\n{}", fig.title, fig.table);
        save(fig.name, &fig.json);
    }

    println!("raw series written to results/*.json");
}
