//! One-shot reproduction: runs every figure runner and the ablation,
//! printing each table and writing the raw JSON series to `results/`.
//!
//! ```bash
//! cargo run -p edge-bench --release --bin reproduce_all [seeds]
//! ```

use edge_bench::runner;
use edge_bench::table::{f3, to_json, Table};
use std::fs;
use std::path::Path;

fn save(name: &str, json: &str) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let _ = fs::write(dir.join(format!("{name}.json")), json);
    }
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(runner::DEFAULT_SEEDS);
    println!("reproducing all figures with {seeds} seeds per point\n");

    // Fig 3(a)
    let rows = runner::fig3a(seeds);
    let mut t = Table::new(["J", "|S|", "ratio", "certified π"]);
    for r in &rows {
        t.push([
            r.bids_per_seller.to_string(),
            r.microservices.to_string(),
            f3(r.mean_ratio),
            f3(r.mean_certified_pi),
        ]);
    }
    println!("Figure 3(a) — SSAM ratio\n{}", t.render());
    save("fig3a", &to_json(&rows));

    // Fig 3(a) set-cover form
    let rows = runner::fig3a_setcover(seeds);
    let mut t = Table::new(["J", "|S|", "ratio", "samples"]);
    for r in &rows {
        t.push([
            r.bids_per_seller.to_string(),
            r.microservices.to_string(),
            f3(r.mean_ratio),
            r.samples.to_string(),
        ]);
    }
    println!("Figure 3(a), set-cover form\n{}", t.render());
    save("fig3a_setcover", &to_json(&rows));

    // Fig 3(b)
    let rows = runner::fig3b(seeds);
    let mut t = Table::new(["req", "|S|", "social", "payment", "optimal"]);
    for r in &rows {
        t.push([
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.social_cost),
            f3(r.total_payment),
            f3(r.optimal),
        ]);
    }
    println!("Figure 3(b) — SSAM costs\n{}", t.render());
    save("fig3b", &to_json(&rows));

    // Fig 4(a)
    let rows = runner::fig4a(1);
    let mut t = Table::new(["winner", "price", "payment"]);
    for r in &rows {
        t.push([r.winner.to_string(), f3(r.price), f3(r.payment)]);
    }
    println!("Figure 4(a) — payment vs price\n{}", t.render());
    save("fig4a", &to_json(&rows));

    // Fig 4(b)
    let rows = runner::fig4b(seeds);
    let mut t = Table::new(["req", "|S|", "runtime (µs)"]);
    for r in &rows {
        t.push([
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.mean_runtime_us),
        ]);
    }
    println!("Figure 4(b) — running time\n{}", t.render());
    save("fig4b", &to_json(&rows));

    // Fig 5(a)
    let rows = runner::fig5a(seeds);
    let mut t = Table::new(["variant", "req", "|S|", "ratio", "uncovered"]);
    for r in &rows {
        t.push([
            r.variant.clone(),
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.mean_ratio),
            f3(r.mean_infeasible_rounds),
        ]);
    }
    println!("Figure 5(a) — MSOA variants\n{}", t.render());
    save("fig5a", &to_json(&rows));

    // Fig 6(a)
    let rows = runner::fig6a(seeds);
    let mut t = Table::new(["J", "T", "ratio"]);
    for r in &rows {
        t.push([r.bids_per_seller.to_string(), r.rounds.to_string(), f3(r.mean_ratio)]);
    }
    println!("Figure 6(a) — MSOA ratio vs T, J\n{}", t.render());
    save("fig6a", &to_json(&rows));

    // Fig 6(b)
    let rows = runner::fig6b(seeds);
    let mut t = Table::new(["req", "|S|", "social", "payment", "optimal"]);
    for r in &rows {
        t.push([
            r.requests.to_string(),
            r.microservices.to_string(),
            f3(r.social_cost),
            f3(r.total_payment),
            f3(r.optimal),
        ]);
    }
    println!("Figure 6(b) — MSOA costs\n{}", t.render());
    save("fig6b", &to_json(&rows));

    // Ablation
    let rows = runner::ablation_mechanisms(seeds);
    let mut t = Table::new(["mechanism", "|S|", "social", "payment", "coverage"]);
    for r in &rows {
        t.push([
            r.mechanism.clone(),
            r.microservices.to_string(),
            f3(r.mean_social_cost),
            f3(r.mean_payment),
            f3(r.coverage_rate),
        ]);
    }
    println!("Ablation — mechanisms\n{}", t.render());
    save("ablation", &to_json(&rows));

    println!("raw series written to results/*.json");
}
