//! The `fed-faults` benchmark (`BENCH_federation.json`): federation
//! outcomes as the network degrades.
//!
//! Not a paper figure — the machine-readable evidence for PR 7's
//! partition-tolerant re-selling. A 3-platform federation with a
//! deliberately tight economy (so demand shortfalls actually occur)
//! runs under a grid of seeded [`NetFaultPlan`]s: message drop
//! probability × a mid-run partition of one platform × retries on/off
//! (the recovery axis). Each cell records the cross-platform fill rate,
//! total platform cost, deal/fault counters, and the combined
//! fed/net digest; because every plan is seeded, the whole report is a
//! pure function of its parameters, and CI diffs two independent runs.

use crate::table::Table;
use edge_auction::bid::{Bid, Seller};
use edge_auction::federation::{FederationConfig, FederationSim};
use edge_auction::msoa::{MultiRoundInstance, RoundInput};
use edge_auction::service::ServiceConfig;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::rng::derive_rng;
use edge_net::{NetFaultPlan, PartitionWindow};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Schema identifier written into `BENCH_federation.json`.
pub const FEDERATION_SCHEMA: &str = "edge-market/bench-federation/v1";

/// Drop probabilities swept (the x-axis).
pub const FED_DROPS: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

/// Platforms in the federation.
pub const FED_PLATFORMS: usize = 3;

/// One measured cell: a (drop, partition, retries) triple.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederationCell {
    /// Per-message drop probability on every link.
    pub drop_probability: f64,
    /// Whether platform 2 was partitioned away mid-run (heals later).
    pub partition: bool,
    /// Whether timed-out offers were retried (the recovery axis).
    pub retries: bool,
    /// Platforms in the run.
    pub platforms: usize,
    /// Logical ticks the run took to settle.
    pub ticks: u64,
    /// Cross-platform fill rate: filled units / deficit units.
    pub fill_rate: f64,
    /// Total platform cost: local auction payments + cross-platform
    /// purchases − resale revenue, summed over platforms.
    pub platform_cost: f64,
    /// Demand units no platform could cover locally.
    pub deficit_units: u64,
    /// Units actually bought cross-platform.
    pub filled_units: u64,
    /// Deals opened / filled / aborted / left unresolved.
    pub deals_opened: u64,
    /// Deals that completed with an acknowledged fill.
    pub deals_filled: u64,
    /// Deals given up after exhausting retries.
    pub deals_aborted: u64,
    /// Deals stuck in the commit phase at the end of the run.
    pub deals_unresolved: u64,
    /// Fills booked after the buyer had already given up (partition
    /// heal reconciliation).
    pub late_fills: u64,
    /// Offer/commit retransmissions sent.
    pub retries_sent: u64,
    /// Messages the network dropped (loss + partition).
    pub dropped_messages: u64,
    /// Messages delivered.
    pub delivered_messages: u64,
    /// Stages a partitioned platform cleared local-only.
    pub local_only_stages: u64,
    /// Combined fed-log × net-tape digest (hex) — the determinism
    /// witness CI diffs across runs and thread counts.
    pub outcome_digest: String,
}

/// The full report serialized to `BENCH_federation.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederationReport {
    /// Schema identifier ([`FEDERATION_SCHEMA`]).
    pub schema: String,
    /// Base service seed behind every cell.
    pub seed: u64,
    /// Measured cells in sweep order.
    pub cells: Vec<FederationCell>,
}

/// The tight-economy provider: per-stage demand is allowed to outrun
/// feasible supply so cross-platform deals actually occur. Seeded per
/// `(service seed, stage)` — a pure function, like every provider the
/// event-sourced service accepts.
pub fn tight_provider(config: ServiceConfig) -> impl FnMut(u64, u64) -> MultiRoundInstance {
    move |stage, rounds| {
        let mut rng = derive_rng(config.seed.wrapping_add(stage), "bench-fed");
        let n = config.microservices.max(1);
        let rounds = rounds.max(1);
        let sellers: Vec<Seller> = (0..n)
            .map(|s| Seller::new(MicroserviceId::new(s), 8, (0, rounds - 1)).expect("window"))
            .collect();
        let inputs: Vec<RoundInput> = (0..rounds)
            .map(|_| {
                let bids: Vec<Bid> = (0..n)
                    .map(|s| {
                        let amount = 1 + rng.gen_range(0..3u64);
                        let price = rng.gen_range(5.0..20.0);
                        Bid::new(MicroserviceId::new(s), BidId::new(0), amount, price)
                            .expect("valid bid")
                    })
                    .collect();
                let demand = rng.gen_range(1..=config.requests.max(1));
                RoundInput::new(demand, demand, bids)
            })
            .collect();
        MultiRoundInstance::new(sellers, inputs).expect("valid instance")
    }
}

/// The base per-platform service config for the sweep.
fn base_config(seed: u64) -> ServiceConfig {
    ServiceConfig {
        seed,
        microservices: 4,
        requests: 18,
        total_rounds: 12,
        stage_rounds: 2,
        book_cap: 256,
        demand_cap: 100_000,
    }
}

/// The seeded plan for one cell.
fn cell_plan(seed: u64, drop: f64, partition: bool) -> NetFaultPlan {
    let mut plan = NetFaultPlan::ideal(seed);
    plan.link.latency_min = 1;
    plan.link.latency_max = 3;
    plan.link.drop_probability = drop;
    plan.link.duplicate_probability = 0.05;
    plan.link.reorder_probability = 0.10;
    plan.link.reorder_max_extra = 2;
    if partition {
        // Platform 2 vanishes for a stretch of the run, then heals —
        // long enough to strand deals and force local-only clearing.
        plan.partitions.push(PartitionWindow {
            from: 4,
            until: 20,
            isolated: 2,
        });
    }
    plan
}

/// Runs one cell of the sweep.
fn run_cell(seed: u64, drop: f64, partition: bool, retries: bool) -> FederationCell {
    let mut config = FederationConfig::uniform(base_config(seed), FED_PLATFORMS);
    config.retries_enabled = retries;
    let plan = cell_plan(seed.wrapping_mul(31).wrapping_add(7), drop, partition);
    let mut sim =
        FederationSim::new(config, plan, |_, c| tight_provider(c)).expect("valid bench federation");
    let outcome = sim.run(None).expect("bench federation settles");

    let sum = |f: fn(&edge_auction::federation::NodeCounters) -> u64| -> u64 {
        outcome.nodes.iter().map(|n| f(&n.counters)).sum()
    };
    FederationCell {
        drop_probability: drop,
        partition,
        retries,
        platforms: FED_PLATFORMS,
        ticks: outcome.ticks,
        fill_rate: outcome.fill_rate(),
        platform_cost: outcome.platform_cost(),
        deficit_units: sum(|c| c.deficit_units),
        filled_units: sum(|c| c.filled_units),
        deals_opened: sum(|c| c.deals_opened),
        deals_filled: sum(|c| c.deals_filled),
        deals_aborted: sum(|c| c.deals_aborted),
        deals_unresolved: sum(|c| c.deals_unresolved),
        late_fills: sum(|c| c.late_fills),
        retries_sent: sum(|c| c.retries),
        dropped_messages: outcome.net.dropped_loss + outcome.net.dropped_partition,
        delivered_messages: outcome.net.delivered,
        local_only_stages: sum(|c| c.local_only_stages),
        outcome_digest: outcome.digest_hex(),
    }
}

/// Runs the full fed-faults sweep: [`FED_DROPS`] × partition on/off ×
/// retries on/off, at the given base seed.
pub fn run_federation_sweep(seed: u64) -> FederationReport {
    let mut cells = Vec::new();
    let mut cell_us = Vec::new();
    {
        // Keep the sims' interior spans out of the tree; their measured
        // time is attributed once, through the absorb below.
        let _quiet = edge_telemetry::spans::suppress_tree();
        for &drop in &FED_DROPS {
            for &partition in &[false, true] {
                for &retries in &[true, false] {
                    let start = std::time::Instant::now();
                    cells.push(run_cell(seed, drop, partition, retries));
                    cell_us.push(start.elapsed().as_micros() as u64);
                }
            }
        }
    }
    crate::profile::set_stage("fed-faults");
    crate::profile::record_sweep(FED_DROPS.len(), 4, &cell_us);
    FederationReport {
        schema: FEDERATION_SCHEMA.to_string(),
        seed,
        cells,
    }
}

impl FederationReport {
    /// Renders the human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "drop",
            "partition",
            "retries",
            "fill rate",
            "cost",
            "deficit",
            "filled",
            "aborted",
            "late",
            "dropped msgs",
            "digest",
        ]);
        for c in &self.cells {
            t.push([
                format!("{:.2}", c.drop_probability),
                if c.partition { "on" } else { "off" }.to_owned(),
                if c.retries { "on" } else { "off" }.to_owned(),
                format!("{:.3}", c.fill_rate),
                format!("{:.1}", c.platform_cost),
                c.deficit_units.to_string(),
                c.filled_units.to_string(),
                c.deals_aborted.to_string(),
                c.late_fills.to_string(),
                c.dropped_messages.to_string(),
                c.outcome_digest.clone(),
            ]);
        }
        t.render()
    }

    /// Serializes the report as pretty JSON (the
    /// `BENCH_federation.json` payload).
    pub fn to_json(&self) -> String {
        crate::table::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_deals_flow() {
        let a = run_federation_sweep(7);
        let b = run_federation_sweep(7);
        assert_eq!(a.to_json(), b.to_json(), "seeded sweep must reproduce");
        assert_eq!(a.cells.len(), FED_DROPS.len() * 4);
        // On the clean network with retries, deals open and fill.
        let clean = &a.cells[0];
        assert_eq!(clean.drop_probability, 0.0);
        assert!(clean.deals_opened > 0, "tight economy must open deals");
        assert!(clean.fill_rate > 0.0, "clean network must fill deals");
        assert!(a.render().contains("fill rate"));
        assert!(a.to_json().contains(FEDERATION_SCHEMA));
    }

    #[test]
    fn partition_forces_local_only_clearing() {
        let report = run_federation_sweep(7);
        let partitioned: Vec<_> = report.cells.iter().filter(|c| c.partition).collect();
        assert!(
            partitioned.iter().any(|c| c.local_only_stages > 0),
            "a partitioned platform must clear some stages local-only"
        );
        assert!(
            report
                .cells
                .iter()
                .any(|c| c.partition && c.dropped_messages > 0),
            "partitions must drop messages"
        );
    }
}
