//! Benchmark harness regenerating every evaluation figure of
//! *Incentivizing Microservices for Online Resource Sharing in Edge
//! Clouds* (ICDCS 2019).
//!
//! * [`scenario`] — instance generators from the §V-A parameters,
//!   including the fully integrated workload → simulator → demand
//!   estimator → auction pipeline;
//! * [`runner`] — one sweep per figure (3a, 3b, 4a, 4b, 5a, 6a, 6b),
//!   parallel over scenario points × seeds, returning typed
//!   serializable rows;
//! * [`parallel`] — the bounded, order-preserving worker pool the
//!   runners fan out on (thread count settable per process);
//! * [`profile`] — ambient sweep self-profiling: an installed
//!   `edge-telemetry` collector receives a deterministic `sweep` event
//!   plus wall-clock cell-latency aggregates per figure sweep;
//! * [`report`] — the single rendering path shared by `reproduce_all`
//!   and the CLI's `reproduce` command;
//! * [`scale`] — the non-figure scale benchmark (`BENCH_scale.json`):
//!   MSOA at up to 100k sellers, pricing phase timed per thread count;
//! * [`federation`] — the fed-faults benchmark (`BENCH_federation.json`):
//!   cross-platform fill rate and platform cost as seeded network
//!   faults (drops, partitions) degrade the federation;
//! * [`table`] — fixed-width table rendering and JSON export.
//!
//! Each figure has a matching binary: `cargo run -p edge-bench --release
//! --bin fig3a` etc. Criterion micro-benchmarks for the running-time
//! figure live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod federation;
pub mod parallel;
pub mod profile;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scenario;
pub mod table;

pub use runner::DEFAULT_SEEDS;
