//! Bounded, deterministic fork–join parallelism for scenario sweeps.
//!
//! [`par_map`] fans a work list out over a fixed-size pool of scoped
//! worker threads (crossbeam) and merges per-thread results back into
//! **input order**, so the output is byte-identical regardless of the
//! thread count or OS scheduling — `tests/determinism.rs` locks this
//! down by diffing whole summary tables at 1 and 4 threads.
//!
//! The pool size is an ambient, process-wide setting ([`set_threads`])
//! so binaries can plumb a `--threads`/`--parallel` flag once instead of
//! threading a parameter through every figure runner.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Ambient pool size; 0 = auto (one worker per available core).
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads "auto" resolves to on this machine.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Sets the ambient worker-pool size for subsequent [`par_map_auto`]
/// calls. `0` restores auto (per-core) sizing.
pub fn set_threads(threads: usize) {
    THREADS.store(threads, Ordering::SeqCst);
}

/// The ambient worker-pool size (resolving auto to the core count).
pub fn current_threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => available_threads(),
        n => n,
    }
}

/// Applies `f` to every item on a pool of `threads` workers and returns
/// the results **in input order**.
///
/// Work is distributed dynamically (an atomic cursor over the items), so
/// uneven item costs do not idle the pool; each worker tags results
/// with their item index and the merge scatters them back into order
/// after the join. With `threads <= 1` (or one item) everything runs on
/// the caller's thread.
///
/// # Panics
///
/// Panics if a worker panics (the worker's panic is propagated).
pub fn par_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<Vec<(usize, U)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let items = &items;
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move |_| {
                    let mut got = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break got;
                        }
                        got.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker does not panic"))
            .collect()
    })
    .expect("scope does not panic");

    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, u) in tagged.drain(..).flatten() {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index was claimed"))
        .collect()
}

/// [`par_map`] with the ambient pool size ([`current_threads`]).
pub fn par_map_auto<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = current_threads();
    par_map(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..100u64).collect(), 4, |&x| x * x);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let serial = par_map((0..57u64).collect(), 1, |&x| {
            x.wrapping_mul(0x9e3779b9) >> 3
        });
        let parallel = par_map((0..57u64).collect(), 8, |&x| {
            x.wrapping_mul(0x9e3779b9) >> 3
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(Vec::<u64>::new(), 4, |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(vec![7u64], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map(vec![1u64, 2], 16, |&x| x), vec![1, 2]);
    }

    #[test]
    fn ambient_setting_round_trips() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert_eq!(current_threads(), available_threads());
    }
}
