//! Ambient self-profiling for the figure sweeps.
//!
//! Mirrors the [`crate::parallel`] ambient-setting pattern: a binary
//! installs a shared [`Collector`] once ([`install`]) instead of
//! threading one through every runner, and [`crate::runner`]'s
//! `par_sweep` reports into it when — and only when — one is installed.
//!
//! Two kinds of records come out of a sweep:
//!
//! * a **deterministic** `sweep` event (stage, points, seeds, cells) —
//!   pure input-shape facts, byte-identical at any thread count;
//! * a `sweep.profile` **profile** entry with wall-clock aggregates and
//!   a log-bucketed cell-latency histogram ([`LogHistogram`]) — kept
//!   out of the deterministic section by construction, since timings
//!   vary run to run.
//!
//! Profiling never touches the work closures' results, so summary
//! tables stay byte-identical with profiling on or off — the
//! determinism regression test relies on this.

use edge_telemetry::{Collector, Level, LogHistogram, Sink, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Fast-path flag: `true` iff a collector is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed collector and the current stage label.
static STATE: RwLock<Option<State>> = RwLock::new(None);

struct State {
    collector: Arc<Collector>,
    stage: &'static str,
}

/// Installs the ambient profiling collector for subsequent sweeps.
/// Replaces any previously installed one.
pub fn install(collector: Arc<Collector>) {
    *STATE.write().expect("profile lock") = Some(State {
        collector,
        stage: "",
    });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the ambient collector; sweeps stop reporting.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *STATE.write().expect("profile lock") = None;
}

/// Whether a collector is currently installed (the sweep fast path).
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Labels subsequent sweeps with a stage name (the figure being
/// reproduced). A no-op when no collector is installed.
pub fn set_stage(stage: &'static str) {
    if let Some(state) = STATE.write().expect("profile lock").as_mut() {
        state.stage = stage;
    }
}

/// Reports one completed sweep: `points × seeds` cells whose wall-clock
/// times (µs) are in `cell_us`. Emits the deterministic `sweep` event
/// and the wall-clock `sweep.profile` entry. A no-op when no collector
/// is installed.
pub fn record_sweep(points: usize, seeds: u64, cell_us: &[u64]) {
    let guard = STATE.read().expect("profile lock");
    let Some(state) = guard.as_ref() else {
        return;
    };
    state.collector.emit(
        Level::Info,
        "sweep",
        vec![
            ("stage", Value::from(state.stage)),
            ("points", Value::from(points)),
            ("seeds", Value::from(seeds)),
            ("cells", Value::from(cell_us.len())),
        ],
    );
    let hist = LogHistogram::new();
    let mut total: u64 = 0;
    let mut max: u64 = 0;
    for &us in cell_us {
        hist.record(us);
        total += us;
        max = max.max(us);
    }
    let mean = if cell_us.is_empty() {
        0.0
    } else {
        total as f64 / cell_us.len() as f64
    };
    // The histogram, flattened to "floor:count" pairs — compact enough
    // for a single JSONL field, detailed enough to see the tail.
    let buckets = hist
        .snapshot()
        .into_iter()
        .filter(|&(_, count)| count > 0)
        .map(|(floor, count)| format!("{floor}:{count}"))
        .collect::<Vec<_>>()
        .join(" ");
    state.collector.record_profile(
        "sweep.profile",
        vec![
            ("stage", Value::from(state.stage)),
            ("cells", Value::from(cell_us.len())),
            ("total_us", Value::from(total)),
            ("mean_us", Value::from(mean)),
            ("max_us", Value::from(max)),
            ("cell_us_hist", Value::from(buckets)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The ambient state is process-wide; serialize the tests touching it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_record_is_a_noop() {
        let _g = GUARD.lock().unwrap();
        uninstall();
        assert!(!is_enabled());
        record_sweep(3, 2, &[1, 2, 3]); // must not panic
    }

    #[test]
    fn install_records_deterministic_sweep_and_profile() {
        let _g = GUARD.lock().unwrap();
        let collector = Arc::new(Collector::new());
        install(collector.clone());
        set_stage("fig-test");
        record_sweep(2, 3, &[10, 20, 4000, 1, 0, 7]);
        uninstall();

        let events = collector.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "sweep");
        assert_eq!(
            events[0].field("stage").and_then(Value::as_str),
            Some("fig-test")
        );
        assert_eq!(events[0].field("cells").and_then(Value::as_f64), Some(6.0));

        let jsonl = collector.to_jsonl();
        assert!(jsonl.contains("\"section\":\"profile\""));
        assert!(jsonl.contains("sweep.profile"));
        assert!(jsonl.contains("\"total_us\":4038"));
    }
}
