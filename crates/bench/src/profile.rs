//! Ambient self-profiling for the figure sweeps, built on the span
//! layer ([`edge_telemetry::spans`]).
//!
//! Mirrors the [`crate::parallel`] ambient-setting pattern: a binary
//! installs a shared [`Collector`] once ([`install`]) instead of
//! threading one through every runner, and [`crate::runner`]'s
//! `par_sweep` reports into it when — and only when — one is installed.
//!
//! Installing also installs the ambient span profiler, so a `--trace`d
//! bench run carries the same two-sided records as the engine:
//!
//! * a **deterministic** `sweep` event (stage, points, seeds, cells) —
//!   pure input-shape facts, byte-identical at any thread count — plus
//!   the deterministic `span` events flushed on [`uninstall`];
//! * `span.profile` entries in the `"section":"profile"` tail carrying
//!   wall-clock totals. Cell latencies measured on worker threads are
//!   attributed to the stage's span via [`edge_telemetry::spans::absorb`],
//!   replacing the module's former hand-rolled aggregate records; when
//!   live feeding is on they also land in the `edge_profile_stage_ns`
//!   summary, whose log buckets subsume the old inline histogram.
//!
//! Profiling never touches the work closures' results, so summary
//! tables stay byte-identical with profiling on or off — the
//! determinism regression test relies on this.

use edge_telemetry::{spans, Collector, Level, Sink, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Fast-path flag: `true` iff a collector is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed collector and the current stage label.
static STATE: RwLock<Option<State>> = RwLock::new(None);

struct State {
    collector: Arc<Collector>,
    stage: &'static str,
}

/// Installs the ambient profiling collector (and the span profiler) for
/// subsequent sweeps. Replaces any previously installed one.
pub fn install(collector: Arc<Collector>) {
    *STATE.write().expect("profile lock") = Some(State {
        collector,
        stage: "",
    });
    spans::install();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Removes the ambient collector; sweeps stop reporting. The span tree
/// accumulated since [`install`] is flushed into the collector first —
/// deterministic `span` events, then `span.profile` tail entries.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    let state = STATE.write().expect("profile lock").take();
    if let (Some(tree), Some(state)) = (spans::uninstall(), state) {
        tree.flush_into(&state.collector);
    }
}

/// Whether a collector is currently installed (the sweep fast path).
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Labels subsequent sweeps with a stage name (the figure being
/// reproduced). A no-op when no collector is installed.
pub fn set_stage(stage: &'static str) {
    if let Some(state) = STATE.write().expect("profile lock").as_mut() {
        state.stage = stage;
    }
}

/// Reports one completed sweep: `points × seeds` cells whose wall-clock
/// times (µs) are in `cell_us`. Emits the deterministic `sweep` event
/// and attributes the measured cell time to the stage's span. A no-op
/// when no collector is installed.
pub fn record_sweep(points: usize, seeds: u64, cell_us: &[u64]) {
    let guard = STATE.read().expect("profile lock");
    let Some(state) = guard.as_ref() else {
        return;
    };
    state.collector.emit(
        Level::Info,
        "sweep",
        vec![
            ("stage", Value::from(state.stage)),
            ("points", Value::from(points)),
            ("seeds", Value::from(seeds)),
            ("cells", Value::from(cell_us.len())),
        ],
    );
    let stage = if state.stage.is_empty() {
        "sweep"
    } else {
        state.stage
    };
    let cell_ns: Vec<u64> = cell_us.iter().map(|&us| us.saturating_mul(1_000)).collect();
    spans::absorb(stage, &cell_ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The ambient state is process-wide; serialize the tests touching it.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_record_is_a_noop() {
        let _g = GUARD.lock().unwrap();
        uninstall();
        assert!(!is_enabled());
        record_sweep(3, 2, &[1, 2, 3]); // must not panic
    }

    #[test]
    fn install_records_deterministic_sweep_and_span_profile() {
        let _g = GUARD.lock().unwrap();
        let collector = Arc::new(Collector::new());
        install(collector.clone());
        set_stage("fig-test");
        record_sweep(2, 3, &[10, 20, 4000, 1, 0, 7]);
        uninstall();

        let events = collector.events();
        assert_eq!(events.len(), 2, "sweep event plus flushed span event");
        assert_eq!(events[0].name, "sweep");
        assert_eq!(
            events[0].field("stage").and_then(Value::as_str),
            Some("fig-test")
        );
        assert_eq!(events[0].field("cells").and_then(Value::as_f64), Some(6.0));
        // The flushed span carries the same deterministic shape: one
        // aggregated node, one call per cell.
        assert_eq!(events[1].name, "span");
        assert_eq!(
            events[1].field("path").and_then(Value::as_str),
            Some("fig-test")
        );
        assert_eq!(events[1].field("calls").and_then(Value::as_f64), Some(6.0));

        // Wall-clock totals live in the profile tail, not the
        // deterministic section.
        assert!(!collector.deterministic_jsonl().contains("total_ns"));
        let jsonl = collector.to_jsonl();
        assert!(jsonl.contains("\"section\":\"profile\""));
        assert!(jsonl.contains("span.profile"));
        assert!(jsonl.contains("\"total_ns\":4038000"), "{jsonl}");
    }
}
