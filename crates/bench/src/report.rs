//! Shared figure rendering for the reproduce entry points.
//!
//! Both `reproduce_all` and the CLI's `reproduce` command go through
//! [`render_figure`], so the summary tables are produced by exactly one
//! code path — which is what the determinism regression test diffs
//! across thread counts.

use crate::runner;
use crate::table::{f3, to_json, Table};

/// Every figure [`render_figure`] knows, in reproduction order.
pub const FIGURES: &[&str] = &[
    "fig3a",
    "fig3a_setcover",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig6a",
    "fig6b",
    "ablation",
    "fault-matrix",
];

/// A rendered figure: a human-readable table and the raw JSON series.
#[derive(Debug, Clone)]
pub struct RenderedFigure {
    /// Figure name (an element of [`FIGURES`]).
    pub name: &'static str,
    /// Table title line.
    pub title: &'static str,
    /// Fixed-width rendered table.
    pub table: String,
    /// JSON array of the typed rows.
    pub json: String,
}

/// Runs one figure sweep and renders its summary table. Returns `None`
/// for an unknown figure name. `seeds` is ignored by `fig4a`, which is
/// a single annotated run by construction.
pub fn render_figure(name: &str, seeds: u64) -> Option<RenderedFigure> {
    // Label the profiling stage with the interned figure name so each
    // sweep event in a `reproduce --trace` run says which figure it
    // belongs to. Unknown names bail out here, same as the match below.
    let stage: &'static str = FIGURES.iter().find(|f| **f == name)?;
    crate::profile::set_stage(stage);
    let fig = match name {
        "fig3a" => {
            let rows = runner::fig3a(seeds);
            let mut t = Table::new(["J", "|S|", "ratio", "certified π"]);
            for r in &rows {
                t.push([
                    r.bids_per_seller.to_string(),
                    r.microservices.to_string(),
                    f3(r.mean_ratio),
                    f3(r.mean_certified_pi),
                ]);
            }
            RenderedFigure {
                name: "fig3a",
                title: "Figure 3(a) — SSAM ratio",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig3a_setcover" => {
            let rows = runner::fig3a_setcover(seeds);
            let mut t = Table::new(["J", "|S|", "ratio", "samples"]);
            for r in &rows {
                t.push([
                    r.bids_per_seller.to_string(),
                    r.microservices.to_string(),
                    f3(r.mean_ratio),
                    r.samples.to_string(),
                ]);
            }
            RenderedFigure {
                name: "fig3a_setcover",
                title: "Figure 3(a), set-cover form",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig3b" => {
            let rows = runner::fig3b(seeds);
            let mut t = Table::new(["req", "|S|", "social", "payment", "optimal"]);
            for r in &rows {
                t.push([
                    r.requests.to_string(),
                    r.microservices.to_string(),
                    f3(r.social_cost),
                    f3(r.total_payment),
                    f3(r.optimal),
                ]);
            }
            RenderedFigure {
                name: "fig3b",
                title: "Figure 3(b) — SSAM costs",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig4a" => {
            let rows = runner::fig4a(1);
            let mut t = Table::new(["winner", "price", "payment"]);
            for r in &rows {
                t.push([r.winner.to_string(), f3(r.price), f3(r.payment)]);
            }
            RenderedFigure {
                name: "fig4a",
                title: "Figure 4(a) — payment vs price",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig4b" => {
            let rows = runner::fig4b(seeds);
            let mut t = Table::new(["req", "|S|", "runtime (µs)"]);
            for r in &rows {
                t.push([
                    r.requests.to_string(),
                    r.microservices.to_string(),
                    f3(r.mean_runtime_us),
                ]);
            }
            RenderedFigure {
                name: "fig4b",
                title: "Figure 4(b) — running time",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig5a" => {
            let rows = runner::fig5a(seeds);
            let mut t = Table::new(["variant", "req", "|S|", "ratio", "uncovered"]);
            for r in &rows {
                t.push([
                    r.variant.clone(),
                    r.requests.to_string(),
                    r.microservices.to_string(),
                    f3(r.mean_ratio),
                    f3(r.mean_infeasible_rounds),
                ]);
            }
            RenderedFigure {
                name: "fig5a",
                title: "Figure 5(a) — MSOA variants",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig6a" => {
            let rows = runner::fig6a(seeds);
            let mut t = Table::new(["J", "T", "ratio"]);
            for r in &rows {
                t.push([
                    r.bids_per_seller.to_string(),
                    r.rounds.to_string(),
                    f3(r.mean_ratio),
                ]);
            }
            RenderedFigure {
                name: "fig6a",
                title: "Figure 6(a) — MSOA ratio vs T, J",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fig6b" => {
            let rows = runner::fig6b(seeds);
            let mut t = Table::new(["req", "|S|", "social", "payment", "optimal"]);
            for r in &rows {
                t.push([
                    r.requests.to_string(),
                    r.microservices.to_string(),
                    f3(r.social_cost),
                    f3(r.total_payment),
                    f3(r.optimal),
                ]);
            }
            RenderedFigure {
                name: "fig6b",
                title: "Figure 6(b) — MSOA costs",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "ablation" => {
            let rows = runner::ablation_mechanisms(seeds);
            let mut t = Table::new(["mechanism", "|S|", "social", "payment", "coverage"]);
            for r in &rows {
                t.push([
                    r.mechanism.clone(),
                    r.microservices.to_string(),
                    f3(r.mean_social_cost),
                    f3(r.mean_payment),
                    f3(r.coverage_rate),
                ]);
            }
            RenderedFigure {
                name: "ablation",
                title: "Ablation — mechanisms",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        "fault-matrix" => {
            let rows = runner::fault_matrix(seeds);
            let mut t = Table::new([
                "p(default)",
                "recovery",
                "SLA viol",
                "cost",
                "shortfall",
                "clawback",
                "backfills",
            ]);
            for r in &rows {
                t.push([
                    f3(r.default_probability),
                    if r.recovery { "on" } else { "off" }.to_owned(),
                    f3(r.mean_sla_violation_rate),
                    f3(r.mean_platform_cost),
                    f3(r.mean_shortfall_units),
                    f3(r.mean_clawed_back),
                    f3(r.mean_backfill_attempts),
                ]);
            }
            RenderedFigure {
                name: "fault-matrix",
                title: "Fault matrix — SLA and cost vs default probability",
                table: t.render(),
                json: to_json(&rows),
            }
        }
        _ => return None,
    };
    Some(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(render_figure("fig9z", 1).is_none());
    }

    #[test]
    fn every_listed_figure_renders() {
        // Only the cheap single-run figure here; the full sweeps are
        // covered by the runner shape tests and tests/determinism.rs.
        let fig = render_figure("fig4a", 1).expect("known figure");
        assert_eq!(fig.name, "fig4a");
        assert!(fig.table.contains("payment"));
        assert!(fig.json.starts_with('['));
    }
}
