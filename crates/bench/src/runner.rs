//! Experiment runners — one per figure of the paper's §V.
//!
//! Each runner sweeps the figure's x-axis with everything else at the
//! §V-A defaults and averages over independent seeds. The whole grid —
//! every (scenario point, seed) pair — is flattened onto one bounded
//! worker pool ([`crate::parallel`]), and results merge back in input
//! order, so tables are byte-identical at any thread count. Runners
//! return typed rows that the `fig*` binaries render as tables and
//! JSON. Absolute numbers differ from the paper (different hardware,
//! synthetic traces); the *shape* is what EXPERIMENTS.md tracks.

use crate::parallel;
use crate::scenario::{multi_round_instance, single_round_instance};
use edge_auction::msoa::MsoaConfig;
use edge_auction::msoa::MultiRoundInstance;
use edge_auction::offline::{offline_optimum_multi, offline_optimum_round, per_round_dp_bound};
use edge_auction::ssam::{run_ssam, SsamConfig};
use edge_auction::variants::{run_variant, MsoaVariant};
use edge_common::rng::derive_rng;
use edge_lp::IlpOptions;
use edge_workload::params::PaperParams;
use serde::Serialize;
use std::time::Instant;

/// Default seeds per configuration (each figure point is a mean).
pub const DEFAULT_SEEDS: u64 = 10;

/// Instance sizes (total bids across rounds) up to which the exact
/// multi-round branch-and-bound is attempted for the offline optimum;
/// larger instances fall back to the per-round DP lower bound, whose
/// ratios conservatively over-state the online mechanism's gap.
const EXACT_OFFLINE_BUDGET: usize = 60;

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs `f(point, seed)` for every (scenario point, seed) pair on the
/// ambient worker pool and returns, per point in input order, the
/// seed-ordered results. Flattening both axes into one work list keeps
/// the pool busy even when a figure has few points or few seeds; the
/// order-preserving merge keeps output independent of the thread count.
///
/// When an ambient profiling collector is installed
/// ([`crate::profile::install`]), each cell is additionally timed and
/// the sweep reports a deterministic shape event plus wall-clock
/// aggregates. The timing wraps `f` without touching its result, so
/// figure tables are unchanged by profiling.
fn par_sweep<P: Sync, T: Send>(
    points: &[P],
    seeds: u64,
    f: impl Fn(&P, u64) -> T + Sync,
) -> Vec<Vec<T>> {
    let profiling = crate::profile::is_enabled();
    let work: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|p| (0..seeds).map(move |s| (p, s)))
        .collect();
    let flat = {
        // Cells run inline at 1 worker and on pool threads otherwise;
        // suppressing span-tree collection across the fan-out keeps the
        // deterministic trace identical in both cases — measured cell
        // time re-enters the tree through `record_sweep`'s absorb.
        let _quiet = edge_telemetry::spans::suppress_tree();
        parallel::par_map_auto(work, |&(p, s)| {
            if profiling {
                let start = Instant::now();
                let result = f(&points[p], s);
                (result, start.elapsed().as_micros() as u64)
            } else {
                (f(&points[p], s), 0)
            }
        })
    };
    if profiling {
        let cell_us: Vec<u64> = flat.iter().map(|&(_, us)| us).collect();
        crate::profile::record_sweep(points.len(), seeds, &cell_us);
    }
    let mut results = flat.into_iter();
    (0..points.len())
        .map(|_| {
            (0..seeds)
                .map(|_| results.next().expect("complete sweep").0)
                .collect()
        })
        .collect()
}

/// The offline optimum (or a provable lower bound) of a multi-round
/// instance, choosing the solver by size.
fn offline_value(instance: &MultiRoundInstance, use_estimated: bool) -> Option<f64> {
    let size: usize = instance.rounds().iter().map(|r| r.bids.len()).sum();
    if size <= EXACT_OFFLINE_BUDGET {
        let opts = IlpOptions {
            max_nodes: 2_000,
            ..IlpOptions::default()
        };
        offline_optimum_multi(instance, use_estimated, &opts)
            .ok()
            .map(|b| b.value())
    } else {
        per_round_dp_bound(instance, use_estimated)
    }
}

// ---------------------------------------------------------------------
// Figure 3(a): SSAM performance ratio vs number of microservices and J.
// ---------------------------------------------------------------------

/// One point of Figure 3(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3aRow {
    /// Number of microservices `|S|`.
    pub microservices: usize,
    /// Bids per seller `J`.
    pub bids_per_seller: usize,
    /// Mean SSAM / optimal ratio over the seeds.
    pub mean_ratio: f64,
    /// Mean certified upper bound `π = H_X · Ξ`.
    pub mean_certified_pi: f64,
}

/// Runs the Figure 3(a) sweep.
pub fn fig3a(seeds: u64) -> Vec<Fig3aRow> {
    let points: Vec<(usize, usize)> = [1usize, 2]
        .iter()
        .flat_map(|&j| [5usize, 10, 15, 20, 25].iter().map(move |&s| (j, s)))
        .collect();
    let per_point = par_sweep(&points, seeds, |&(j, s), seed| {
        let params = PaperParams::default()
            .with_microservices(s)
            .with_bids_per_seller(j);
        let mut rng = derive_rng(seed, "fig3a");
        let inst = single_round_instance(&params, &mut rng);
        let outcome = run_ssam(&inst, &SsamConfig::default()).expect("feasible");
        let opt = offline_optimum_round(&inst).expect("feasible");
        (outcome.social_cost.value() / opt, outcome.certificate.pi)
    });
    points
        .iter()
        .zip(per_point)
        .map(|(&(j, s), results)| {
            let ratios: Vec<f64> = results.iter().map(|r| r.0).collect();
            let pis: Vec<f64> = results.iter().map(|r| r.1).collect();
            Fig3aRow {
                microservices: s,
                bids_per_seller: j,
                mean_ratio: mean(&ratios),
                mean_certified_pi: mean(&pis),
            }
        })
        .collect()
}

/// One point of the set-cover variant of Figure 3(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3aSetcoverRow {
    /// Number of seller microservices.
    pub microservices: usize,
    /// Bids per seller `J`.
    pub bids_per_seller: usize,
    /// Mean greedy/optimal ratio over the seeds that were coverable and
    /// provably solvable.
    pub mean_ratio: f64,
    /// Seeds contributing to the mean.
    pub samples: usize,
}

/// Figure 3(a) in the paper's *general set-cover form* (ILP (7) with
/// per-buyer coverage): sellers bid subsets of needy microservices, and
/// the greedy's gap grows with the population — the growth the paper
/// plots, which the aggregate-demand form (see [`fig3a`]) smooths away.
pub fn fig3a_setcover(seeds: u64) -> Vec<Fig3aSetcoverRow> {
    use edge_auction::multi_buyer::{run_ssam_multi, CoverBid, MultiBuyerWsp};
    use edge_common::id::{BidId, MicroserviceId};
    use rand::Rng;

    let points: Vec<(usize, usize)> = [1usize, 2]
        .iter()
        .flat_map(|&j| [5usize, 10, 15, 20, 25].iter().map(move |&s| (j, s)))
        .collect();
    let per_point = par_sweep(&points, seeds, |&(j, s), seed| {
        let mut rng = derive_rng(seed, "fig3a-setcover");
        let n_buyers = (s / 2).max(2);
        let demands: Vec<(MicroserviceId, u64)> = (0..n_buyers)
            .map(|b| (MicroserviceId::new(1000 + b), rng.gen_range(1..=3u64)))
            .collect();
        let mut bids = Vec::new();
        for seller in 0..s {
            for bid_id in 0..j {
                let k = rng.gen_range(1..=3usize.min(n_buyers));
                let mut coverage = Vec::new();
                let mut chosen: Vec<usize> = Vec::new();
                while chosen.len() < k {
                    let b = rng.gen_range(0..n_buyers);
                    if !chosen.contains(&b) {
                        chosen.push(b);
                        coverage.push((MicroserviceId::new(1000 + b), rng.gen_range(1..=3u64)));
                    }
                }
                let total: u64 = coverage.iter().map(|&(_, a)| a).sum();
                let price = rng.gen_range(10.0..35.0) * total as f64 / 5.0;
                bids.push(
                    CoverBid::new(
                        MicroserviceId::new(seller),
                        BidId::new(bid_id),
                        coverage,
                        price,
                    )
                    .expect("valid bid"),
                );
            }
        }
        let inst = MultiBuyerWsp::new(demands, bids).expect("valid instance");
        let outcome = run_ssam_multi(&inst, &SsamConfig::default());
        if !outcome.fully_covered {
            return None;
        }
        let (ilp, _) = inst.to_ilp();
        let opts = IlpOptions {
            max_nodes: 20_000,
            ..IlpOptions::default()
        };
        match edge_lp::solve_ilp(&ilp, &opts) {
            Ok(sol) if sol.proven_optimal && sol.objective > 1e-9 => {
                Some(outcome.social_cost.value() / sol.objective)
            }
            _ => None,
        }
    });
    points
        .iter()
        .zip(per_point)
        .map(|(&(j, s), results)| {
            let ratios: Vec<f64> = results.into_iter().flatten().collect();
            Fig3aSetcoverRow {
                microservices: s,
                bids_per_seller: j,
                mean_ratio: mean(&ratios),
                samples: ratios.len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 3(b): SSAM social cost / payment / optimal vs |S| and requests.
// ---------------------------------------------------------------------

/// One point of Figure 3(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bRow {
    /// Number of microservices `|S|`.
    pub microservices: usize,
    /// Request volume per round.
    pub requests: u64,
    /// Mean SSAM social cost.
    pub social_cost: f64,
    /// Mean total payment.
    pub total_payment: f64,
    /// Mean optimal social cost.
    pub optimal: f64,
}

/// Runs the Figure 3(b) sweep.
pub fn fig3b(seeds: u64) -> Vec<Fig3bRow> {
    let points: Vec<(u64, usize)> = [100u64, 200]
        .iter()
        .flat_map(|&req| [25usize, 35, 45, 55, 65, 75].iter().map(move |&s| (req, s)))
        .collect();
    let per_point = par_sweep(&points, seeds, |&(req, s), seed| {
        let params = PaperParams::default()
            .with_microservices(s)
            .with_requests(req);
        let mut rng = derive_rng(seed, "fig3b");
        let inst = single_round_instance(&params, &mut rng);
        let outcome = run_ssam(&inst, &SsamConfig::default()).expect("feasible");
        let opt = offline_optimum_round(&inst).expect("feasible");
        (
            outcome.social_cost.value(),
            outcome.total_payment.value(),
            opt,
        )
    });
    points
        .iter()
        .zip(per_point)
        .map(|(&(req, s), results)| Fig3bRow {
            microservices: s,
            requests: req,
            social_cost: mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
            total_payment: mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
            optimal: mean(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 4(a): per-winner payment vs actual price.
// ---------------------------------------------------------------------

/// One winning bid of Figure 4(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig4aRow {
    /// Winner index in selection order.
    pub winner: usize,
    /// The winner's asking price.
    pub price: f64,
    /// The critical-value payment it received.
    pub payment: f64,
}

/// Runs Figure 4(a): a single default-parameter auction, reporting each
/// winner's price next to its payment (individual rationality made
/// visible).
pub fn fig4a(seed: u64) -> Vec<Fig4aRow> {
    let params = PaperParams::default();
    let mut rng = derive_rng(seed, "fig4a");
    let inst = single_round_instance(&params, &mut rng);
    let outcome = run_ssam(&inst, &SsamConfig::default()).expect("feasible");
    outcome
        .winners
        .iter()
        .enumerate()
        .map(|(i, w)| Fig4aRow {
            winner: i,
            price: w.price.value(),
            payment: w.payment.value(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 4(b): SSAM running time.
// ---------------------------------------------------------------------

/// One point of Figure 4(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig4bRow {
    /// Number of microservices `|S|`.
    pub microservices: usize,
    /// Request volume per round.
    pub requests: u64,
    /// Mean wall-clock time of one SSAM run, in microseconds.
    pub mean_runtime_us: f64,
}

/// Runs the Figure 4(b) timing sweep (the paper reports < 100 ms and
/// roughly linear growth).
pub fn fig4b(seeds: u64) -> Vec<Fig4bRow> {
    let points: Vec<(u64, usize)> = [100u64, 200]
        .iter()
        .flat_map(|&req| [25usize, 35, 45, 55, 65, 75].iter().map(move |&s| (req, s)))
        .collect();
    let per_point = par_sweep(&points, seeds, |&(req, s), seed| {
        let params = PaperParams::default()
            .with_microservices(s)
            .with_requests(req);
        let mut rng = derive_rng(seed, "fig4b");
        let inst = single_round_instance(&params, &mut rng);
        let start = Instant::now();
        let _ = run_ssam(&inst, &SsamConfig::default()).expect("feasible");
        start.elapsed().as_secs_f64() * 1e6
    });
    points
        .iter()
        .zip(per_point)
        .map(|(&(req, s), times)| Fig4bRow {
            microservices: s,
            requests: req,
            mean_runtime_us: mean(&times),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 5(a): MSOA (+ variants) performance ratio.
// ---------------------------------------------------------------------

/// One point of Figure 5(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig5aRow {
    /// Variant name (`MSOA`, `MSOA-DA`, `MSOA-RC`, `MSOA-OA`).
    pub variant: String,
    /// Number of microservices `|S|`.
    pub microservices: usize,
    /// Request volume per round.
    pub requests: u64,
    /// Mean online/offline ratio (offline solved on the *true* demand
    /// stream with the original capacities).
    pub mean_ratio: f64,
    /// Mean count of rounds a variant failed to cover.
    pub mean_infeasible_rounds: f64,
}

/// Runs the Figure 5(a) sweep over the four MSOA variants.
pub fn fig5a(seeds: u64) -> Vec<Fig5aRow> {
    let variants = [
        MsoaVariant::Plain,
        MsoaVariant::DemandAware,
        MsoaVariant::RelaxedCapacity { factor: 2.0 },
        MsoaVariant::Optimized { factor: 2.0 },
    ];
    let points: Vec<(u64, usize)> = [100u64, 200]
        .iter()
        .flat_map(|&req| [25usize, 45, 65].iter().map(move |&s| (req, s)))
        .collect();
    // One instance batch per (point, seed), shared across variants so
    // the comparison is paired.
    let per_point = par_sweep(&points, seeds, |&(req, s), seed| {
        let params = PaperParams::default()
            .with_microservices(s)
            .with_requests(req);
        let mut rng = derive_rng(seed, "fig5a");
        let inst = multi_round_instance(&params, 0.25, &mut rng);
        let offline = offline_value(&inst, false);
        let mut per_variant = Vec::new();
        for v in variants {
            let out = run_variant(&inst, &MsoaConfig::default(), v).expect("valid instance");
            per_variant.push((
                v.to_string(),
                out.social_cost.value(),
                out.infeasible_rounds().len() as f64,
            ));
        }
        (offline, per_variant)
    });
    let mut rows = Vec::new();
    for (&(req, s), per_seed) in points.iter().zip(&per_point) {
        for (vi, v) in variants.iter().enumerate() {
            let mut ratios = Vec::new();
            let mut infeasible = Vec::new();
            for (offline, per_variant) in per_seed {
                if let Some(off) = offline {
                    if *off > 1e-9 {
                        ratios.push(per_variant[vi].1 / off);
                    }
                }
                infeasible.push(per_variant[vi].2);
            }
            rows.push(Fig5aRow {
                variant: v.to_string(),
                microservices: s,
                requests: req,
                mean_ratio: mean(&ratios),
                mean_infeasible_rounds: mean(&infeasible),
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Figure 6(a): MSOA ratio vs rounds T and bids-per-seller J.
// ---------------------------------------------------------------------

/// One point of Figure 6(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig6aRow {
    /// Number of auction rounds `T`.
    pub rounds: u64,
    /// Bids per seller `J`.
    pub bids_per_seller: usize,
    /// Mean online/offline ratio.
    pub mean_ratio: f64,
}

/// Runs the Figure 6(a) sweep.
pub fn fig6a(seeds: u64) -> Vec<Fig6aRow> {
    let points: Vec<(usize, u64)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&j| [1u64, 3, 5, 7, 9, 11, 13, 15].iter().map(move |&t| (j, t)))
        .collect();
    let per_point = par_sweep(&points, seeds, |&(j, t), seed| {
        let params = PaperParams::default()
            .with_rounds(t)
            .with_bids_per_seller(j);
        let mut rng = derive_rng(seed, "fig6a");
        let inst = multi_round_instance(&params, 0.25, &mut rng);
        let out =
            run_variant(&inst, &MsoaConfig::default(), MsoaVariant::Plain).expect("valid instance");
        // Ratio against the estimated-demand stream MSOA served.
        offline_value(&inst, true)
            .filter(|off| *off > 1e-9)
            .map(|off| out.social_cost.value() / off)
    });
    points
        .iter()
        .zip(per_point)
        .map(|(&(j, t), results)| {
            let ratios: Vec<f64> = results.into_iter().flatten().collect();
            Fig6aRow {
                rounds: t,
                bids_per_seller: j,
                mean_ratio: mean(&ratios),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6(b): MSOA social cost / payment / optimal vs |S| and requests.
// ---------------------------------------------------------------------

/// One point of Figure 6(b).
#[derive(Debug, Clone, Serialize)]
pub struct Fig6bRow {
    /// Number of microservices `|S|`.
    pub microservices: usize,
    /// Request volume per round.
    pub requests: u64,
    /// Mean MSOA social cost over the horizon.
    pub social_cost: f64,
    /// Mean total payment over the horizon.
    pub total_payment: f64,
    /// Mean offline optimal (or lower bound).
    pub optimal: f64,
}

/// Runs the Figure 6(b) sweep.
pub fn fig6b(seeds: u64) -> Vec<Fig6bRow> {
    let points: Vec<(u64, usize)> = [100u64, 200]
        .iter()
        .flat_map(|&req| [25usize, 35, 45, 55, 65, 75].iter().map(move |&s| (req, s)))
        .collect();
    let per_point = par_sweep(&points, seeds, |&(req, s), seed| {
        let params = PaperParams::default()
            .with_microservices(s)
            .with_requests(req);
        let mut rng = derive_rng(seed, "fig6b");
        let inst = multi_round_instance(&params, 0.25, &mut rng);
        let out =
            run_variant(&inst, &MsoaConfig::default(), MsoaVariant::Plain).expect("valid instance");
        let off = offline_value(&inst, true).unwrap_or(f64::NAN);
        (out.social_cost.value(), out.total_payment.value(), off)
    });
    points
        .iter()
        .zip(per_point)
        .map(|(&(req, s), results)| Fig6bRow {
            microservices: s,
            requests: req,
            social_cost: mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
            total_payment: mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
            optimal: mean(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablation: SSAM's greedy rule vs the baselines of §I.
// ---------------------------------------------------------------------

/// One point of the mechanism ablation.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of microservices `|S|`.
    pub microservices: usize,
    /// Mean social cost (NaN when the mechanism failed to cover).
    pub mean_social_cost: f64,
    /// Mean payment made by the platform.
    pub mean_payment: f64,
    /// Fraction of runs in which the demand was fully covered.
    pub coverage_rate: f64,
}

/// Compares SSAM against VCG (exact allocation, externality payments)
/// and the fixed-price, random-selection, and total-price-greedy
/// baselines (the DESIGN.md ablation of the marginal-contribution
/// ranking rule). The posted price is set to 120% of the instance's
/// mean unit ask — the "reasonable guess" a platform without an auction
/// would make.
pub fn ablation_mechanisms(seeds: u64) -> Vec<AblationRow> {
    use edge_auction::baselines::{run_fixed_price, run_price_greedy, run_random_selection};
    use edge_auction::vcg::run_vcg;

    #[derive(Default, Clone)]
    struct Acc {
        costs: Vec<f64>,
        payments: Vec<f64>,
        covered: usize,
        runs: usize,
    }

    let points = [15usize, 25, 50, 75];
    let per_point = par_sweep(&points, seeds, |&s, seed| {
        let params = PaperParams::default().with_microservices(s);
        let mut rng = derive_rng(seed, "ablation");
        let inst = single_round_instance(&params, &mut rng);
        let mean_unit: f64 = inst
            .bids()
            .map(edge_auction::bid::Bid::unit_price)
            .sum::<f64>()
            / inst.bids().count() as f64;

        let ssam = run_ssam(&inst, &SsamConfig::default()).expect("feasible");
        let vcg = run_vcg(&inst).expect("feasible");
        let fixed = run_fixed_price(&inst, mean_unit * 1.2);
        let random = run_random_selection(&inst, &mut rng);
        let greedy = run_price_greedy(&inst);
        [
            Some((ssam.social_cost.value(), ssam.total_payment.value(), true)),
            Some((vcg.social_cost.value(), vcg.total_payment.value(), true)),
            Some((
                fixed.social_cost.value(),
                fixed.total_payment.value(),
                fixed.satisfied,
            )),
            random
                .ok()
                .map(|r| (r.social_cost.value(), r.total_payment.value(), r.satisfied)),
            greedy
                .ok()
                .map(|r| (r.social_cost.value(), r.total_payment.value(), r.satisfied)),
        ]
    });

    let names = ["SSAM", "VCG", "fixed-price", "random", "price-greedy"];
    let mut rows = Vec::new();
    for (&s, per_seed) in points.iter().zip(&per_point) {
        for (mi, name) in names.iter().enumerate() {
            let mut acc = Acc::default();
            for run in per_seed {
                acc.runs += 1;
                if let Some((cost, pay, covered)) = run[mi] {
                    if covered {
                        acc.costs.push(cost);
                        acc.payments.push(pay);
                        acc.covered += 1;
                    }
                }
            }
            rows.push(AblationRow {
                mechanism: (*name).to_owned(),
                microservices: s,
                mean_social_cost: mean(&acc.costs),
                mean_payment: mean(&acc.payments),
                coverage_rate: acc.covered as f64 / acc.runs as f64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Fault matrix: SLA violations and platform cost vs default probability,
// with and without the recovery policy.
// ---------------------------------------------------------------------

/// One arm of the fault matrix.
#[derive(Debug, Clone, Serialize)]
pub struct FaultMatrixRow {
    /// Per-(round, seller) probability of a delivery default.
    pub default_probability: f64,
    /// Whether the recovery policy (clawback + reliability + backfill)
    /// was active.
    pub recovery: bool,
    /// Mean fraction of positive-demand rounds with unserved demand.
    pub mean_sla_violation_rate: f64,
    /// Mean total the platform actually paid.
    pub mean_platform_cost: f64,
    /// Mean demand units that went unserved over the horizon.
    pub mean_shortfall_units: f64,
    /// Mean payment withheld from defaulting winners.
    pub mean_clawed_back: f64,
    /// Mean backfill re-auction attempts over the horizon.
    pub mean_backfill_attempts: f64,
}

/// Runs the fault matrix: sweeps the seller-default probability (crash
/// and sensor-dropout rates stay at their ambient defaults) and runs the
/// *same* seeded fault plan through MSOA twice — recovery off, recovery
/// on. Plans are drawn with common random numbers, so the two arms and
/// all probability levels are paired and the curves are monotone rather
/// than noisy.
pub fn fault_matrix(seeds: u64) -> Vec<FaultMatrixRow> {
    use edge_auction::recovery::{
        run_msoa_with_faults, FaultInjectionConfig, FaultPlan, RecoveryConfig,
    };

    let points = [0.0f64, 0.05, 0.1, 0.2, 0.4];
    let arms = [false, true];
    let per_point = par_sweep(&points, seeds, |&p, seed| {
        let params = PaperParams::default();
        let mut rng = derive_rng(seed, "fault-matrix");
        let inst = multi_round_instance(&params, 0.25, &mut rng);
        let injection = FaultInjectionConfig {
            default_probability: p,
            ..FaultInjectionConfig::default()
        };
        let plan = FaultPlan::seeded(seed, inst.num_rounds(), inst.sellers().len(), &injection);
        // α pinned: the fault figure must not inherit the derive-α
        // truthfulness caveat (and must not spam the derive warning).
        let config = MsoaConfig::pinned(inst.derive_alpha());
        arms.map(|enabled| {
            let recovery = if enabled {
                RecoveryConfig::default()
            } else {
                RecoveryConfig::disabled()
            };
            let out =
                run_msoa_with_faults(&inst, &config, &plan, &recovery).expect("valid instance");
            (
                out.sla_violation_rate(),
                out.platform_cost.value(),
                out.shortfall_units as f64,
                out.clawed_back.value(),
                out.backfill_attempts() as f64,
            )
        })
    });
    let mut rows = Vec::new();
    for (&p, per_seed) in points.iter().zip(&per_point) {
        for (ai, &recovery) in arms.iter().enumerate() {
            let pick = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| -> f64 {
                mean(&per_seed.iter().map(|runs| f(&runs[ai])).collect::<Vec<_>>())
            };
            rows.push(FaultMatrixRow {
                default_probability: p,
                recovery,
                mean_sla_violation_rate: pick(|r| r.0),
                mean_platform_cost: pick(|r| r.1),
                mean_shortfall_units: pick(|r| r.2),
                mean_clawed_back: pick(|r| r.3),
                mean_backfill_attempts: pick(|r| r.4),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::assert_money_eq;

    #[test]
    fn fig3a_shape_ratio_grows_with_s_and_j() {
        let rows = fig3a(4);
        assert_eq!(rows.len(), 10);
        // Ratios are valid (>= 1) and certified.
        for r in &rows {
            assert!(r.mean_ratio >= 1.0 - 1e-9, "{r:?}");
            assert!(r.mean_ratio <= r.mean_certified_pi + 1e-6, "{r:?}");
        }
        // J = 2 at S = 25 should be at least as hard as J = 1 at S = 5.
        let small = rows
            .iter()
            .find(|r| r.microservices == 5 && r.bids_per_seller == 1)
            .unwrap();
        let large = rows
            .iter()
            .find(|r| r.microservices == 25 && r.bids_per_seller == 2)
            .unwrap();
        assert!(
            small.mean_ratio <= large.mean_ratio + 0.25,
            "small {} vs large {}",
            small.mean_ratio,
            large.mean_ratio
        );
    }

    #[test]
    fn fig3b_shape_orderings_hold() {
        let rows = fig3b(4);
        for r in &rows {
            assert!(r.total_payment >= r.social_cost - 1e-9, "{r:?}");
            assert!(r.social_cost >= r.optimal - 1e-9, "{r:?}");
        }
        // Higher request volume ⇒ higher social cost at equal S.
        for s in [25usize, 45, 65] {
            let lo = rows
                .iter()
                .find(|r| r.microservices == s && r.requests == 100)
                .unwrap();
            let hi = rows
                .iter()
                .find(|r| r.microservices == s && r.requests == 200)
                .unwrap();
            assert!(hi.social_cost > lo.social_cost, "S={s}");
        }
    }

    #[test]
    fn fig4a_individual_rationality_visible() {
        let rows = fig4a(1);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.payment >= r.price - 1e-9, "{r:?}");
        }
    }

    #[test]
    fn fig4b_is_fast() {
        let rows = fig4b(3);
        // The paper's envelope is < 100 ms; release builds sit two
        // orders of magnitude under it (see results/ for committed
        // sweeps). Debug test runs share the machine with the rest of
        // the suite, so only the loose envelope is asserted there.
        let envelope_us = if cfg!(debug_assertions) {
            2_000_000.0
        } else {
            100_000.0
        };
        for r in &rows {
            assert!(
                r.mean_runtime_us.is_finite() && r.mean_runtime_us > 0.0,
                "{r:?}"
            );
            assert!(r.mean_runtime_us < envelope_us, "{r:?}");
        }
    }

    #[test]
    fn fig5a_demand_aware_never_worse() {
        let rows = fig5a(3);
        let (s, req) = (25usize, 100u64);
        let plain = rows
            .iter()
            .find(|r| r.variant == "MSOA" && r.microservices == s && r.requests == req)
            .unwrap();
        let da = rows
            .iter()
            .find(|r| r.variant == "MSOA-DA" && r.microservices == s && r.requests == req)
            .unwrap();
        // DA estimates demand perfectly; with noisy estimates the
        // plain variant pays for the error on average.
        assert!(
            da.mean_ratio <= plain.mean_ratio * 1.25 + 0.3,
            "da {} vs plain {}",
            da.mean_ratio,
            plain.mean_ratio
        );
    }

    #[test]
    fn fig6a_covers_grid() {
        let rows = fig6a(2);
        assert_eq!(rows.len(), 3 * 8);
        assert!(rows
            .iter()
            .all(|r| r.mean_ratio.is_finite() && r.mean_ratio > 0.0));
    }

    #[test]
    fn ablation_ssam_wins_on_cost_among_coverers() {
        let rows = ablation_mechanisms(4);
        for s in [15usize, 50] {
            let get = |name: &str| {
                rows.iter()
                    .find(|r| r.mechanism == name && r.microservices == s)
                    .unwrap()
            };
            let ssam = get("SSAM");
            assert_money_eq!(ssam.coverage_rate, 1.0);
            for other in ["random", "price-greedy"] {
                let o = get(other);
                if o.coverage_rate > 0.0 {
                    assert!(
                        ssam.mean_social_cost <= o.mean_social_cost + 1e-6,
                        "S={s}: SSAM {} vs {other} {}",
                        ssam.mean_social_cost,
                        o.mean_social_cost
                    );
                }
            }
            // VCG allocates optimally: its cost lower-bounds SSAM's.
            let vcg = get("VCG");
            assert_money_eq!(vcg.coverage_rate, 1.0);
            assert!(vcg.mean_social_cost <= ssam.mean_social_cost + 1e-6);
        }
    }

    #[test]
    fn fault_matrix_recovery_beats_baseline() {
        let rows = fault_matrix(3);
        assert_eq!(rows.len(), 5 * 2);
        let get = |p: f64, recovery: bool| {
            rows.iter()
                .find(|r| r.default_probability == p && r.recovery == recovery)
                .unwrap()
        };
        for p in [0.0, 0.05, 0.1, 0.2, 0.4] {
            let base = get(p, false);
            let rec = get(p, true);
            // Recovery never serves less demand than the baseline.
            assert!(
                rec.mean_sla_violation_rate <= base.mean_sla_violation_rate + 1e-9,
                "p={p}: recovery {} vs baseline {}",
                rec.mean_sla_violation_rate,
                base.mean_sla_violation_rate
            );
            assert!(rec.mean_shortfall_units <= base.mean_shortfall_units + 1e-9);
            // The baseline never claws back or backfills.
            assert_money_eq!(base.mean_clawed_back, 0.0);
            assert_money_eq!(base.mean_backfill_attempts, 0.0);
        }
        // At the default fault level the improvement must be strict —
        // the acceptance criterion of the fault-injection milestone.
        let base = get(0.1, false);
        let rec = get(0.1, true);
        assert!(
            rec.mean_sla_violation_rate < base.mean_sla_violation_rate,
            "recovery {} not strictly below baseline {}",
            rec.mean_sla_violation_rate,
            base.mean_sla_violation_rate
        );
        // SLA violations grow with the default probability (common
        // random numbers make this monotone, not just in expectation).
        let b_lo = get(0.05, false).mean_sla_violation_rate;
        let b_hi = get(0.4, false).mean_sla_violation_rate;
        assert!(
            b_lo <= b_hi + 1e-9,
            "baseline not monotone: {b_lo} vs {b_hi}"
        );
    }

    #[test]
    fn fig6b_orderings_hold() {
        let rows = fig6b(2);
        for r in &rows {
            assert!(r.total_payment >= r.social_cost - 1e-9, "{r:?}");
            assert!(r.social_cost >= r.optimal - 1e-6, "{r:?}");
        }
    }
}
