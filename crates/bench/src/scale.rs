//! The scale benchmark: MSOA wall-clock, selection-phase and
//! pricing-phase cost as the seller population grows to one million
//! sellers, across pricing-thread and winner-selection-shard settings.
//!
//! Unlike the figure sweeps in [`crate::runner`] this is *not* a paper
//! figure — it is the machine-readable evidence for the parallel
//! critical-value pricing and the incremental round buffer. Each cell
//! (`n` sellers × `rounds` × thread count) runs the same deterministic
//! [`crate::scenario::scale_instance`] several times and records the
//! **median** wall-clock plus the pricing-phase counters drained from
//! [`edge_telemetry::pricing`]; the replay/prefix iteration counts are
//! thread- and clock-independent, so they hold as evidence even on a
//! single-core runner where wall-clock speedup cannot show.
//!
//! Every cell also carries an FNV-1a digest of the serialized outcome.
//! Digests must agree across thread counts for the same `n` — the
//! report computes the cross-thread comparison itself
//! ([`ScaleSpeedup::identical_outcomes`]) and CI diffs the digest lines
//! of independent 1-thread and 4-thread runs.

use crate::scenario::scale_instance;
use crate::table::Table;
use edge_auction::msoa::{run_msoa, MsoaConfig};
use edge_auction::{pricing_threads_setting, set_pricing_threads};
use edge_common::rng::derive_rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema identifier written into `BENCH_scale.json`.
///
/// v2 adds the `shards`, `selection_ns`, and `merge_ns` cell columns
/// (and the `shards` speedup column) and extends the default sweep to
/// n = 1M with an adaptive-threads and a sharded configuration.
/// `bench diff` still accepts v1 baselines: the missing columns default
/// (`shards = 1`, timings 0) and cells are matched on
/// `(n, threads, shards)`, so v1 digests stay hard-checked.
pub const SCALE_SCHEMA: &str = "edge-market/bench-scale/v2";

/// Schema identifier of the previous report generation, still accepted
/// as a `bench diff` baseline.
pub const SCALE_SCHEMA_V1: &str = "edge-market/bench-scale/v1";

/// Seller populations swept by default (clamped by `max_n`).
pub const SCALE_SIZES: [usize; 6] = [1_000, 10_000, 50_000, 100_000, 500_000, 1_000_000];

/// Rounds per instance; identical bid lists so the incremental buffer's
/// patched path is what gets measured after round one.
pub const SCALE_ROUNDS: u64 = 3;

/// Baseline repetitions per cell; medians are reported, and the
/// cross-config speedups compare minima of paired samples — see
/// [`ScaleSpeedup::pricing_speedup_vs_1`]. Cells whose speedup lands
/// *near* unity draw up to [`REFINE_CAP`] extra pairs: a few-percent
/// disagreement between two minima is indistinguishable from scheduler
/// noise, and minima only converge downward, so more data settles it.
pub const SCALE_REPS: usize = 5;

/// Maximum extra refinement pairs per near-unity cell.
const REFINE_CAP: usize = 20;

/// Speedups inside this band are plausibly noise around 1.0 and worth
/// refining; outside it the difference is real and accepted as
/// measured.
const REFINE_BAND: (f64, f64) = (0.80, 1.25);

/// Refinement stops once the speedup settles inside this band.
const REFINE_SETTLED: (f64, f64) = (0.97, 1.03);

/// One measured cell: a `(n, threads)` pair run [`SCALE_REPS`] times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Seller population.
    pub n: usize,
    /// Rounds in the instance.
    pub rounds: u64,
    /// Pricing thread setting used for this cell (1 = sequential path,
    /// 0 = adaptive auto-sizing).
    pub threads: usize,
    /// Winner-selection shard setting used for this cell (1 = unsharded
    /// arena). v1 reports have no such column; [`parse_report`] injects
    /// `1` when upgrading them.
    pub shards: usize,
    /// Repetitions behind the medians.
    pub reps: usize,
    /// Median wall-clock for the whole MSOA run, nanoseconds.
    pub median_total_ns: u64,
    /// `median_total_ns / rounds`.
    pub median_ns_per_round: u64,
    /// Median wall-clock spent in the payment (pricing) phase, summed
    /// over rounds, nanoseconds.
    pub median_pricing_ns: u64,
    /// Minimum pricing-phase wall-clock across the reps — the
    /// interference-robust point estimate for eyeballing a cell in
    /// isolation. `0` in upgraded v1 reports (not recorded then).
    pub min_pricing_ns: u64,
    /// Critical-value payments computed per second of pricing-phase
    /// wall-clock (median rep).
    pub payments_per_sec: f64,
    /// Payment replays per run — one per winner per round; identical at
    /// every thread count.
    pub payment_replays: u64,
    /// Greedy iterations executed across all replays (prefix + suffix).
    pub replay_iterations: u64,
    /// Of those, iterations answered in O(1) from the shared prefix.
    pub prefix_iterations: u64,
    /// Median wall-clock in the winner-selection phase (arena build +
    /// greedy merge), summed over rounds, nanoseconds. `0` in upgraded
    /// v1 reports (not recorded then).
    pub selection_ns: u64,
    /// Of [`Self::selection_ns`], nanoseconds in the cross-shard merge
    /// loop (the sequential argmin over lane heads).
    pub merge_ns: u64,
    /// FNV-1a 64 digest (hex) of the serialized outcome.
    pub outcome_digest: String,
}

/// Cross-thread comparison for one `n`: how much faster the pricing
/// phase ran versus the 1-thread cell, and whether outcomes matched.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleSpeedup {
    /// Seller population.
    pub n: usize,
    /// Rounds in the instance.
    pub rounds: u64,
    /// The compared cell's thread setting.
    pub threads: usize,
    /// The compared cell's shard setting.
    pub shards: usize,
    /// `floor pricing_ns(adjacent sequential runs) / floor
    /// pricing_ns(this cell's runs)`, where a side's *floor* is the
    /// second-smallest of its samples. Every measured rep of a non-base
    /// cell is immediately preceded by a sequential base run, so the
    /// two sample sets interleave in time and see the same environment;
    /// interference only ever *adds* time, so both floors converge to
    /// the clean runtimes (the second-smallest additionally tolerates
    /// one glitched reading), and near-unity cells draw extra pairs
    /// until the floors agree ([`REFINE_CAP`]). Two configurations that
    /// resolve to the same code path (e.g. adaptive on a single core)
    /// therefore compare at ~1.0 even on a noisy shared box.
    pub pricing_speedup_vs_1: f64,
    /// Whether the outcome digests matched the 1-thread cell.
    pub identical_outcomes: bool,
}

/// The full report serialized to `BENCH_scale.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Schema identifier ([`SCALE_SCHEMA`]).
    pub schema: String,
    /// Hardware parallelism of the machine that produced the report —
    /// read this before interpreting wall-clock speedups: on a
    /// single-core runner they cannot exceed 1.
    pub threads_available: usize,
    /// Measured cells, in `(n, threads)` order.
    pub cells: Vec<ScaleCell>,
    /// Cross-thread digests and pricing speedups per population.
    pub speedups: Vec<ScaleSpeedup>,
}

/// Parses a serialized scale report, transparently upgrading v1
/// payloads to the v2 shape: the columns v1 never recorded are injected
/// (`shards = 1`, `selection_ns = merge_ns = 0`) and the schema string
/// is rewritten, so v1 digests and wall-clock medians stay comparable.
/// Returns the report plus whether an upgrade happened; any other
/// schema is rejected.
pub fn parse_report(json: &str) -> Result<(ScaleReport, bool), String> {
    let mut value: serde::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let schema = match &value {
        serde::Value::Object(fields) => fields
            .iter()
            .find_map(|(k, v)| match (k.as_str(), v) {
                ("schema", serde::Value::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .ok_or_else(|| "report has no `schema` string".to_string())?,
        _ => return Err("report is not a JSON object".to_string()),
    };
    let upgraded = match schema.as_str() {
        SCALE_SCHEMA => false,
        SCALE_SCHEMA_V1 => {
            upgrade_v1_in_place(&mut value);
            true
        }
        other => {
            return Err(format!(
                "schema {other:?} is neither {SCALE_SCHEMA:?} nor the \
                 accepted baseline schema {SCALE_SCHEMA_V1:?}"
            ))
        }
    };
    let report = serde::Deserialize::deserialize(&value).map_err(|e| e.0)?;
    Ok((report, upgraded))
}

/// Rewrites a v1 report object into the v2 shape (see [`parse_report`]).
fn upgrade_v1_in_place(value: &mut serde::Value) {
    fn ensure(fields: &mut Vec<(String, serde::Value)>, name: &str, default: u64) {
        if !fields.iter().any(|(k, _)| k == name) {
            fields.push((name.to_string(), serde::Value::U64(default)));
        }
    }
    let serde::Value::Object(top) = value else {
        return;
    };
    for (key, v) in top.iter_mut() {
        match (key.as_str(), v) {
            ("schema", slot) => *slot = serde::Value::Str(SCALE_SCHEMA.to_string()),
            ("cells", serde::Value::Array(cells)) => {
                for cell in cells {
                    if let serde::Value::Object(fields) = cell {
                        ensure(fields, "shards", 1);
                        ensure(fields, "min_pricing_ns", 0);
                        ensure(fields, "selection_ns", 0);
                        ensure(fields, "merge_ns", 0);
                    }
                }
            }
            ("speedups", serde::Value::Array(speedups)) => {
                for s in speedups {
                    if let serde::Value::Object(fields) = s {
                        ensure(fields, "shards", 1);
                    }
                }
            }
            _ => {}
        }
    }
}

/// FNV-1a 64 over a byte string — stable, dependency-free fingerprint.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Per-rep samples accumulated for one configuration of a population.
#[derive(Default)]
struct CellSamples {
    totals: Vec<u64>,
    pricing_ns: Vec<u64>,
    selection_ns: Vec<u64>,
    merge_ns: Vec<u64>,
    /// Pricing-phase nanoseconds of a base-configuration run executed
    /// *immediately before* the matching `pricing_ns` entry — the
    /// tightest pairing available for the speedup ratio.
    paired_base_ns: Vec<u64>,
    last: Option<(
        edge_auction::msoa::MsoaOutcome,
        edge_telemetry::pricing::PricingSnapshot,
    )>,
}

/// Runs all of one population's configurations with **interleaved**
/// repetitions: rep `r` visits every configuration before rep `r + 1`
/// starts, so the configurations sample the same process state
/// (allocator, caches, frequency) and their cross-config ratios compare
/// like with like. Measuring each configuration's reps back-to-back
/// instead lets slow drift between cells masquerade as a speedup — the
/// very artifact the adaptive gate exists to catch.
///
/// Returns the cells plus, per cell, the
/// `min(adjacent base pricing) / min(cell pricing)` speedup estimate
/// (`None` for the base cell itself, and when no base configuration is
/// in the grid).
fn run_row(n: usize, configs: &[(usize, usize)]) -> (Vec<ScaleCell>, Vec<Option<f64>>) {
    let mut rng = derive_rng(n as u64, "bench-scale");
    let instance = scale_instance(n, SCALE_ROUNDS, &mut rng);
    let config = MsoaConfig::pinned(2.0);
    let mut samples: Vec<CellSamples> = configs.iter().map(|_| CellSamples::default()).collect();

    // One untimed warmup pass primes the allocator, page cache and
    // branch predictors, so the first measured rep of the first
    // configuration isn't uniquely cold — without it the sequential
    // base pays the cold-start cost and every ratio against it skews.
    for &(threads, shards) in configs {
        set_pricing_threads(threads);
        edge_auction::set_shards(shards);
        let _ = run_msoa(&instance, &config).expect("scale instances are feasible");
    }

    let measure = |threads: usize, shards: usize| {
        set_pricing_threads(threads);
        edge_auction::set_shards(shards);
        let before = edge_telemetry::pricing::snapshot();
        let sel_before = edge_telemetry::selection::snapshot();
        let start = Instant::now();
        let outcome = run_msoa(&instance, &config).expect("scale instances are feasible");
        let total = start.elapsed().as_nanos() as u64;
        let delta = edge_telemetry::pricing::snapshot().delta_since(&before);
        let sel_delta = edge_telemetry::selection::snapshot().delta_since(&sel_before);
        (total, delta, sel_delta, outcome)
    };

    // Floor estimate per side: the *second*-smallest sample. A plain
    // minimum converges to the clean runtime but is wrecked by a single
    // anomalously fast reading on one side; the second-smallest keeps
    // the convergence (interference only adds time) while tolerating
    // one glitch, and applying it to both sides keeps the ratio
    // unbiased for identical code paths.
    fn floor_sample(xs: &[u64]) -> Option<u64> {
        let mut v: Vec<u64> = xs.iter().copied().filter(|&x| x > 0).collect();
        v.sort_unstable();
        match v.len() {
            0 => None,
            1 => Some(v[0]),
            _ => Some(v[1]),
        }
    }

    let base_at = configs.iter().position(|&(t, k)| t == 1 && k == 1);
    for _ in 0..SCALE_REPS {
        for (ci, (&(threads, shards), cell)) in configs.iter().zip(samples.iter_mut()).enumerate() {
            // Precede every non-base measurement with a throwaway-cell
            // base run: the pair runs back-to-back, so its ratio sees
            // at most one run's worth of environment drift — far
            // tighter than pairing against the base cell's own rep,
            // which ran several configurations earlier.
            if base_at.is_some_and(|b| b != ci) {
                let (_, base_delta, _, _) = measure(1, 1);
                cell.paired_base_ns.push(base_delta.nanos);
            }
            let (total, delta, sel_delta, outcome) = measure(threads, shards);
            cell.totals.push(total);
            cell.pricing_ns.push(delta.nanos);
            cell.selection_ns.push(sel_delta.selection_ns);
            cell.merge_ns.push(sel_delta.merge_ns);
            cell.last = Some((outcome, delta));
        }
    }

    // Refinement: a near-unity min ratio may still be noise — the side
    // that happened to never draw a clean sample looks slower than it
    // is. Extra back-to-back pairs can only move both minima toward
    // the clean runtimes, so draw them until the ratio settles (or the
    // cap says the residual difference is real at this sample size).
    if let Some(bi) = base_at {
        for (ci, &(threads, shards)) in configs.iter().enumerate() {
            if ci == bi {
                continue;
            }
            for _ in 0..REFINE_CAP {
                let cell = &samples[ci];
                let (Some(b), Some(c)) = (
                    floor_sample(&cell.paired_base_ns),
                    floor_sample(&cell.pricing_ns),
                ) else {
                    break;
                };
                let ratio = b as f64 / c as f64;
                let in_band = ratio >= REFINE_BAND.0 && ratio <= REFINE_BAND.1;
                let settled = ratio >= REFINE_SETTLED.0 && ratio <= REFINE_SETTLED.1;
                if !in_band || settled {
                    break;
                }
                let (_, base_delta, _, _) = measure(1, 1);
                let (total, delta, sel_delta, _) = measure(threads, shards);
                let cell = &mut samples[ci];
                cell.paired_base_ns.push(base_delta.nanos);
                cell.totals.push(total);
                cell.pricing_ns.push(delta.nanos);
                cell.selection_ns.push(sel_delta.selection_ns);
                cell.merge_ns.push(sel_delta.merge_ns);
            }
        }
    }

    let mut rep_ratios = Vec::with_capacity(configs.len());
    let cells = configs
        .iter()
        .zip(samples)
        .map(|(&(threads, shards), cell)| {
            rep_ratios.push(
                match (
                    floor_sample(&cell.paired_base_ns),
                    floor_sample(&cell.pricing_ns),
                ) {
                    (Some(b), Some(c)) => Some(b as f64 / c as f64),
                    _ => None,
                },
            );
            let (outcome, counters) = cell.last.expect("SCALE_REPS >= 1");
            let reps = cell.pricing_ns.len();
            let median_total_ns = median(cell.totals);
            let min_pricing_ns = cell.pricing_ns.iter().copied().min().unwrap_or(0);
            let median_pricing_ns = median(cell.pricing_ns);
            let payments_per_sec = if median_pricing_ns == 0 {
                0.0
            } else {
                counters.replays as f64 / (median_pricing_ns as f64 / 1e9)
            };
            let serialized = serde_json::to_string(&outcome).expect("outcomes are plain data");
            ScaleCell {
                n,
                rounds: SCALE_ROUNDS,
                threads,
                shards,
                reps,
                median_total_ns,
                median_ns_per_round: median_total_ns / SCALE_ROUNDS,
                median_pricing_ns,
                min_pricing_ns,
                payments_per_sec,
                payment_replays: counters.replays,
                replay_iterations: counters.replay_iterations,
                prefix_iterations: counters.prefix_iterations,
                selection_ns: median(cell.selection_ns),
                merge_ns: median(cell.merge_ns),
                outcome_digest: format!("{:016x}", fnv1a64(serialized.as_bytes())),
            }
        })
        .collect();
    (cells, rep_ratios)
}

/// Runs the scale sweep: populations from [`SCALE_SIZES`] up to
/// `max_n`. With neither knob pinned, each population runs the default
/// configuration grid — sequential `(threads 1, shards 1)`, threaded
/// `(4, 1)`, adaptive `(0, 1)`, and sharded `(1, 4)`; pinning `threads`
/// and/or `shards` collapses the grid to that single configuration
/// (unpinned knob → `1`). Restores the process thread and shard
/// settings afterwards.
pub fn run_scale(max_n: usize, threads: Option<usize>, shards: Option<usize>) -> ScaleReport {
    let saved = pricing_threads_setting();
    let saved_shards = edge_auction::shards_setting();
    let configs: Vec<(usize, usize)> = match (threads, shards) {
        (None, None) => vec![(1, 1), (4, 1), (0, 1), (1, 4)],
        (t, k) => vec![(t.unwrap_or(1), k.unwrap_or(1))],
    };
    let sizes: Vec<usize> = SCALE_SIZES
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect::<Vec<_>>();
    let sizes = if sizes.is_empty() {
        vec![max_n.max(1)]
    } else {
        sizes
    };

    let mut cells = Vec::new();
    let mut rep_ratios: Vec<Option<f64>> = Vec::new();
    let mut cell_us = Vec::new();
    {
        // Cells run full MSOA pipelines; keep their interior spans out
        // of the tree so the absorbed sweep time below isn't counted
        // twice (once per stage, once per cell).
        let _quiet = edge_telemetry::spans::suppress_tree();
        for &n in &sizes {
            let (row_cells, row_ratios) = run_row(n, &configs);
            for (cell, ratio) in row_cells.into_iter().zip(row_ratios) {
                cell_us.push(cell.median_total_ns / 1_000);
                cells.push(cell);
                rep_ratios.push(ratio);
            }
        }
    }
    set_pricing_threads(saved);
    edge_auction::set_shards(saved_shards);

    let mut speedups = Vec::new();
    for &n in &sizes {
        let Some(base_at) = cells
            .iter()
            .position(|c| c.n == n && c.threads == 1 && c.shards == 1)
        else {
            continue;
        };
        let base = &cells[base_at];
        for (at, cell) in cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.n == n && (c.threads != 1 || c.shards != 1))
        {
            // Minima of time-interleaved samples: each measured rep of
            // this cell was immediately preceded by a base run, and
            // interference only ever adds time, so each side's minimum
            // estimates its clean runtime. Falls back to the
            // median-cell ratio if no adjacent sample is usable.
            let pricing_speedup_vs_1 = match rep_ratios[at] {
                Some(ratio) => ratio,
                None if cell.median_pricing_ns == 0 => 1.0,
                None => base.median_pricing_ns as f64 / cell.median_pricing_ns as f64,
            };
            speedups.push(ScaleSpeedup {
                n,
                rounds: cell.rounds,
                threads: cell.threads,
                shards: cell.shards,
                pricing_speedup_vs_1,
                identical_outcomes: cell.outcome_digest == base.outcome_digest,
            });
        }
    }

    crate::profile::set_stage("scale");
    crate::profile::record_sweep(sizes.len(), configs.len() as u64, &cell_us);

    ScaleReport {
        schema: SCALE_SCHEMA.to_string(),
        threads_available: edge_auction::available_pricing_threads(),
        cells,
        speedups,
    }
}

impl ScaleReport {
    /// Renders the human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "n",
            "threads",
            "shards",
            "ms/round",
            "selection ms",
            "merge ms",
            "pricing ms",
            "payments/s",
            "replays",
            "digest",
        ]);
        for c in &self.cells {
            t.push([
                c.n.to_string(),
                c.threads.to_string(),
                c.shards.to_string(),
                format!("{:.2}", c.median_ns_per_round as f64 / 1e6),
                format!("{:.2}", c.selection_ns as f64 / 1e6),
                format!("{:.2}", c.merge_ns as f64 / 1e6),
                format!("{:.2}", c.median_pricing_ns as f64 / 1e6),
                format!("{:.0}", c.payments_per_sec),
                c.payment_replays.to_string(),
                c.outcome_digest.clone(),
            ]);
        }
        let mut out = t.render();
        for s in &self.speedups {
            out.push_str(&format!(
                "n={}: pricing x{:.2} at {} threads / {} shards, outcomes {}\n",
                s.n,
                s.pricing_speedup_vs_1,
                s.threads,
                s.shards,
                if s.identical_outcomes {
                    "identical"
                } else {
                    "DIVERGED"
                }
            ));
        }
        out
    }

    /// Serializes the report as pretty JSON (the `BENCH_scale.json`
    /// payload).
    pub fn to_json(&self) -> String {
        crate::table::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn small_sweep_produces_identical_digests_across_configs() {
        let report = run_scale(1_000, None, None);
        assert_eq!(report.schema, SCALE_SCHEMA);
        assert_eq!(
            report.cells.len(),
            4,
            "one size: sequential, threaded, adaptive, sharded"
        );
        let base = &report.cells[0];
        assert_eq!(base.threads, 1);
        assert_eq!(base.shards, 1);
        for cell in &report.cells {
            assert_eq!(cell.outcome_digest, base.outcome_digest);
        }
        assert_eq!(report.speedups.len(), 3, "every non-base config compared");
        assert!(report.speedups.iter().all(|s| s.identical_outcomes));
        assert!(report.cells.iter().all(|c| c.payment_replays > 0));
        let json = report.to_json();
        assert!(json.contains("\"outcome_digest\""));
        assert!(json.contains("\"shards\""));
        assert!(json.contains("\"selection_ns\""));
        assert!(json.contains(SCALE_SCHEMA));
        assert!(report.render().contains("payments/s"));
    }

    #[test]
    fn v1_reports_upgrade_with_defaulted_columns() {
        // A v1 report has no shards/selection_ns/merge_ns columns.
        let v1 = r#"{
            "schema": "edge-market/bench-scale/v1",
            "threads_available": 1,
            "cells": [{
                "n": 1000, "rounds": 3, "threads": 4, "reps": 3,
                "median_total_ns": 1, "median_ns_per_round": 1,
                "median_pricing_ns": 1, "payments_per_sec": 1.0,
                "payment_replays": 1, "replay_iterations": 1,
                "prefix_iterations": 1, "outcome_digest": "aa"
            }],
            "speedups": [{
                "n": 1000, "rounds": 3, "threads": 4,
                "pricing_speedup_vs_1": 1.0, "identical_outcomes": true
            }]
        }"#;
        let (report, upgraded) = parse_report(v1).unwrap();
        assert!(upgraded);
        assert_eq!(report.schema, SCALE_SCHEMA);
        assert_eq!(report.cells[0].shards, 1);
        assert_eq!(report.cells[0].min_pricing_ns, 0);
        assert_eq!(report.cells[0].selection_ns, 0);
        assert_eq!(report.cells[0].merge_ns, 0);
        assert_eq!(report.cells[0].outcome_digest, "aa");
        assert_eq!(report.speedups[0].shards, 1);
    }

    #[test]
    fn v2_reports_parse_without_upgrade_and_others_are_rejected() {
        let report = run_scale(1_000, Some(1), None);
        let (parsed, upgraded) = parse_report(&report.to_json()).unwrap();
        assert!(!upgraded);
        assert_eq!(
            parsed.cells[0].outcome_digest,
            report.cells[0].outcome_digest
        );

        let bogus = report
            .to_json()
            .replace(SCALE_SCHEMA, "edge-market/bench-scale/v99");
        let err = parse_report(&bogus).unwrap_err();
        assert!(err.contains("v99"), "{err}");
    }

    #[test]
    fn pinned_thread_count_sweeps_single_column() {
        let report = run_scale(1_000, Some(1), None);
        assert_eq!(report.cells.len(), 1);
        assert!(report.speedups.is_empty());
    }

    #[test]
    fn pinned_shards_sweep_single_sharded_column() {
        let report = run_scale(1_000, None, Some(2));
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].threads, 1);
        assert_eq!(report.cells[0].shards, 2);
    }
}
