//! The scale benchmark: MSOA wall-clock and pricing-phase cost as the
//! seller population grows to 100k, at one and several pricing threads.
//!
//! Unlike the figure sweeps in [`crate::runner`] this is *not* a paper
//! figure — it is the machine-readable evidence for the parallel
//! critical-value pricing and the incremental round buffer. Each cell
//! (`n` sellers × `rounds` × thread count) runs the same deterministic
//! [`crate::scenario::scale_instance`] several times and records the
//! **median** wall-clock plus the pricing-phase counters drained from
//! [`edge_telemetry::pricing`]; the replay/prefix iteration counts are
//! thread- and clock-independent, so they hold as evidence even on a
//! single-core runner where wall-clock speedup cannot show.
//!
//! Every cell also carries an FNV-1a digest of the serialized outcome.
//! Digests must agree across thread counts for the same `n` — the
//! report computes the cross-thread comparison itself
//! ([`ScaleSpeedup::identical_outcomes`]) and CI diffs the digest lines
//! of independent 1-thread and 4-thread runs.

use crate::scenario::scale_instance;
use crate::table::Table;
use edge_auction::msoa::{run_msoa, MsoaConfig};
use edge_auction::{pricing_threads_setting, set_pricing_threads};
use edge_common::rng::derive_rng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema identifier written into `BENCH_scale.json`.
pub const SCALE_SCHEMA: &str = "edge-market/bench-scale/v1";

/// Seller populations swept by default (clamped by `max_n`).
pub const SCALE_SIZES: [usize; 4] = [1_000, 10_000, 50_000, 100_000];

/// Rounds per instance; identical bid lists so the incremental buffer's
/// patched path is what gets measured after round one.
pub const SCALE_ROUNDS: u64 = 3;

/// Repetitions per cell; the median is reported.
pub const SCALE_REPS: usize = 3;

/// One measured cell: a `(n, threads)` pair run [`SCALE_REPS`] times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Seller population.
    pub n: usize,
    /// Rounds in the instance.
    pub rounds: u64,
    /// Pricing thread setting used for this cell (1 = sequential path).
    pub threads: usize,
    /// Repetitions behind the medians.
    pub reps: usize,
    /// Median wall-clock for the whole MSOA run, nanoseconds.
    pub median_total_ns: u64,
    /// `median_total_ns / rounds`.
    pub median_ns_per_round: u64,
    /// Median wall-clock spent in the payment (pricing) phase, summed
    /// over rounds, nanoseconds.
    pub median_pricing_ns: u64,
    /// Critical-value payments computed per second of pricing-phase
    /// wall-clock (median rep).
    pub payments_per_sec: f64,
    /// Payment replays per run — one per winner per round; identical at
    /// every thread count.
    pub payment_replays: u64,
    /// Greedy iterations executed across all replays (prefix + suffix).
    pub replay_iterations: u64,
    /// Of those, iterations answered in O(1) from the shared prefix.
    pub prefix_iterations: u64,
    /// FNV-1a 64 digest (hex) of the serialized outcome.
    pub outcome_digest: String,
}

/// Cross-thread comparison for one `n`: how much faster the pricing
/// phase ran versus the 1-thread cell, and whether outcomes matched.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleSpeedup {
    /// Seller population.
    pub n: usize,
    /// Rounds in the instance.
    pub rounds: u64,
    /// The multi-threaded cell's thread setting.
    pub threads: usize,
    /// `pricing_ns(1 thread) / pricing_ns(threads)`.
    pub pricing_speedup_vs_1: f64,
    /// Whether the outcome digests matched the 1-thread cell.
    pub identical_outcomes: bool,
}

/// The full report serialized to `BENCH_scale.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Schema identifier ([`SCALE_SCHEMA`]).
    pub schema: String,
    /// Hardware parallelism of the machine that produced the report —
    /// read this before interpreting wall-clock speedups: on a
    /// single-core runner they cannot exceed 1.
    pub threads_available: usize,
    /// Measured cells, in `(n, threads)` order.
    pub cells: Vec<ScaleCell>,
    /// Cross-thread digests and pricing speedups per population.
    pub speedups: Vec<ScaleSpeedup>,
}

/// FNV-1a 64 over a byte string — stable, dependency-free fingerprint.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs one `(n, threads)` cell: [`SCALE_REPS`] repetitions over the
/// same seeded instance, medians over wall-clock, counters from the
/// median-total rep.
fn run_cell(n: usize, threads: usize) -> ScaleCell {
    let mut rng = derive_rng(n as u64, "bench-scale");
    let instance = scale_instance(n, SCALE_ROUNDS, &mut rng);
    let config = MsoaConfig::pinned(2.0);
    set_pricing_threads(threads);

    let mut totals = Vec::with_capacity(SCALE_REPS);
    let mut pricing_ns = Vec::with_capacity(SCALE_REPS);
    let mut last = None;
    for _ in 0..SCALE_REPS {
        let before = edge_telemetry::pricing::snapshot();
        let start = Instant::now();
        let outcome = run_msoa(&instance, &config).expect("scale instances are feasible");
        totals.push(start.elapsed().as_nanos() as u64);
        let delta = edge_telemetry::pricing::snapshot().delta_since(&before);
        pricing_ns.push(delta.nanos);
        last = Some((outcome, delta));
    }
    let (outcome, counters) = last.expect("SCALE_REPS >= 1");
    let median_total_ns = median(totals);
    let median_pricing_ns = median(pricing_ns);
    let payments_per_sec = if median_pricing_ns == 0 {
        0.0
    } else {
        counters.replays as f64 / (median_pricing_ns as f64 / 1e9)
    };
    let serialized = serde_json::to_string(&outcome).expect("outcomes are plain data");
    ScaleCell {
        n,
        rounds: SCALE_ROUNDS,
        threads,
        reps: SCALE_REPS,
        median_total_ns,
        median_ns_per_round: median_total_ns / SCALE_ROUNDS,
        median_pricing_ns,
        payments_per_sec,
        payment_replays: counters.replays,
        replay_iterations: counters.replay_iterations,
        prefix_iterations: counters.prefix_iterations,
        outcome_digest: format!("{:016x}", fnv1a64(serialized.as_bytes())),
    }
}

/// Runs the scale sweep: populations from [`SCALE_SIZES`] up to
/// `max_n`, each at the given thread counts (`None` sweeps `{1, 4}`).
/// Restores the process pricing-thread setting afterwards.
pub fn run_scale(max_n: usize, threads: Option<usize>) -> ScaleReport {
    let saved = pricing_threads_setting();
    let thread_counts: Vec<usize> = match threads {
        Some(t) => vec![t],
        None => vec![1, 4],
    };
    let sizes: Vec<usize> = SCALE_SIZES
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect::<Vec<_>>();
    let sizes = if sizes.is_empty() {
        vec![max_n.max(1)]
    } else {
        sizes
    };

    let mut cells = Vec::new();
    let mut cell_us = Vec::new();
    for &n in &sizes {
        for &t in &thread_counts {
            let cell = run_cell(n, t);
            cell_us.push(cell.median_total_ns / 1_000);
            cells.push(cell);
        }
    }
    set_pricing_threads(saved);

    let mut speedups = Vec::new();
    for &n in &sizes {
        let Some(base) = cells.iter().find(|c| c.n == n && c.threads == 1) else {
            continue;
        };
        for cell in cells.iter().filter(|c| c.n == n && c.threads != 1) {
            speedups.push(ScaleSpeedup {
                n,
                rounds: cell.rounds,
                threads: cell.threads,
                pricing_speedup_vs_1: if cell.median_pricing_ns == 0 {
                    1.0
                } else {
                    base.median_pricing_ns as f64 / cell.median_pricing_ns as f64
                },
                identical_outcomes: cell.outcome_digest == base.outcome_digest,
            });
        }
    }

    crate::profile::set_stage("scale");
    crate::profile::record_sweep(sizes.len(), thread_counts.len() as u64, &cell_us);

    ScaleReport {
        schema: SCALE_SCHEMA.to_string(),
        threads_available: edge_auction::available_pricing_threads(),
        cells,
        speedups,
    }
}

impl ScaleReport {
    /// Renders the human-readable summary table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "n",
            "threads",
            "ms/round",
            "pricing ms",
            "payments/s",
            "replays",
            "prefix iters",
            "digest",
        ]);
        for c in &self.cells {
            t.push([
                c.n.to_string(),
                c.threads.to_string(),
                format!("{:.2}", c.median_ns_per_round as f64 / 1e6),
                format!("{:.2}", c.median_pricing_ns as f64 / 1e6),
                format!("{:.0}", c.payments_per_sec),
                c.payment_replays.to_string(),
                c.prefix_iterations.to_string(),
                c.outcome_digest.clone(),
            ]);
        }
        let mut out = t.render();
        for s in &self.speedups {
            out.push_str(&format!(
                "n={}: pricing x{:.2} at {} threads, outcomes {}\n",
                s.n,
                s.pricing_speedup_vs_1,
                s.threads,
                if s.identical_outcomes {
                    "identical"
                } else {
                    "DIVERGED"
                }
            ));
        }
        out
    }

    /// Serializes the report as pretty JSON (the `BENCH_scale.json`
    /// payload).
    pub fn to_json(&self) -> String {
        crate::table::to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn small_sweep_produces_identical_digests_across_threads() {
        let report = run_scale(1_000, None);
        assert_eq!(report.schema, SCALE_SCHEMA);
        assert_eq!(report.cells.len(), 2, "one size, two thread counts");
        assert_eq!(
            report.cells[0].outcome_digest,
            report.cells[1].outcome_digest
        );
        assert!(report.speedups.iter().all(|s| s.identical_outcomes));
        assert!(report.cells.iter().all(|c| c.payment_replays > 0));
        let json = report.to_json();
        assert!(json.contains("\"outcome_digest\""));
        assert!(json.contains(SCALE_SCHEMA));
        assert!(report.render().contains("payments/s"));
    }

    #[test]
    fn pinned_thread_count_sweeps_single_column() {
        let report = run_scale(1_000, Some(1));
        assert_eq!(report.cells.len(), 1);
        assert!(report.speedups.is_empty());
    }
}
