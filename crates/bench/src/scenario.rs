//! Auction-instance generation from the paper's §V-A parameters.
//!
//! Two generation paths exist:
//!
//! * the *direct* path here, drawing bids, demands, capacities, and
//!   windows straight from [`PaperParams`] — what the figure runners use
//!   (fast, fully controlled);
//! * the *integrated* path ([`integrated_instance`]) that runs the
//!   [`edge_sim`] engine over a workload trace and feeds its metrics
//!   through the [`edge_demand`] estimator — what the examples and
//!   end-to-end tests use to show the whole pipeline of the paper.

use edge_auction::bid::{Bid, Seller};
use edge_auction::msoa::{MultiRoundInstance, RoundInput};
use edge_auction::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Resource;
use edge_demand::{DemandConfig, DemandEstimator};
use edge_sim::engine::{SimConfig, Simulation};
use edge_workload::params::PaperParams;
use edge_workload::trace::{RequestTrace, TraceConfig};
use rand::Rng;

/// Scales a drawn demand by the request-volume knob (the paper sweeps
/// 100 vs 200 requests; demand is proportional to load) and by the
/// microservice population (§II: the needy subset `Ŝ ⊂ S` grows with the
/// deployment, so "with the increase in the number of microservices, the
/// edge platform must satisfy more requests" — Fig. 3b's narrative).
/// The default population (25) is the scale-1 reference.
fn scale_demand(demand: u64, params: &PaperParams) -> u64 {
    let load = params.requests_per_round as f64 / 100.0;
    let population = params.num_microservices as f64 / 25.0;
    ((demand as f64) * load * population).round() as u64
}

/// Draws one round's bids: every seller submits `J` alternatives.
fn draw_bids<R: Rng + ?Sized>(
    params: &PaperParams,
    rng: &mut R,
    sellers: &[MicroserviceId],
) -> Vec<Bid> {
    let mut bids = Vec::with_capacity(sellers.len() * params.bids_per_seller);
    for &seller in sellers {
        for j in 0..params.bids_per_seller {
            let amount = params.draw_amount(rng);
            // The bid's price scales with the amount around the paper's
            // U[10,35] per-bid price so that unit prices stay in a
            // plausible band regardless of amount.
            let price = params.draw_price(rng) * amount as f64 / 5.0;
            bids.push(
                Bid::new(seller, BidId::new(j), amount, price)
                    .expect("drawn bids are valid by construction"),
            );
        }
    }
    bids
}

/// Generates a feasible single-round instance (`SSAM` input).
///
/// The demand is clamped to the drawn bids' coverable supply so the
/// instance is always feasible (the paper implicitly assumes
/// feasibility).
pub fn single_round_instance<R: Rng + ?Sized>(params: &PaperParams, rng: &mut R) -> WspInstance {
    let sellers: Vec<MicroserviceId> = (0..params.num_microservices)
        .map(MicroserviceId::new)
        .collect();
    let bids = draw_bids(params, rng, &sellers);
    let supply: u64 = {
        let mut best = std::collections::BTreeMap::new();
        for b in &bids {
            let e = best.entry(b.seller).or_insert(0u64);
            *e = (*e).max(b.amount);
        }
        best.values().sum()
    };
    let demand = scale_demand(params.draw_demand(rng), params)
        .min(supply)
        .max(1);
    WspInstance::new(demand, bids).expect("demand clamped to supply")
}

/// Generates a multi-round instance (`MSOA` input) with per-seller
/// capacities and availability windows.
///
/// Each round's *true* demand is drawn from the paper's range and scaled
/// by the request volume; the *estimated* demand the platform auctions
/// for is the true demand inflated by up to `estimation_noise`
/// (relative), modelling a §III estimator that over-provisions rather
/// than risk starving a tenant (the estimator's `ceil` quantization and
/// the platform's SLA incentive both bias upward). Demands are clamped
/// so that the window-feasible supply covers them (capacities may still
/// bite across rounds — that is the online tension MSOA manages).
pub fn multi_round_instance<R: Rng + ?Sized>(
    params: &PaperParams,
    estimation_noise: f64,
    rng: &mut R,
) -> MultiRoundInstance {
    assert!(
        (0.0..1.0).contains(&estimation_noise),
        "noise must lie in [0, 1)"
    );
    let sellers: Vec<Seller> = (0..params.num_microservices)
        .map(|s| {
            Seller::new(
                MicroserviceId::new(s),
                params.draw_capacity(rng),
                params.draw_window(rng),
            )
            .expect("drawn windows are ordered")
        })
        .collect();

    let rounds = (0..params.rounds)
        .map(|t| {
            let present: Vec<MicroserviceId> = sellers
                .iter()
                .filter(|s| s.available_at(t))
                .map(|s| s.id)
                .collect();
            let bids = draw_bids(params, rng, &present);
            let supply: u64 = {
                let mut best = std::collections::BTreeMap::new();
                for b in &bids {
                    let e = best.entry(b.seller).or_insert(0u64);
                    *e = (*e).max(b.amount);
                }
                best.values().sum()
            };
            // Keep headroom: demand at most half the round's coverable
            // supply, so capacity depletion — not raw supply — is the
            // binding constraint.
            let cap = (supply / 2).max(1);
            let true_demand = scale_demand(params.draw_demand(rng), params)
                .min(cap)
                .max(1);
            let noise = 1.0 + estimation_noise * rng.gen::<f64>();
            let estimated = ((true_demand as f64 * noise).round() as u64).clamp(1, cap);
            RoundInput::new(estimated, true_demand, bids)
        })
        .collect();

    MultiRoundInstance::new(sellers, rounds).expect("generated instances are valid")
}

/// Generates the scale-benchmark instance: `n` sellers far beyond the
/// paper's §V-A population, auctioned over `rounds` identical rounds.
///
/// The shape is deliberately regular — every seller always available,
/// ample capacity, the *same* bid list every round — so the benchmark
/// isolates the two hot paths under test: per-winner payment replays
/// (demand of several hundred units ⇒ hundreds of winners per round)
/// and the incremental round buffer (repeated bid lists ⇒ the patched
/// path, with only winners' χ changing between rounds).
pub fn scale_instance<R: Rng + ?Sized>(n: usize, rounds: u64, rng: &mut R) -> MultiRoundInstance {
    assert!(n > 0 && rounds > 0, "scale cells are non-empty");
    let sellers: Vec<Seller> = (0..n)
        .map(|s| {
            Seller::new(MicroserviceId::new(s), 64, (0, rounds - 1)).expect("window is ordered")
        })
        .collect();
    let mut bids = Vec::with_capacity(n * 2);
    for seller in &sellers {
        let alternatives = 1 + rng.gen_range(0..2usize);
        for j in 0..alternatives {
            let amount = rng.gen_range(1..=4u64);
            let price = rng.gen_range(10.0..35.0) * amount as f64 / 5.0;
            bids.push(Bid::new(seller.id, BidId::new(j), amount, price).expect("drawn bid valid"));
        }
    }
    let supply: u64 = {
        let mut best = std::collections::BTreeMap::new();
        for b in &bids {
            let e = best.entry(b.seller).or_insert(0u64);
            *e = (*e).max(b.amount);
        }
        best.values().sum()
    };
    let demand = (supply / 4).clamp(1, 512);
    let rounds = (0..rounds)
        .map(|_| RoundInput::new(demand, demand, bids.clone()))
        .collect();
    MultiRoundInstance::new(sellers, rounds).expect("scale instances are valid")
}

/// The integrated pipeline of the paper: run the edge-cloud simulator
/// over a §V-A workload, estimate each needy microservice's demand with
/// the §III estimator, and auction the aggregate shortfall among the
/// microservices holding spare resources.
///
/// Returns the multi-round instance derived from simulation observables.
pub fn integrated_instance<R: Rng + ?Sized>(
    params: &PaperParams,
    sim_config: SimConfig,
    rng: &mut R,
) -> MultiRoundInstance {
    let trace = RequestTrace::generate(
        TraceConfig {
            num_users: params.num_users,
            num_microservices: params.num_microservices,
            rounds: params.rounds,
            target_requests_per_round: Some(params.requests_per_round),
            ..TraceConfig::default()
        },
        rng,
    );
    let mut sim = Simulation::new(trace, sim_config);
    let estimator = DemandEstimator::new(DemandConfig::default());
    let hub = sim.metrics();

    let sellers: Vec<Seller> = (0..params.num_microservices)
        .map(|s| {
            Seller::new(
                MicroserviceId::new(s),
                params.draw_capacity(rng),
                (0, params.rounds.saturating_sub(1)),
            )
            .expect("window ordered")
        })
        .collect();

    let mut rounds = Vec::with_capacity(params.rounds as usize);
    while let Some(round) = sim.step() {
        let batch = hub.at_round(round);
        let estimates = estimator.estimate_round(&batch, round.index() + 1);

        // Sellers: microservices with spare allocation; each offers its
        // spare (rounded down to units) at a drawn price.
        let mut bids = Vec::new();
        for m in &batch {
            let spare = sim.spare_of(m.ms).unwrap_or(Resource::ZERO).value().floor() as u64;
            if spare >= 1 {
                for j in 0..params.bids_per_seller {
                    let amount = spare.min(1 + j as u64 * 2).max(1);
                    let price = params.draw_price(rng) * amount as f64 / 5.0;
                    bids.push(Bid::new(m.ms, BidId::new(j), amount, price).expect("valid"));
                }
            }
        }

        // Demand: the aggregate estimated shortfall of busy
        // microservices, clamped to the sellable supply.
        let supply: u64 = {
            let mut best = std::collections::BTreeMap::new();
            for b in &bids {
                let e = best.entry(b.seller).or_insert(0u64);
                *e = (*e).max(b.amount);
            }
            best.values().sum()
        };
        let raw_estimate: u64 = estimates.iter().map(|d| d.units()).sum();
        let true_backlog: u64 = batch.iter().map(|m| m.queued_work.ceil() as u64).sum();
        let estimated = raw_estimate.min(supply);
        let true_demand = true_backlog.min(supply);
        rounds.push(RoundInput::new(estimated, true_demand, bids));
    }

    MultiRoundInstance::new(sellers, rounds).expect("simulation produces valid rounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_auction::msoa::{run_msoa, MsoaConfig};
    use edge_auction::ssam::{run_ssam, SsamConfig};
    use edge_common::rng::derive_rng;

    #[test]
    fn single_round_is_always_feasible() {
        let params = PaperParams::default();
        for seed in 0..20 {
            let mut rng = derive_rng(seed, "fig-scenario");
            let inst = single_round_instance(&params, &mut rng);
            assert!(
                run_ssam(&inst, &SsamConfig::default()).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn single_round_demand_scales_with_requests() {
        let lo = PaperParams::default().with_requests(100);
        let hi = PaperParams::default().with_requests(200);
        let avg = |p: &PaperParams| -> f64 {
            (0..30)
                .map(|s| {
                    let mut rng = derive_rng(s, "scale");
                    single_round_instance(p, &mut rng).demand() as f64
                })
                .sum::<f64>()
                / 30.0
        };
        assert!(
            avg(&hi) > avg(&lo),
            "demand should grow with request volume"
        );
    }

    #[test]
    fn multi_round_runs_clean_under_default_params() {
        let params = PaperParams::default();
        let mut rng = derive_rng(7, "msoa-scenario");
        let inst = multi_round_instance(&params, 0.2, &mut rng);
        assert_eq!(inst.num_rounds(), params.rounds);
        let out = run_msoa(&inst, &MsoaConfig::default()).unwrap();
        assert!(out.social_cost.value() > 0.0);
    }

    #[test]
    fn estimation_noise_zero_means_exact_estimates() {
        let params = PaperParams::default();
        let mut rng = derive_rng(9, "noise");
        let inst = multi_round_instance(&params, 0.0, &mut rng);
        for r in inst.rounds() {
            assert_eq!(r.estimated_demand, r.true_demand);
        }
    }

    #[test]
    fn integrated_pipeline_produces_auctionable_rounds() {
        let params = PaperParams::default().with_microservices(12).with_rounds(6);
        let mut rng = derive_rng(11, "integrated");
        let inst = integrated_instance(
            &params,
            SimConfig {
                num_clouds: 3,
                cloud_capacity: 5.0,
            },
            &mut rng,
        );
        assert_eq!(inst.num_rounds(), 6);
        // The market should be active: some round has sellers and demand.
        assert!(inst.rounds().iter().any(|r| !r.bids.is_empty()));
        let out = run_msoa(&inst, &MsoaConfig::default()).unwrap();
        assert_eq!(out.rounds.len(), 6);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = PaperParams::default();
        let a = multi_round_instance(&params, 0.2, &mut derive_rng(3, "det"));
        let b = multi_round_instance(&params, 0.2, &mut derive_rng(3, "det"));
        assert_eq!(a, b);
    }
}
