//! Minimal fixed-width table rendering and JSON export for the figure
//! runners.

use serde::Serialize;
use std::fmt::Write as _;

/// A printable results table: header plus rows of formatted cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Serializes rows as pretty JSON — every figure runner can dump its raw
/// series next to the rendered table.
pub fn to_json<T: Serialize>(rows: &T) -> String {
    serde_json::to_string_pretty(rows).expect("rows are plain data")
}

/// Formats an f64 with three decimals (the precision the paper's plots
/// can be read to).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["S", "ratio"]);
        t.push(["5", "1.000"]);
        t.push(["25", "1.234"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("ratio"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("1.234"));
        // Right-aligned: the "5" row pads to the same width as "25".
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only one"]);
    }

    #[test]
    fn json_round_trips() {
        #[derive(serde::Serialize)]
        struct Row {
            s: usize,
            ratio: f64,
        }
        let json = to_json(&vec![Row { s: 5, ratio: 1.25 }]);
        assert!(json.contains("1.25"));
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(2.0), "2.000");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push(["1"]);
        assert_eq!(t.len(), 1);
    }
}
