//! Thread-count determinism regression: the parallel scenario sweep
//! must produce **byte-identical** summary tables (and JSON series) no
//! matter how many workers the pool runs — the merge in
//! `parallel::par_map` re-orders results by item index, and every
//! runner derives its RNG from the (point, seed) pair, never from
//! thread identity.
//!
//! `fig4b` is deliberately absent: it reports wall-clock timings, which
//! no amount of scheduling discipline makes reproducible.

use edge_bench::{parallel, report};

/// Cheap-but-representative figures: single-round sweeps, a multi-round
/// sweep, the ablation (which exercises the per-seed RNG the most), and
/// the fault matrix (whose seeded fault plans and backfill re-auctions
/// must also be scheduling-independent).
const FIGURES: &[&str] = &["fig3a", "fig3b", "fig6a", "ablation", "fault-matrix"];

#[test]
fn tables_identical_at_1_and_4_threads() {
    for name in FIGURES {
        parallel::set_threads(1);
        let serial = report::render_figure(name, 2).expect("known figure");
        parallel::set_threads(4);
        let parallel4 = report::render_figure(name, 2).expect("known figure");
        parallel::set_threads(0);

        assert_eq!(
            serial.table, parallel4.table,
            "{name}: table diverged across thread counts"
        );
        assert_eq!(serial.json, parallel4.json, "{name}: JSON series diverged");
    }
}
