//! Minimal, dependency-free argument parsing.
//!
//! The CLI speaks `edge-market <command> [--flag value]...`. Flags are
//! order-insensitive, every flag takes exactly one value, and unknown
//! flags are errors (catching typos beats silently ignoring them).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Commands that take one positional argument right after their name
/// (`edge-market bench diff ...`, `edge-market replay log.jsonl`).
/// Every other command still rejects positionals outright.
const COMMANDS_WITH_SUBCOMMAND: &[&str] = &["bench", "replay"];

/// Flags that are boolean switches: they take no value and parse as
/// `"true"` (`edge-market explain --summary --trace t.jsonl`).
const BOOLEAN_SWITCHES: &[&str] = &["summary", "deals", "profile"];

/// A parsed command line: the subcommand plus its flag map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand name.
    pub command: String,
    /// The positional sub-subcommand, for the commands that take one
    /// (see [`COMMANDS_WITH_SUBCOMMAND`]).
    pub subcommand: Option<String>,
    flags: BTreeMap<String, String>,
}

/// Errors from argument parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// A flag was given without a value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A flag appeared twice.
    DuplicateFlag(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    InvalidValue {
        /// Which flag.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// A flag is not recognized by the command.
    UnknownFlag(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "no command given; try `edge-market help`"),
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgsError::UnexpectedPositional(arg) => {
                write!(
                    f,
                    "unexpected argument '{arg}' (flags look like --name value)"
                )
            }
            ArgsError::DuplicateFlag(flag) => write!(f, "flag --{flag} given twice"),
            ArgsError::MissingFlag(flag) => write!(f, "required flag --{flag} is missing"),
            ArgsError::InvalidValue { flag, value } => {
                write!(f, "cannot parse '{value}' for flag --{flag}")
            }
            ArgsError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
        }
    }
}

impl Error for ArgsError {}

impl ParsedArgs {
    /// Parses `args` (excluding the program name).
    ///
    /// # Errors
    ///
    /// See [`ArgsError`].
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut it = args.into_iter();
        let command = it.next().ok_or(ArgsError::MissingCommand)?;
        let mut subcommand = None;
        let mut flags = BTreeMap::new();
        let mut first = true;
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                if first && COMMANDS_WITH_SUBCOMMAND.contains(&command.as_str()) {
                    subcommand = Some(arg);
                    first = false;
                    continue;
                }
                return Err(ArgsError::UnexpectedPositional(arg));
            };
            first = false;
            let value = if BOOLEAN_SWITCHES.contains(&name) {
                "true".to_owned()
            } else {
                it.next()
                    .ok_or_else(|| ArgsError::MissingValue(name.to_owned()))?
            };
            if flags.insert(name.to_owned(), value).is_some() {
                return Err(ArgsError::DuplicateFlag(name.to_owned()));
            }
        }
        Ok(ParsedArgs {
            command,
            subcommand,
            flags,
        })
    }

    /// Returns a flag's raw value.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// Returns a required flag or an error naming it.
    ///
    /// # Errors
    ///
    /// [`ArgsError::MissingFlag`] when absent.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgsError> {
        self.get(flag).ok_or(ArgsError::MissingFlag(flag))
    }

    /// Parses a flag into any `FromStr` type, with a default when
    /// absent.
    ///
    /// # Errors
    ///
    /// [`ArgsError::InvalidValue`] when present but unparseable.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::InvalidValue {
                flag: flag.to_owned(),
                value: raw.to_owned(),
            }),
        }
    }

    /// Rejects any flag not in the allow list.
    ///
    /// # Errors
    ///
    /// [`ArgsError::UnknownFlag`] naming the first unknown flag.
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), ArgsError> {
        for flag in self.flags.keys() {
            if !allowed.contains(&flag.as_str()) {
                return Err(ArgsError::UnknownFlag(flag.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ParsedArgs, ArgsError> {
        ParsedArgs::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_command_and_flags() {
        let p = parse(&["msoa", "--input", "x.json", "--variant", "da"]).unwrap();
        assert_eq!(p.command, "msoa");
        assert_eq!(p.subcommand, None);
        assert_eq!(p.get("input"), Some("x.json"));
        assert_eq!(p.get("variant"), Some("da"));
        assert_eq!(p.get("missing"), None);
    }

    #[test]
    fn bench_takes_a_subcommand_and_switches_take_no_value() {
        let p = parse(&["bench", "diff", "--tolerance", "0.5"]).unwrap();
        assert_eq!(p.command, "bench");
        assert_eq!(p.subcommand.as_deref(), Some("diff"));
        assert_eq!(p.get("tolerance"), Some("0.5"));
        // `replay` takes its log path positionally.
        let p = parse(&["replay", "run.jsonl", "--trace", "t.jsonl"]).unwrap();
        assert_eq!(p.subcommand.as_deref(), Some("run.jsonl"));
        // Only the first position is a subcommand slot.
        assert_eq!(
            parse(&["bench", "diff", "extra"]),
            Err(ArgsError::UnexpectedPositional("extra".into()))
        );
        // `--summary` is a boolean switch: it consumes no value.
        let p = parse(&["explain", "--summary", "--trace", "t.jsonl"]).unwrap();
        assert_eq!(p.get("summary"), Some("true"));
        assert_eq!(p.get("trace"), Some("t.jsonl"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(parse(&[]), Err(ArgsError::MissingCommand));
        assert_eq!(
            parse(&["ssam", "--input"]),
            Err(ArgsError::MissingValue("input".into()))
        );
        assert_eq!(
            parse(&["ssam", "positional"]),
            Err(ArgsError::UnexpectedPositional("positional".into()))
        );
        assert_eq!(
            parse(&["ssam", "--a", "1", "--a", "2"]),
            Err(ArgsError::DuplicateFlag("a".into()))
        );
    }

    #[test]
    fn typed_accessors() {
        let p = parse(&["generate", "--seed", "7"]).unwrap();
        assert_eq!(p.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(p.get_or("rounds", 10u64).unwrap(), 10);
        // Repeated typed access must keep succeeding (no consumption).
        assert!(p.get_or::<u64>("seed", 0).is_ok());
        assert!(p.get_or::<u64>("seed", 0).is_ok());
        let bad = parse(&["generate", "--seed", "seven"]).unwrap();
        assert!(matches!(
            bad.get_or::<u64>("seed", 0),
            Err(ArgsError::InvalidValue { .. })
        ));
    }

    #[test]
    fn require_and_allowlist() {
        let p = parse(&["ssam", "--input", "x.json", "--oops", "1"]).unwrap();
        assert_eq!(p.require("input").unwrap(), "x.json");
        assert_eq!(p.require("output"), Err(ArgsError::MissingFlag("output")));
        assert_eq!(
            p.allow_only(&["input"]),
            Err(ArgsError::UnknownFlag("oops".into()))
        );
        assert!(p.allow_only(&["input", "oops"]).is_ok());
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(ArgsError::MissingFlag("input")
            .to_string()
            .contains("--input"));
        assert!(ArgsError::UnknownFlag("xyz".into())
            .to_string()
            .contains("--xyz"));
    }
}
