//! `edge-market bench diff` — the performance-regression gate.
//!
//! Compares a fresh scale-benchmark run (or a `--fresh` report file)
//! against the committed `BENCH_scale.json` baseline, cell by cell over
//! the intersecting `(n, threads, shards)` triples. v1 baselines (no
//! shard column) are upgraded on load — their cells compare as
//! `shards = 1` and their digests stay hard-checked:
//!
//! * **outcome digests must match exactly** — a digest mismatch means
//!   the auction now computes different winners or payments, which is
//!   never acceptable from a performance change;
//! * **wall-clock medians must stay within a configurable relative
//!   tolerance** (`fresh ≤ base × (1 + tolerance)`), checked for both
//!   the total run and the pricing phase.
//!
//! Wall-clock is hardware-dependent: the committed baseline records the
//! machine that produced it (`threads_available`), so CI wires a loose
//! `--tolerance` where only digest mismatches can realistically fail,
//! while a developer box regenerating its own baseline can use a tight
//! one. Any regression renders a readable report and exits nonzero
//! ([`crate::commands::CliError::BenchRegression`]).

use crate::args::{ArgsError, ParsedArgs};
use crate::commands::CliError;
use edge_bench::scale::{parse_report, run_scale, ScaleReport};
use edge_bench::table::Table;
use std::fmt::Write as _;
use std::fs;

/// Outcome of one baseline-vs-fresh comparison.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The rendered, human-readable comparison table + verdict.
    pub rendered: String,
    /// Cells compared (intersection of `(n, threads, shards)` triples).
    pub compared: usize,
    /// Human-readable regression descriptions; empty means pass.
    pub regressions: Vec<String>,
}

/// Compares `fresh` against `base` (see module docs for the rules).
pub fn compare(base: &ScaleReport, fresh: &ScaleReport, tolerance: f64) -> DiffOutcome {
    let mut table = Table::new([
        "n",
        "threads",
        "shards",
        "digest",
        "base ms",
        "fresh ms",
        "ratio",
        "pricing ratio",
        "verdict",
    ]);
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for base_cell in &base.cells {
        let Some(fresh_cell) = fresh.cells.iter().find(|c| {
            c.n == base_cell.n && c.threads == base_cell.threads && c.shards == base_cell.shards
        }) else {
            continue;
        };
        compared += 1;
        let mut verdicts = Vec::new();
        let digest_ok = fresh_cell.outcome_digest == base_cell.outcome_digest;
        if !digest_ok {
            verdicts.push("DIGEST");
            regressions.push(format!(
                "n={} threads={} shards={}: outcome digest changed {} -> {} \
                 (outcomes must be bit-identical)",
                base_cell.n,
                base_cell.threads,
                base_cell.shards,
                base_cell.outcome_digest,
                fresh_cell.outcome_digest
            ));
        }
        let ratio = ratio_of(fresh_cell.median_total_ns, base_cell.median_total_ns);
        if ratio > 1.0 + tolerance {
            verdicts.push("SLOW");
            regressions.push(format!(
                "n={} threads={} shards={}: total wall-clock {:.2}x the baseline \
                 (tolerance {:.2}x)",
                base_cell.n,
                base_cell.threads,
                base_cell.shards,
                ratio,
                1.0 + tolerance
            ));
        }
        let pricing_ratio = ratio_of(fresh_cell.median_pricing_ns, base_cell.median_pricing_ns);
        if pricing_ratio > 1.0 + tolerance {
            verdicts.push("SLOW-PRICING");
            regressions.push(format!(
                "n={} threads={} shards={}: pricing phase {:.2}x the baseline \
                 (tolerance {:.2}x)",
                base_cell.n,
                base_cell.threads,
                base_cell.shards,
                pricing_ratio,
                1.0 + tolerance
            ));
        }
        table.push([
            base_cell.n.to_string(),
            base_cell.threads.to_string(),
            base_cell.shards.to_string(),
            if digest_ok { "ok" } else { "CHANGED" }.to_string(),
            format!("{:.2}", base_cell.median_total_ns as f64 / 1e6),
            format!("{:.2}", fresh_cell.median_total_ns as f64 / 1e6),
            format!("{ratio:.2}x"),
            format!("{pricing_ratio:.2}x"),
            if verdicts.is_empty() {
                "pass".to_string()
            } else {
                verdicts.join("+")
            },
        ]);
    }
    let mut rendered = table.render();
    let _ = writeln!(
        rendered,
        "compared {compared} cells (baseline machine: {} hardware threads, fresh: {})",
        base.threads_available, fresh.threads_available
    );
    if regressions.is_empty() {
        let _ = writeln!(rendered, "verdict: PASS within tolerance");
    } else {
        let _ = writeln!(rendered, "verdict: {} regression(s)", regressions.len());
        for r in &regressions {
            let _ = writeln!(rendered, "  REGRESSION {r}");
        }
    }
    DiffOutcome {
        rendered,
        compared,
        regressions,
    }
}

/// One stage's base/fresh wall-clock pair for the `--profile` view.
struct StageDelta {
    stage: &'static str,
    base_ns: u64,
    fresh_ns: u64,
}

/// Renders the per-stage attribution table for every compared cell:
/// selection (arena build, merge excluded), merge, pricing, and the
/// unattributed remainder, each as a fresh/base ratio. The `worst`
/// column names the stage that *added the most wall-clock* — ratios
/// flag relative movement, but the added nanoseconds are what the total
/// regression is actually made of. Cells from upgraded v1 baselines
/// (no stage columns) render `n/a` rather than fake ratios.
pub fn stage_breakdown(base: &ScaleReport, fresh: &ScaleReport) -> String {
    let mut table = Table::new([
        "n",
        "threads",
        "shards",
        "selection",
        "merge",
        "pricing",
        "other",
        "worst stage",
    ]);
    let mut rows = 0usize;
    for base_cell in &base.cells {
        let Some(fresh_cell) = fresh.cells.iter().find(|c| {
            c.n == base_cell.n && c.threads == base_cell.threads && c.shards == base_cell.shards
        }) else {
            continue;
        };
        rows += 1;
        if base_cell.selection_ns == 0 && base_cell.median_pricing_ns == 0 {
            table.push([
                base_cell.n.to_string(),
                base_cell.threads.to_string(),
                base_cell.shards.to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "n/a".to_string(),
                "n/a (v1 baseline)".to_string(),
            ]);
            continue;
        }
        let stages = [
            StageDelta {
                stage: "selection",
                base_ns: base_cell.selection_ns.saturating_sub(base_cell.merge_ns),
                fresh_ns: fresh_cell.selection_ns.saturating_sub(fresh_cell.merge_ns),
            },
            StageDelta {
                stage: "merge",
                base_ns: base_cell.merge_ns,
                fresh_ns: fresh_cell.merge_ns,
            },
            StageDelta {
                stage: "pricing",
                base_ns: base_cell.median_pricing_ns,
                fresh_ns: fresh_cell.median_pricing_ns,
            },
            StageDelta {
                stage: "other",
                base_ns: base_cell
                    .median_total_ns
                    .saturating_sub(base_cell.selection_ns)
                    .saturating_sub(base_cell.median_pricing_ns),
                fresh_ns: fresh_cell
                    .median_total_ns
                    .saturating_sub(fresh_cell.selection_ns)
                    .saturating_sub(fresh_cell.median_pricing_ns),
            },
        ];
        let worst = stages
            .iter()
            .max_by_key(|s| s.fresh_ns.saturating_sub(s.base_ns))
            .filter(|s| s.fresh_ns > s.base_ns);
        let cell = |s: &StageDelta| format!("{:.2}x", ratio_of(s.fresh_ns, s.base_ns));
        table.push([
            base_cell.n.to_string(),
            base_cell.threads.to_string(),
            base_cell.shards.to_string(),
            cell(&stages[0]),
            cell(&stages[1]),
            cell(&stages[2]),
            cell(&stages[3]),
            worst.map_or_else(
                || "none (no stage slower)".to_string(),
                |s| {
                    format!(
                        "{} (+{:.2}ms)",
                        s.stage,
                        s.fresh_ns.saturating_sub(s.base_ns) as f64 / 1e6
                    )
                },
            ),
        ]);
    }
    if rows == 0 {
        return String::new();
    }
    format!(
        "stage attribution (fresh/base wall-clock)\n{}",
        table.render()
    )
}

fn ratio_of(fresh_ns: u64, base_ns: u64) -> f64 {
    if base_ns == 0 {
        if fresh_ns == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        fresh_ns as f64 / base_ns as f64
    }
}

/// Loads and parses a report file, upgrading v1 payloads; the bool
/// reports whether an upgrade happened (surfaced as a note, never an
/// error — v1 cells stay hard-checked after upgrade).
fn load_report(path: &str) -> Result<(ScaleReport, bool), CliError> {
    parse_report(&fs::read_to_string(path)?)
        .map_err(|e| CliError::BenchRegression(format!("{path}: {e}")))
}

/// The `bench diff` command body.
pub fn bench_diff(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&[
        "baseline",
        "fresh",
        "scale-max-n",
        "pricing-threads",
        "shards",
        "tolerance",
        "profile",
    ])?;
    let baseline_path = args.get("baseline").unwrap_or("BENCH_scale.json");
    let tolerance = args.get_or("tolerance", 1.0f64)?;
    // NaN is rejected along with negatives: both fail this check.
    if tolerance.is_nan() || tolerance < 0.0 {
        return Err(ArgsError::InvalidValue {
            flag: "tolerance".into(),
            value: tolerance.to_string(),
        }
        .into());
    }
    let (baseline, baseline_upgraded) = load_report(baseline_path)?;

    let (fresh, fresh_source) = match args.get("fresh") {
        Some(path) => (load_report(path)?.0, path.to_owned()),
        None => {
            let max_n = args.get_or("scale-max-n", 1_000usize)?;
            let pinned = crate::commands::apply_pricing_threads(args)?;
            let pinned_shards = crate::commands::apply_shards(args)?;
            (
                run_scale(max_n, pinned, pinned_shards),
                format!("fresh run (max n {max_n})"),
            )
        }
    };

    let outcome = compare(&baseline, &fresh, tolerance);
    let mut out = format!(
        "bench diff: {baseline_path} (baseline) vs {fresh_source}, tolerance {tolerance}\n"
    );
    if baseline_upgraded {
        let _ = writeln!(
            out,
            "note: baseline schema upgraded from v1 (shard column defaulted to 1; \
             digests still hard-checked)"
        );
    }
    out.push_str(&outcome.rendered);
    if args.get("profile").is_some() {
        out.push_str(&stage_breakdown(&baseline, &fresh));
    }
    if outcome.compared == 0 {
        return Err(CliError::BenchRegression(format!(
            "{out}no overlapping (n, threads) cells between baseline and fresh run — \
             nothing was actually compared"
        )));
    }
    if outcome.regressions.is_empty() {
        Ok(out)
    } else {
        Err(CliError::BenchRegression(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ScaleReport {
        // A real (tiny) run keeps the struct shape honest without
        // hand-building cells.
        run_scale(1_000, Some(1), None)
    }

    #[test]
    fn identical_reports_pass() {
        let report = tiny_report();
        let outcome = compare(&report, &report, 0.0);
        assert_eq!(outcome.compared, 1);
        assert!(outcome.regressions.is_empty(), "{:?}", outcome.regressions);
        assert!(outcome.rendered.contains("PASS"), "{}", outcome.rendered);
    }

    #[test]
    fn digest_change_is_always_a_regression() {
        let base = tiny_report();
        let mut fresh = base.clone();
        fresh.cells[0].outcome_digest = "deadbeefdeadbeef".to_owned();
        // Even an infinite tolerance cannot excuse a digest change.
        let outcome = compare(&base, &fresh, f64::INFINITY);
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.rendered.contains("DIGEST"), "{}", outcome.rendered);
    }

    #[test]
    fn slowdown_beyond_tolerance_is_a_regression() {
        let base = tiny_report();
        let mut fresh = base.clone();
        fresh.cells[0].median_total_ns = base.cells[0].median_total_ns.saturating_mul(10).max(10);
        let outcome = compare(&base, &fresh, 1.0);
        assert!(
            outcome.regressions.iter().any(|r| r.contains("wall-clock")),
            "{:?}",
            outcome.regressions
        );
        // ...but a loose enough tolerance forgives pure wall-clock.
        let forgiving = compare(&base, &fresh, 100.0);
        assert!(
            forgiving.regressions.is_empty(),
            "{:?}",
            forgiving.regressions
        );
    }

    #[test]
    fn v1_baseline_file_upgrades_with_note() {
        let dir = std::env::temp_dir().join(format!("edge-bench-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1-baseline.json");
        std::fs::write(
            &path,
            r#"{
                "schema": "edge-market/bench-scale/v1",
                "threads_available": 1,
                "cells": [{
                    "n": 1000, "rounds": 3, "threads": 1, "reps": 3,
                    "median_total_ns": 5, "median_ns_per_round": 1,
                    "median_pricing_ns": 2, "payments_per_sec": 1.0,
                    "payment_replays": 4, "replay_iterations": 9,
                    "prefix_iterations": 3, "outcome_digest": "aa"
                }],
                "speedups": []
            }"#,
        )
        .unwrap();
        let (report, upgraded) = load_report(path.to_str().unwrap()).unwrap();
        assert!(upgraded);
        assert_eq!(report.cells[0].shards, 1);
        assert_eq!(report.cells[0].outcome_digest, "aa");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stage_breakdown_names_the_worst_regressing_stage() {
        let base = tiny_report();
        let mut fresh = base.clone();
        // Inflate pricing far beyond the other stages: it must be named.
        fresh.cells[0].median_pricing_ns = base.cells[0]
            .median_pricing_ns
            .saturating_mul(50)
            .max(50_000_000);
        fresh.cells[0].median_total_ns = base.cells[0]
            .median_total_ns
            .saturating_add(fresh.cells[0].median_pricing_ns);
        let rendered = stage_breakdown(&base, &fresh);
        assert!(rendered.contains("stage attribution"), "{rendered}");
        assert!(rendered.contains("pricing (+"), "{rendered}");
    }

    #[test]
    fn stage_breakdown_handles_v1_cells_without_stage_columns() {
        let mut base = tiny_report();
        base.cells[0].selection_ns = 0;
        base.cells[0].merge_ns = 0;
        base.cells[0].median_pricing_ns = 0;
        let fresh = tiny_report();
        let rendered = stage_breakdown(&base, &fresh);
        assert!(rendered.contains("n/a (v1 baseline)"), "{rendered}");
    }

    #[test]
    fn disjoint_reports_compare_nothing() {
        let base = tiny_report();
        let mut fresh = base.clone();
        for c in &mut fresh.cells {
            c.threads = 7;
        }
        let outcome = compare(&base, &fresh, 1.0);
        assert_eq!(outcome.compared, 0);
    }
}
