//! Command implementations.
//!
//! Every command is a pure function from parsed arguments to a rendered
//! `String` (plus optional file side effects), so the whole CLI is
//! testable without spawning processes.

use crate::args::{ArgsError, ParsedArgs};
use crate::explain::{explain_round, parse_trace, ExplainError};
use crate::faults::{parse_fault_plan, FaultPlanError};
use edge_auction::msoa::{run_msoa_traced, MsoaConfig, MultiRoundInstance};
use edge_auction::properties::{
    audit_truthfulness, check_critical_payments, check_individual_rationality, check_monotonicity,
};
use edge_auction::recovery::{run_msoa_with_faults_traced, FaultPlan, RecoveryConfig};
use edge_auction::ssam::{run_ssam, run_ssam_traced, SsamConfig};
use edge_auction::variants::{run_variant, transform_instance, MsoaVariant};
use edge_auction::wsp::WspInstance;
use edge_bench::scenario::{multi_round_instance, single_round_instance};
use edge_common::rng::derive_rng;
use edge_telemetry::{Collector, Scoped, Trace};
use edge_workload::params::PaperParams;
use std::error::Error;
use std::fmt::Write as _;
use std::fs;

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Argument problem.
    Args(ArgsError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// File I/O problem.
    Io(std::io::Error),
    /// JSON (de)serialization problem.
    Json(serde_json::Error),
    /// The mechanism rejected the instance.
    Auction(edge_auction::AuctionError),
    /// A `--faults` plan file failed to parse.
    Faults(FaultPlanError),
    /// Two flags that cannot be combined.
    FlagConflict(&'static str, &'static str),
    /// A `--trace` file failed to parse or lacks the requested round.
    Explain(ExplainError),
    /// `bench diff` found a regression (or had nothing to compare);
    /// carries the rendered report.
    BenchRegression(String),
    /// `metrics-lint` rejected an exposition file.
    Lint(String),
    /// The event-sourced service refused an event structurally.
    Service(edge_auction::service::ServiceError),
    /// An event log failed to read, verify, or replay.
    Log(edge_auction::service::LogError),
    /// A `--net-faults` plan file failed to parse.
    NetFaults(crate::netfaults::NetFaultPlanError),
    /// The federation refused to build or run; carries the detail.
    Federation(String),
    /// A federation event log failed to read, verify, or replay.
    FedLog(edge_auction::federation::FedLogError),
    /// A `replay` flag contradicts the value recorded in the log header.
    ReplayConflict {
        /// The conflicting flag.
        flag: &'static str,
        /// The value passed on the command line.
        cli: String,
        /// The value the log header records.
        header: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command '{c}'; try `edge-market help`")
            }
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Auction(e) => write!(f, "auction error: {e}"),
            CliError::Faults(e) => write!(f, "fault plan error: {e}"),
            CliError::FlagConflict(a, b) => {
                write!(f, "--{a} cannot be combined with --{b}")
            }
            CliError::Explain(e) => write!(f, "explain error: {e}"),
            CliError::BenchRegression(report) => write!(f, "bench regression\n{report}"),
            CliError::Lint(e) => write!(f, "metrics lint failed: {e}"),
            CliError::Service(e) => write!(f, "service error: {e}"),
            CliError::Log(e) => write!(f, "event log error: {e}"),
            CliError::NetFaults(e) => write!(f, "net-fault plan error: {e}"),
            CliError::Federation(e) => write!(f, "federation error: {e}"),
            CliError::FedLog(e) => write!(f, "federation log error: {e}"),
            CliError::ReplayConflict { flag, cli, header } => write!(
                f,
                "--{flag} {cli} contradicts the log header (which records {flag} = {header}); \
                 replay always uses the header — drop the flag, or pass --{flag} {header} \
                 to assert it"
            ),
        }
    }
}

impl Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Args(e)
    }
}
impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<edge_auction::AuctionError> for CliError {
    fn from(e: edge_auction::AuctionError) -> Self {
        CliError::Auction(e)
    }
}
impl From<FaultPlanError> for CliError {
    fn from(e: FaultPlanError) -> Self {
        CliError::Faults(e)
    }
}
impl From<ExplainError> for CliError {
    fn from(e: ExplainError) -> Self {
        CliError::Explain(e)
    }
}
impl From<edge_auction::service::ServiceError> for CliError {
    fn from(e: edge_auction::service::ServiceError) -> Self {
        CliError::Service(e)
    }
}
impl From<edge_auction::service::LogError> for CliError {
    fn from(e: edge_auction::service::LogError) -> Self {
        CliError::Log(e)
    }
}
impl From<crate::netfaults::NetFaultPlanError> for CliError {
    fn from(e: crate::netfaults::NetFaultPlanError) -> Self {
        CliError::NetFaults(e)
    }
}
impl From<edge_auction::federation::FedLogError> for CliError {
    fn from(e: edge_auction::federation::FedLogError) -> Self {
        CliError::FedLog(e)
    }
}

/// Dispatches a parsed command line and returns the rendered output.
///
/// # Errors
///
/// Any [`CliError`]; the binary prints it to stderr and exits nonzero.
pub fn run(args: ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" => Ok(help()),
        "generate" => generate(&args),
        "generate-round" => generate_round(&args),
        "ssam" => ssam(&args),
        "msoa" => msoa(&args),
        "audit" => audit(&args),
        "reproduce" => reproduce(&args),
        "profile" => crate::profile::profile(&args),
        "explain" => explain(&args),
        "serve" => serve(&args),
        "federate" => crate::federate::federate(&args),
        "replay" => crate::replay::replay(&args),
        "bench" => match args.subcommand.as_deref() {
            Some("diff") => crate::bench_diff::bench_diff(&args),
            Some(other) => Err(CliError::UnknownCommand(format!("bench {other}"))),
            None => Err(CliError::UnknownCommand("bench (try `bench diff`)".into())),
        },
        "metrics-lint" => metrics_lint(&args),
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

/// The help text.
pub fn help() -> String {
    "\
edge-market — auction mechanisms for edge-cloud resource sharing

USAGE:
    edge-market <command> [--flag value]...

COMMANDS:
    generate        write a multi-round auction scenario as JSON
                    [--seed N] [--microservices S] [--rounds T]
                    [--bids J] [--requests R] [--noise F] --out FILE
    generate-round  write a single-round (SSAM) instance as JSON
                    [--seed N] [--microservices S] [--bids J] --out FILE
    ssam            run the single-stage auction on an instance
                    --input FILE [--reserve PRICE] [--trace OUT.jsonl]
                    [--pricing-threads N]
    msoa            run the online auction on a multi-round scenario
                    --input FILE [--variant plain|da|rc|oa]
                    [--faults PLAN.toml] [--recovery on|off]
                    [--trace OUT.jsonl] [--pricing-threads N]
                    (--faults runs the fault-injection pipeline and
                    cannot be combined with --variant)
    audit           audit mechanism properties on an instance
                    --input FILE [--reserve PRICE]
    reproduce       re-run the paper's evaluation figures
                    [--figure NAME|all] [--seeds N] [--parallel THREADS]
                    [--trace OUT.jsonl]
                    --figure scale runs the (non-figure) scale benchmark
                    and writes a machine-readable report
                    [--scale-out FILE] [--scale-max-n N]
                    --figure fed-faults runs the (non-figure) federation
                    fault sweep and writes BENCH_federation.json
                    [--fed-out FILE]
                    [--pricing-threads N]
                    (--pricing-threads: 0 = auto-detect, 1 = exact
                    sequential path, N = parallel payment replays;
                    outcomes are identical at every setting)
    profile         run a scale-class MSOA instance under the span
                    profiler and render the stage-attributed waterfall:
                    per-stage total/self wall time with percentages, the
                    attribution line, deterministic per-span counters
                    (replays, pop_best scans, patched slots), and
                    profile-side engine diagnostics (lane widths,
                    head-read totals, adaptive-pool decisions); span
                    structure is byte-identical at every
                    --pricing-threads/--shards setting — only measured
                    durations move
                    [--scale-n N] [--rounds T] [--seed N]
                    [--faults PLAN.toml] [--recovery on|off]
                    [--pricing-threads N] [--shards K]
                    [--trace OUT.jsonl] [--folded OUT.folded]
                    [--folded-weight ns|calls]
    explain         narrate one round of a recorded trace: exclusions,
                    ψ scaling, greedy order, and each winner's critical
                    payment with its runner-up provenance, recomputed
                    and verified
                    --trace FILE --round R [--seller S]
                    --summary renders a one-screen per-round aggregate
                    table instead (winners, payments, pricing effort)
                    --trace FILE --summary
                    --deal DEAL reconstructs one re-sell deal's causal
                    timeline (spans, retransmits, drops, expiries) from
                    a federation log or federation trace, re-deriving
                    fill units and resale revenue against the recorded
                    node counters; --deals renders the all-deals table
                    --trace FED_LOG_OR_TRACE --deal platform#0/1
                    --trace FED_LOG_OR_TRACE --deals
    serve           run the event-sourced serving daemon: seeded MSOA
                    stages over a workload-generated arrival stream,
                    with /metrics (Prometheus text format), /healthz,
                    and /status (JSON) on a local HTTP listener, plus a
                    wire API for live market events — POST /v1/bid,
                    /v1/bid/withdraw, /v1/demand, /v1/round/close,
                    /v1/default (JSON bodies; structured JSON replies;
                    bounded ingress queue answers 429 when full).
                    Every accepted event is appended to --event-log as
                    digest-chained JSONL; scraping never perturbs
                    auction outcomes
                    [--seed N] [--microservices S] [--requests R]
                    [--rounds N (0 = forever)] [--stage-rounds T]
                    [--interval-ms MS] [--port P (0 = ephemeral)]
                    [--http on|off] [--ingest on|off]
                    [--event-log OUT.jsonl] [--queue-cap N]
                    [--book-cap N] [--demand-cap N]
                    [--trace OUT.jsonl] [--pricing-threads N]
                    [--spans on|off (default off): collect the span
                    profiler tree and flush it into --trace; live
                    edge_profile_* families are always exported]
    federate        run a multi-platform federation over the
                    deterministic in-process network substrate:
                    platforms gossip post-stage surplus/prices and
                    re-sell spare capacity via a two-phase offer/commit
                    protocol with deterministic timeouts and bounded
                    retries; partitioned platforms degrade to local-only
                    clearing and reconcile on heal; every message and
                    deal transition is folded into a digest-chained
                    federation log (--fed-log) that replay re-executes
                    byte-identically; --trace additionally records each
                    deal's causal lifecycle (span ids deal#hop, with
                    fed_seq provenance into the log) for explain --deal
                    [--platforms K] [--net-faults PLAN.toml]
                    [--seed N] [--microservices S] [--requests R]
                    [--rounds N] [--stage-rounds T]
                    [--round-ticks T] [--offer-timeout T]
                    [--max-retries N] [--retries on|off]
                    [--book-cap N] [--demand-cap N]
                    [--fed-log OUT.jsonl] [--trace OUT.jsonl]
                    [--pricing-threads N] [--spans on|off]
    replay          re-execute a recorded serve run from its event log,
                    offline: verifies the per-record digest chain, then
                    reproduces outcome digests and deterministic trace
                    sections byte-identically (at any --pricing-threads
                    setting); a trailing partial record from a mid-write
                    crash is dropped with a note; federation logs
                    (federate --fed-log) are detected automatically and
                    re-run through the network substrate with
                    record-for-record verification; config flags
                    (--seed, --microservices, --requests, --rounds,
                    --stage-rounds, --book-cap, --demand-cap,
                    --platforms) are assertions — replay always uses the
                    log header and errors loudly when a flag contradicts
                    it
                    <log.jsonl> [--trace OUT.jsonl]
                    [--pricing-threads N] [--spans on|off]
    bench diff      compare a fresh scale run (or --fresh FILE) against
                    the committed baseline; digests must match exactly,
                    wall-clock medians within --tolerance; exits
                    nonzero on regression; --profile breaks each
                    regressing cell down by stage (selection vs merge vs
                    pricing) and names the worst-regressing stage
                    [--baseline BENCH_scale.json] [--fresh FILE]
                    [--scale-max-n N] [--pricing-threads N]
                    [--tolerance F (relative, default 1.0)] [--profile]
    metrics-lint    validate a Prometheus text-format exposition file
                    --file FILE (use - for stdin)
                    [--require fam1,fam2,...] asserts the named metric
                    families are present (exits nonzero listing any
                    missing); a pattern with '*' matches by glob, e.g.
                    edge_profile_* requires at least one such family
    help            show this text
"
    .to_owned()
}

fn params_from(args: &ParsedArgs) -> Result<(PaperParams, u64), CliError> {
    let seed = args.get_or("seed", 42u64)?;
    let params = PaperParams::default()
        .with_microservices(args.get_or("microservices", 25usize)?)
        .with_rounds(args.get_or("rounds", 10u64)?)
        .with_bids_per_seller(args.get_or("bids", 2usize)?)
        .with_requests(args.get_or("requests", 100u64)?);
    Ok((params, seed))
}

fn generate(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&[
        "seed",
        "microservices",
        "rounds",
        "bids",
        "requests",
        "noise",
        "out",
    ])?;
    let (params, seed) = params_from(args)?;
    let noise = args.get_or("noise", 0.25f64)?;
    let out = args.require("out")?;
    let mut rng = derive_rng(seed, "cli-generate");
    let instance = multi_round_instance(&params, noise, &mut rng);
    fs::write(out, serde_json::to_string_pretty(&instance)?)?;
    Ok(format!(
        "wrote {} rounds × {} sellers to {out}\n",
        instance.num_rounds(),
        instance.sellers().len()
    ))
}

fn generate_round(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&["seed", "microservices", "bids", "requests", "out"])?;
    let (params, seed) = params_from(args)?;
    let out = args.require("out")?;
    let mut rng = derive_rng(seed, "cli-generate-round");
    let instance = single_round_instance(&params, &mut rng);
    fs::write(out, serde_json::to_string_pretty(&instance)?)?;
    Ok(format!(
        "wrote single-round instance ({} sellers, demand {}) to {out}\n",
        instance.num_sellers(),
        instance.demand()
    ))
}

/// Applies `--pricing-threads` to the process-wide pricing pool: `0`
/// auto-detects from the hardware, `1` pins the exact sequential path,
/// `N > 1` fans payment replays out over `N` threads. Outcomes and
/// traces are byte-identical at every setting (the differential suite
/// asserts this), so the flag is purely a performance knob.
pub(crate) fn apply_pricing_threads(args: &ParsedArgs) -> Result<Option<usize>, CliError> {
    let Some(raw) = args.get("pricing-threads") else {
        return Ok(None);
    };
    let threads: usize = raw.parse().map_err(|_| ArgsError::InvalidValue {
        flag: "pricing-threads".into(),
        value: raw.to_owned(),
    })?;
    edge_auction::set_pricing_threads(threads);
    Ok(Some(threads))
}

/// Applies `--shards` to the process-wide winner-selection shard count:
/// `0` auto-detects from the hardware, `1` pins the single-lane-group
/// arena, `N > 1` splits selection into `N` parallel shard groups with
/// a deterministic merge. Outcomes and traces are byte-identical at
/// every setting (the differential suite asserts this), so the flag is
/// purely a performance knob.
pub(crate) fn apply_shards(args: &ParsedArgs) -> Result<Option<usize>, CliError> {
    let Some(raw) = args.get("shards") else {
        return Ok(None);
    };
    let shards: usize = raw.parse().map_err(|_| ArgsError::InvalidValue {
        flag: "shards".into(),
        value: raw.to_owned(),
    })?;
    edge_auction::set_shards(shards);
    Ok(Some(shards))
}

fn ssam_config(args: &ParsedArgs) -> Result<SsamConfig, CliError> {
    let reserve = match args.get("reserve") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| ArgsError::InvalidValue {
            flag: "reserve".into(),
            value: raw.to_owned(),
        })?),
    };
    Ok(SsamConfig {
        reserve_unit_price: reserve,
    })
}

fn ssam(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&["input", "reserve", "trace", "pricing-threads"])?;
    apply_pricing_threads(args)?;
    let instance: WspInstance = serde_json::from_str(&fs::read_to_string(args.require("input")?)?)?;
    let config = ssam_config(args)?;
    let mut trace_note = String::new();
    let outcome = match args.get("trace") {
        Some(path) => {
            let collector = Collector::new();
            // A bare SSAM run is round 0, so `explain --round 0` works
            // on its trace the same as on a multi-round one.
            let scoped = Scoped::new(&collector, vec![("round", 0u64.into())]);
            let outcome = run_ssam_traced(&instance, &config, Trace::new(&scoped))?;
            fs::write(path, collector.to_jsonl())?;
            let _ = writeln!(trace_note, "trace: {} events → {path}", collector.len());
            outcome
        }
        None => run_ssam(&instance, &config)?,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "demand: {} units, winners: {}",
        outcome.demand,
        outcome.winners.len()
    );
    for w in &outcome.winners {
        let _ = writeln!(
            out,
            "  {} bid#{}: {}u (counted {}) at {} → paid {}",
            w.seller,
            w.bid.index(),
            w.amount_offered,
            w.contribution,
            w.price,
            w.payment
        );
    }
    let _ = writeln!(out, "social cost : {}", outcome.social_cost);
    let _ = writeln!(out, "payments    : {}", outcome.total_payment);
    let _ = writeln!(
        out,
        "certified π : {:.3} (dual objective {:.3})",
        outcome.certificate.pi, outcome.certificate.dual_objective
    );
    out.push_str(&trace_note);
    Ok(out)
}

fn msoa(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&[
        "input",
        "variant",
        "reserve",
        "faults",
        "recovery",
        "trace",
        "pricing-threads",
    ])?;
    apply_pricing_threads(args)?;
    let fault_mode = args.get("faults").is_some() || args.get("recovery").is_some();
    if fault_mode && args.get("variant").is_some() {
        return Err(CliError::FlagConflict("variant", "faults"));
    }
    let recovery = match args.get("recovery").unwrap_or("on") {
        "on" => RecoveryConfig::default(),
        "off" => RecoveryConfig::disabled(),
        other => {
            return Err(ArgsError::InvalidValue {
                flag: "recovery".into(),
                value: other.to_owned(),
            }
            .into())
        }
    };
    let instance: MultiRoundInstance =
        serde_json::from_str(&fs::read_to_string(args.require("input")?)?)?;
    if fault_mode {
        return msoa_faulty(args, &instance, &recovery);
    }
    let variant = match args.get("variant").unwrap_or("plain") {
        "plain" => MsoaVariant::Plain,
        "da" => MsoaVariant::DemandAware,
        "rc" => MsoaVariant::RelaxedCapacity { factor: 2.0 },
        "oa" => MsoaVariant::Optimized { factor: 2.0 },
        other => {
            return Err(ArgsError::InvalidValue {
                flag: "variant".into(),
                value: other.to_owned(),
            }
            .into())
        }
    };
    let config = MsoaConfig {
        ssam: ssam_config(args)?,
        alpha: None,
    };
    let mut trace_note = String::new();
    let outcome = match args.get("trace") {
        Some(path) => {
            // `run_variant` is `run_msoa ∘ transform_instance`, so the
            // traced path composes the same way and every variant's
            // decisions are explainable.
            let collector = Collector::new();
            let transformed = transform_instance(&instance, variant);
            let outcome = run_msoa_traced(&transformed, &config, Trace::new(&collector))?;
            fs::write(path, collector.to_jsonl())?;
            let _ = writeln!(trace_note, "trace: {} events → {path}", collector.len());
            outcome
        }
        None => run_variant(&instance, &config, variant)?,
    };
    let mut out = String::new();
    let _ = writeln!(out, "variant {variant}: {} rounds", outcome.rounds.len());
    for r in &outcome.rounds {
        let _ = writeln!(
            out,
            "  round {:>3}: demand {:>4}, winners {:>3}, cost {}, paid {}{}",
            r.round,
            r.demand,
            r.winners.len(),
            r.social_cost,
            r.total_payment,
            if r.infeasible { "  [uncovered]" } else { "" }
        );
    }
    let _ = writeln!(out, "social cost      : {}", outcome.social_cost);
    let _ = writeln!(out, "payments         : {}", outcome.total_payment);
    let _ = writeln!(
        out,
        "competitive bound: {:.3} (α {:.2}, β {:.2})",
        outcome.competitive_bound, outcome.alpha, outcome.beta
    );
    out.push_str(&trace_note);
    Ok(out)
}

/// The `msoa` command with the fault-injection pipeline engaged
/// (`--faults` and/or `--recovery` given).
fn msoa_faulty(
    args: &ParsedArgs,
    instance: &MultiRoundInstance,
    recovery: &RecoveryConfig,
) -> Result<String, CliError> {
    let plan = match args.get("faults") {
        Some(path) => parse_fault_plan(&fs::read_to_string(path)?)?,
        None => FaultPlan::empty(),
    };
    let config = MsoaConfig {
        ssam: ssam_config(args)?,
        alpha: None,
    };
    let mut trace_note = String::new();
    let outcome = match args.get("trace") {
        Some(path) => {
            let collector = Collector::new();
            let outcome = run_msoa_with_faults_traced(
                instance,
                &config,
                &plan,
                recovery,
                Trace::new(&collector),
            )?;
            fs::write(path, collector.to_jsonl())?;
            let _ = writeln!(trace_note, "trace: {} events → {path}", collector.len());
            outcome
        }
        None => run_msoa_with_faults_traced(instance, &config, &plan, recovery, Trace::off())?,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault plan: {} defaults, {} crashes, {} dropouts; recovery {}",
        plan.defaults.len(),
        plan.crashes.len(),
        plan.dropouts.len(),
        if recovery.enabled { "on" } else { "off" }
    );
    for r in &outcome.rounds {
        let _ = write!(
            out,
            "  round {:>3}: demand {:>4}, delivered {:>4}, winners {:>3}",
            r.round,
            r.demand,
            r.delivered,
            r.winners.len()
        );
        if r.backfill_attempts > 0 {
            let _ = write!(out, ", backfills {}", r.backfill_attempts);
        }
        if r.clawed_back.value() > 0.0 {
            let _ = write!(out, ", clawed back {}", r.clawed_back);
        }
        if !r.observed.is_complete() {
            let _ = write!(out, ", observed {}", r.observed);
        }
        if r.sla_violated {
            let _ = write!(out, "  [SLA VIOLATED: {} uncovered]", r.shortfall);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "social cost       : {}", outcome.social_cost);
    let _ = writeln!(out, "platform cost     : {}", outcome.platform_cost);
    let _ = writeln!(out, "clawed back       : {}", outcome.clawed_back);
    let _ = writeln!(
        out,
        "SLA violation rate: {:.3} ({} of {} units short)",
        outcome.sla_violation_rate(),
        outcome.shortfall_units,
        outcome.demand_units
    );
    let _ = write!(out, "reliability       :");
    for (i, seller) in instance.sellers().iter().enumerate() {
        let _ = write!(
            out,
            " {} {:.2}{}",
            seller.id,
            outcome.reliability[i],
            if outcome.blacklisted[i] {
                " [blacklisted]"
            } else {
                ""
            }
        );
    }
    let _ = writeln!(out);
    out.push_str(&trace_note);
    Ok(out)
}

fn audit(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&["input", "reserve"])?;
    let instance: WspInstance = serde_json::from_str(&fs::read_to_string(args.require("input")?)?)?;
    let config = ssam_config(args)?;
    let outcome = run_ssam(&instance, &config)?;
    let deviations = [0.5, 0.8, 0.95, 1.05, 1.25, 2.0];
    let violations = audit_truthfulness(&instance, &config, &deviations)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "individual rationality : {}",
        check_individual_rationality(&outcome)
    );
    let _ = writeln!(
        out,
        "selection monotonicity : {}",
        check_monotonicity(&instance, &config)?
    );
    let _ = writeln!(
        out,
        "critical payments      : {}",
        check_critical_payments(&instance, &config, 1e-6)?
    );
    let _ = writeln!(
        out,
        "truthfulness sweep     : {} violations in {} trials",
        violations.len(),
        instance.bids().count() * deviations.len()
    );
    for v in &violations {
        let _ = writeln!(out, "  VIOLATION {v:?}");
    }
    Ok(out)
}

fn reproduce(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&[
        "figure",
        "seeds",
        "parallel",
        "trace",
        "pricing-threads",
        "shards",
        "scale-out",
        "scale-max-n",
        "fed-out",
    ])?;
    let seeds = args.get_or("seeds", edge_bench::DEFAULT_SEEDS)?;
    if let Some(raw) = args.get("parallel") {
        let threads = raw.parse().map_err(|_| ArgsError::InvalidValue {
            flag: "parallel".into(),
            value: raw.to_owned(),
        })?;
        edge_bench::parallel::set_threads(threads);
    }
    let pinned_threads = apply_pricing_threads(args)?;
    let pinned_shards = apply_shards(args)?;
    let figure = args.get("figure").unwrap_or("all");
    // The scale benchmark is not a paper figure: it never runs as part
    // of `all`, and it writes its machine-readable report to a file.
    if figure == "scale" {
        return reproduce_scale(args, pinned_threads, pinned_shards);
    }
    if figure == "fed-faults" {
        return reproduce_fed_faults(args);
    }
    let names: Vec<&str> = if figure == "all" {
        edge_bench::report::FIGURES.to_vec()
    } else {
        vec![figure]
    };
    let collector = args.get("trace").map(|_| {
        let c = std::sync::Arc::new(Collector::new());
        edge_bench::profile::install(c.clone());
        c
    });
    let render = || -> Result<String, CliError> {
        let mut out = String::new();
        for name in &names {
            let Some(fig) = edge_bench::report::render_figure(name, seeds) else {
                return Err(ArgsError::InvalidValue {
                    flag: "figure".into(),
                    value: (*name).to_owned(),
                }
                .into());
            };
            let _ = writeln!(out, "{}\n{}", fig.title, fig.table);
        }
        Ok(out)
    };
    let rendered = render();
    if collector.is_some() {
        // Uninstall even on error so the ambient state never leaks
        // into a later in-process command (the tests run this way).
        edge_bench::profile::uninstall();
    }
    let mut out = rendered?;
    if let (Some(path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(path, collector.to_jsonl())?;
        let _ = writeln!(out, "trace: {} sweep events → {path}", collector.len());
    }
    Ok(out)
}

/// `reproduce --figure scale`: run the scale benchmark and write its
/// machine-readable report ([`edge_bench::scale::ScaleReport`]).
///
/// `--scale-max-n` bounds the swept populations; `--pricing-threads`
/// and/or `--shards` (when given) pin the sweep to that single
/// configuration instead of the default four-configuration grid.
fn reproduce_scale(
    args: &ParsedArgs,
    pinned_threads: Option<usize>,
    pinned_shards: Option<usize>,
) -> Result<String, CliError> {
    let out_path = args.get("scale-out").unwrap_or("BENCH_scale.json");
    let max_n = args.get_or("scale-max-n", 100_000usize)?;
    let collector = args.get("trace").map(|_| {
        let c = std::sync::Arc::new(Collector::new());
        edge_bench::profile::install(c.clone());
        c
    });
    let report = edge_bench::scale::run_scale(max_n, pinned_threads, pinned_shards);
    if collector.is_some() {
        edge_bench::profile::uninstall();
    }
    fs::write(out_path, report.to_json())?;
    let mut out = String::new();
    let _ = writeln!(out, "Scale benchmark ({})", report.schema);
    out.push_str(&report.render());
    let _ = writeln!(
        out,
        "report: {} cells → {out_path} ({} hardware threads)",
        report.cells.len(),
        report.threads_available
    );
    if let (Some(path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(path, collector.to_jsonl())?;
        let _ = writeln!(out, "trace: {} sweep events → {path}", collector.len());
    }
    Ok(out)
}

/// `reproduce --figure fed-faults`: run the federation fault sweep and
/// write its machine-readable report
/// ([`edge_bench::federation::FederationReport`]).
fn reproduce_fed_faults(args: &ParsedArgs) -> Result<String, CliError> {
    let out_path = args.get("fed-out").unwrap_or("BENCH_federation.json");
    let seed = args.get_or("seeds", 7u64)?;
    let collector = args.get("trace").map(|_| {
        let c = std::sync::Arc::new(Collector::new());
        edge_bench::profile::install(c.clone());
        c
    });
    let report = edge_bench::federation::run_federation_sweep(seed);
    if collector.is_some() {
        edge_bench::profile::uninstall();
    }
    fs::write(out_path, report.to_json())?;
    let mut out = String::new();
    let _ = writeln!(out, "Federation fault sweep ({})", report.schema);
    out.push_str(&report.render());
    let _ = writeln!(out, "report: {} cells → {out_path}", report.cells.len());
    if let (Some(path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(path, collector.to_jsonl())?;
        let _ = writeln!(out, "trace: {} sweep events → {path}", collector.len());
    }
    Ok(out)
}

/// The `explain` command: narrate one recorded round (or aggregate the
/// whole trace with `--summary`, see [`crate::explain`]), or — for a
/// federation log / federation trace — reconstruct re-sell deal
/// timelines with `--deal` / `--deals` (see [`crate::fed_explain`]).
fn explain(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&["trace", "round", "seller", "summary", "deal", "deals"])?;
    let path = args.require("trace")?;
    let deal_mode = args.get("deal").is_some() || args.get("deals").is_some();
    if deal_mode {
        for conflicting in ["round", "seller", "summary"] {
            if args.get(conflicting).is_some() {
                return Err(CliError::Federation(format!(
                    "--{conflicting} narrates auction rounds; \
                     --deal/--deals reconstruct federation deals — pick one"
                )));
            }
        }
        return explain_deals(args, path);
    }
    let text = fs::read_to_string(path)?;
    if edge_auction::federation::is_fed_log(&text) {
        return Err(CliError::Federation(
            "this is a federation log, not an auction trace; use \
             `explain --trace <log> --deal <id>` (or --deals) for deal \
             timelines, or `replay --log <log>` to re-execute it"
                .to_owned(),
        ));
    }
    if args.get("summary").is_some() {
        if args.get("round").is_some() {
            return Err(CliError::FlagConflict("summary", "round"));
        }
        if args.get("seller").is_some() {
            return Err(CliError::FlagConflict("summary", "seller"));
        }
        let events = parse_trace(&text)?;
        return Ok(crate::explain::explain_summary(&events)?);
    }
    let round: u64 = match args.get("round") {
        Some(raw) => raw.parse().map_err(|_| ArgsError::InvalidValue {
            flag: "round".into(),
            value: raw.to_owned(),
        })?,
        None => return Err(ArgsError::MissingFlag("round").into()),
    };
    let seller: Option<u64> = match args.get("seller") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| ArgsError::InvalidValue {
            flag: "seller".into(),
            value: raw.to_owned(),
        })?),
    };
    let events = parse_trace(&text)?;
    Ok(explain_round(&events, round, seller)?)
}

/// The `--deal` / `--deals` arm of `explain`: build a [`DealLedger`]
/// from a federation log or a federation trace, then render either one
/// deal's causal timeline or the all-deals summary table.
///
/// [`DealLedger`]: crate::fed_explain::DealLedger
fn explain_deals(args: &ParsedArgs, path: &str) -> Result<String, CliError> {
    if args.get("deal").is_some() && args.get("deals").is_some() {
        return Err(CliError::FlagConflict("deal", "deals"));
    }
    let text = fs::read_to_string(path)?;
    let ledger = if edge_auction::federation::is_fed_log(&text) {
        let log = edge_auction::federation::parse_fed_log(&text)?;
        crate::fed_explain::ledger_from_fed_log(&log)
    } else {
        let events = parse_trace(&text)?;
        let ledger = crate::fed_explain::ledger_from_trace(&events);
        if ledger.is_empty() {
            return Err(CliError::Federation(
                "no fed.* events in this trace — deal timelines need a \
                 `federate --trace` trace or a `federate --fed-log` log"
                    .to_owned(),
            ));
        }
        ledger
    };
    match args.get("deal") {
        Some(raw) => {
            let deal =
                crate::fed_explain::parse_deal_id(raw).ok_or_else(|| ArgsError::InvalidValue {
                    flag: "deal".into(),
                    value: raw.to_owned(),
                })?;
            ledger.render_deal(deal)
        }
        None => ledger.render_deals(),
    }
}

/// The `serve` command: start the HTTP endpoints (unless `--http off`),
/// drive the event-sourced service over seeded MSOA stages — accepting
/// wire events unless `--ingest off`, appending every accepted event to
/// `--event-log` — and report a summary on exit (see [`crate::serve`]).
fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&[
        "seed",
        "microservices",
        "requests",
        "rounds",
        "stage-rounds",
        "interval-ms",
        "port",
        "http",
        "trace",
        "pricing-threads",
        "event-log",
        "ingest",
        "queue-cap",
        "book-cap",
        "demand-cap",
        "spans",
    ])?;
    apply_pricing_threads(args)?;
    let config = crate::serve::ServeConfig {
        seed: args.get_or("seed", 42u64)?,
        microservices: args.get_or("microservices", 25usize)?,
        requests: args.get_or("requests", 100u64)?,
        total_rounds: args.get_or("rounds", 0u64)?,
        stage_rounds: args.get_or("stage-rounds", 5u64)?.max(1),
        interval_ms: args.get_or("interval-ms", 0u64)?,
        book_cap: args.get_or("book-cap", 4096usize)?,
        demand_cap: args.get_or("demand-cap", 1_000_000u64)?,
    };
    let port = args.get_or("port", 0u16)?;
    let queue_cap = args.get_or("queue-cap", 64usize)?.max(1);
    let on_off = |flag: &'static str, default: &str| -> Result<bool, CliError> {
        match args.get(flag).unwrap_or(default) {
            "on" => Ok(true),
            "off" => Ok(false),
            other => Err(ArgsError::InvalidValue {
                flag: flag.into(),
                value: other.to_owned(),
            }
            .into()),
        }
    };
    let http = on_off("http", "on")?;
    let ingest = on_off("ingest", "on")?;
    let spans_on = on_off("spans", "off")?;
    if ingest && !http && args.get("ingest").is_some() {
        return Err(CliError::FlagConflict("ingest", "http"));
    }

    // The full metric catalog (auction + recovery + service + sim +
    // federation + net + profiler families) must be visible on the very
    // first scrape, before any round has run.
    edge_auction::live::preregister();
    edge_auction::federation::preregister_federation_metrics();
    edge_sim::live::preregister();
    edge_net::preregister();
    crate::serve::preregister_ingress();
    edge_telemetry::spans::preregister();
    edge_telemetry::spans::set_live(true);
    if spans_on {
        edge_telemetry::spans::install();
    }

    let (ingress_tx, ingress_rx) = if http && ingest {
        let (tx, rx) = std::sync::mpsc::sync_channel(queue_cap);
        (Some(tx), Some(rx))
    } else {
        (None, None)
    };
    let state = std::sync::Arc::new(crate::serve::ServeState::new());
    let server = if http {
        let (addr, handle) =
            crate::serve::start_http_with_ingest(std::sync::Arc::clone(&state), port, ingress_tx)?;
        // Announce eagerly on stderr: the drive loop may run for a long
        // time (or forever) before the command's stdout is printed.
        eprintln!("serving http://{addr} (/metrics /healthz /status; POST /v1/*)");
        Some((addr, handle))
    } else {
        None
    };

    let mut log = match args.get("event-log") {
        Some(path) => Some(crate::serve::new_log_writer(
            path,
            &config.service_config(),
        )?),
        None => None,
    };
    let collector = args.get("trace").map(|_| Collector::new());
    let drive_result =
        crate::serve::drive_service(&config, &state, collector.as_ref(), ingress_rx, &mut log);
    if spans_on {
        // Flush the stage-attributed span tree into the trace: the
        // deterministic side (structure, calls, counters) joins the
        // seq-numbered section, durations join the profile tail.
        let tree = edge_telemetry::spans::uninstall();
        if let (Some(tree), Some(collector)) = (tree, collector.as_ref()) {
            tree.flush_into(collector);
        }
    }
    edge_telemetry::spans::set_live(false);
    state.request_shutdown();
    let server_note = match server {
        Some((addr, handle)) => {
            let _ = handle.join();
            format!("served on http://{addr}\n")
        }
        None => String::new(),
    };
    let summary = drive_result?;

    let mut out = String::new();
    let _ = write!(out, "{server_note}");
    let _ = writeln!(
        out,
        "drove {} stages, {} auction rounds (seed {})",
        summary.stages, summary.rounds, config.seed
    );
    if let Some(digest) = &summary.last_digest {
        let _ = writeln!(out, "last outcome digest: {digest}");
    }
    if let (Some(path), Some(writer)) = (args.get("event-log"), &log) {
        let _ = writeln!(out, "event log: {} records → {path}", writer.len());
    }
    if let (Some(path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(path, collector.to_jsonl())?;
        let _ = writeln!(out, "trace: {} events → {path}", collector.len());
    }
    Ok(out)
}

/// Parses an `on`/`off` flag shared by several commands.
pub(crate) fn on_off_flag(
    args: &ParsedArgs,
    flag: &'static str,
    default: bool,
) -> Result<bool, CliError> {
    match args.get(flag).unwrap_or(if default { "on" } else { "off" }) {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(ArgsError::InvalidValue {
            flag: flag.into(),
            value: other.to_owned(),
        }
        .into()),
    }
}

/// `*`-glob match for `metrics-lint --require` family patterns: each
/// literal segment must appear in order, anchored at both ends
/// (`edge_profile_*` matches `edge_profile_stage_ns`; `*_ns` matches
/// any `_ns`-suffixed family).
fn glob_matches(pattern: &str, name: &str) -> bool {
    let segments: Vec<&str> = pattern.split('*').collect();
    if segments.len() == 1 {
        return pattern == name;
    }
    // Anchored prefix before the first '*', anchored suffix after the
    // last, middle segments in order between them.
    let Some(mut rest) = name.strip_prefix(segments[0]) else {
        return false;
    };
    let tail = segments[segments.len() - 1];
    let Some(stripped) = rest.strip_suffix(tail) else {
        return false;
    };
    rest = stripped;
    for seg in &segments[1..segments.len() - 1] {
        if seg.is_empty() {
            continue;
        }
        match rest.find(seg) {
            Some(at) => rest = &rest[at + seg.len()..],
            None => return false,
        }
    }
    true
}

/// The `metrics-lint` command: validate a Prometheus text-format file
/// (`--file -` reads stdin). CI pipes scraped `/metrics` output here.
/// `--require a,b,c` additionally asserts that the named families are
/// present — how CI pins the `edge_fed_*` / `edge_net_*` catalogue.
fn metrics_lint(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&["file", "require"])?;
    let path = args.require("file")?;
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)?;
        buf
    } else {
        fs::read_to_string(path)?
    };
    let (families, samples) = match edge_telemetry::registry::validate_exposition(&text) {
        Ok(counts) => counts,
        Err(e) => return Err(CliError::Lint(e)),
    };
    let mut out = format!("exposition ok: {families} families, {samples} samples\n");
    if let Some(required) = args.get("require") {
        let exposition =
            edge_telemetry::registry::parse_exposition(&text).map_err(CliError::Lint)?;
        let wanted: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .collect();
        let missing: Vec<&str> = wanted
            .iter()
            .copied()
            .filter(|name| {
                if name.contains('*') {
                    !exposition
                        .families
                        .keys()
                        .any(|family| glob_matches(name, family))
                } else {
                    !exposition.families.contains_key(*name)
                }
            })
            .collect();
        if !missing.is_empty() {
            return Err(CliError::Lint(format!(
                "missing required families: {}",
                missing.join(", ")
            )));
        }
        let _ = writeln!(out, "required families present: {0}/{0}", wanted.len());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "edge-market-cli-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn help_lists_all_commands() {
        let h = help();
        for cmd in [
            "generate",
            "generate-round",
            "ssam",
            "msoa",
            "audit",
            "reproduce",
            "explain",
            "profile",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn glob_matches_anchors_prefix_and_suffix() {
        assert!(glob_matches("edge_profile_*", "edge_profile_stage_ns"));
        assert!(glob_matches("edge_profile_*", "edge_profile_"));
        assert!(!glob_matches("edge_profile_*", "edge_fed_deals"));
        assert!(glob_matches("*_ns", "edge_profile_stage_ns"));
        assert!(!glob_matches("*_ns", "edge_profile_lanes"));
        assert!(glob_matches("edge_*_stage_*", "edge_profile_stage_ns"));
        assert!(!glob_matches("edge_*_stage_*", "edge_stage_profile_ns"));
        // No '*' means exact match only.
        assert!(glob_matches("edge_net_sent", "edge_net_sent"));
        assert!(!glob_matches("edge_net", "edge_net_sent"));
        assert!(glob_matches("*", "anything"));
    }

    #[test]
    fn on_off_flag_parses_and_defaults() {
        let none = parsed(&["serve"]);
        assert!(on_off_flag(&none, "spans", true).unwrap());
        assert!(!on_off_flag(&none, "spans", false).unwrap());
        let on = parsed(&["serve", "--spans", "on"]);
        assert!(on_off_flag(&on, "spans", false).unwrap());
        let off = parsed(&["serve", "--spans", "off"]);
        assert!(!on_off_flag(&off, "spans", true).unwrap());
        let bad = parsed(&["serve", "--spans", "maybe"]);
        assert!(on_off_flag(&bad, "spans", false).is_err());
    }

    #[test]
    fn ssam_trace_then_explain_names_the_runner_up() {
        use edge_auction::bid::Bid;
        use edge_common::id::{BidId, MicroserviceId};
        // Three sellers, demand 2: seller 0 ($2/u) wins alone; the
        // payment replay without it picks seller 1 ($3/u), so the
        // explanation must name seller 1 as the runner-up.
        let inst = WspInstance::new(
            2,
            vec![
                Bid::new(MicroserviceId::new(0), BidId::new(0), 2, 4.0).unwrap(),
                Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 6.0).unwrap(),
                Bid::new(MicroserviceId::new(2), BidId::new(0), 2, 10.0).unwrap(),
            ],
        )
        .unwrap();
        let inst_path = temp_path("explain-inst.json");
        let inst_s = inst_path.to_str().unwrap();
        std::fs::write(&inst_path, serde_json::to_string(&inst).unwrap()).unwrap();
        let trace_path = temp_path("explain-trace.jsonl");
        let trace_s = trace_path.to_str().unwrap();

        let out = run(parsed(&["ssam", "--input", inst_s, "--trace", trace_s])).unwrap();
        assert!(out.contains("trace:"), "{out}");

        let out = run(parsed(&["explain", "--trace", trace_s, "--round", "0"])).unwrap();
        assert!(out.contains("runner-up seller 1"), "{out}");
        assert!(
            out.contains("payments verified: 1/1 reproduced exactly"),
            "{out}"
        );
        // unit 3 × 2u = 6: the exact Myerson critical value.
        assert!(out.contains("paid 6"), "{out}");

        // The seller filter narrows the narrative to one seller's bids.
        let filtered = run(parsed(&[
            "explain", "--trace", trace_s, "--round", "0", "--seller", "2",
        ]))
        .unwrap();
        assert!(!filtered.contains("runner-up"), "{filtered}");

        // Asking for a round the trace does not cover names the rounds
        // that exist.
        let err = run(parsed(&["explain", "--trace", trace_s, "--round", "9"])).unwrap_err();
        assert!(err.to_string().contains("round 9"), "{err}");
        assert!(matches!(err, CliError::Explain(_)));

        let _ = std::fs::remove_file(inst_path);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn msoa_trace_then_explain_covers_every_round() {
        let inst_path = temp_path("explain-multi.json");
        let inst_s = inst_path.to_str().unwrap();
        run(parsed(&[
            "generate",
            "--seed",
            "5",
            "--microservices",
            "6",
            "--rounds",
            "3",
            "--out",
            inst_s,
        ]))
        .unwrap();
        let trace_path = temp_path("explain-multi.jsonl");
        let trace_s = trace_path.to_str().unwrap();
        let out = run(parsed(&["msoa", "--input", inst_s, "--trace", trace_s])).unwrap();
        assert!(out.contains("trace:"), "{out}");
        for round in ["0", "1", "2"] {
            let out = run(parsed(&["explain", "--trace", trace_s, "--round", round])).unwrap();
            assert!(out.contains(&format!("round {round}")), "{out}");
            // Every winner's payment must reproduce exactly from its
            // recorded provenance — the audit-trail acceptance bar.
            if let Some(line) = out.lines().find(|l| l.starts_with("payments verified")) {
                let tally = line
                    .trim_start_matches("payments verified: ")
                    .split_whitespace()
                    .next()
                    .unwrap();
                let (ok, total) = tally.split_once('/').unwrap();
                assert_eq!(ok, total, "{out}");
            }
        }
        let _ = std::fs::remove_file(inst_path);
        let _ = std::fs::remove_file(trace_path);
    }

    // `--pricing-threads` mutates a process-global; tests touching it
    // serialize here and restore the default before releasing.
    static PRICING_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn pricing_threads_edge_cases_leave_output_unchanged() {
        let _g = PRICING_FLAG_LOCK.lock().unwrap();
        let path = temp_path("threads.json");
        let path_s = path.to_str().unwrap();
        run(parsed(&[
            "generate-round",
            "--seed",
            "13",
            "--microservices",
            "12",
            "--out",
            path_s,
        ]))
        .unwrap();
        let base = run(parsed(&["ssam", "--input", path_s])).unwrap();
        // 0 = auto-detect, 1 = exact sequential path, 4 = parallel:
        // every setting must render the identical result.
        for threads in ["0", "1", "4"] {
            let out = run(parsed(&[
                "ssam",
                "--input",
                path_s,
                "--pricing-threads",
                threads,
            ]))
            .unwrap();
            assert_eq!(out, base, "--pricing-threads {threads} changed output");
        }
        let err = run(parsed(&[
            "ssam",
            "--input",
            path_s,
            "--pricing-threads",
            "lots",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("lots"), "{err}");
        edge_auction::set_pricing_threads(1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn reproduce_scale_writes_machine_readable_report() {
        let _g = PRICING_FLAG_LOCK.lock().unwrap();
        let out_path = temp_path("scale.json");
        let out_s = out_path.to_str().unwrap();
        let out = run(parsed(&[
            "reproduce",
            "--figure",
            "scale",
            "--scale-max-n",
            "1000",
            "--scale-out",
            out_s,
        ]))
        .unwrap();
        assert!(out.contains("Scale benchmark"), "{out}");
        assert!(out.contains("outcomes identical"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("edge-market/bench-scale/v2"), "{json}");
        assert!(json.contains("\"outcome_digest\""));
        assert!(json.contains("\"shards\""));
        assert!(json.contains("\"selection_ns\""));
        assert!(json.contains("\"pricing_speedup_vs_1\""));
        edge_auction::set_pricing_threads(1);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn reproduce_scale_with_pinned_threads_sweeps_one_column() {
        let _g = PRICING_FLAG_LOCK.lock().unwrap();
        let out_path = temp_path("scale-pinned.json");
        let out_s = out_path.to_str().unwrap();
        let out = run(parsed(&[
            "reproduce",
            "--figure",
            "scale",
            "--scale-max-n",
            "1000",
            "--pricing-threads",
            "1",
            "--scale-out",
            out_s,
        ]))
        .unwrap();
        assert!(out.contains("1 cells"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"threads\": 1"), "{json}");
        edge_auction::set_pricing_threads(1);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn reproduce_scale_with_pinned_shards_sweeps_one_sharded_column() {
        let _g = PRICING_FLAG_LOCK.lock().unwrap();
        let out_path = temp_path("scale-sharded.json");
        let out_s = out_path.to_str().unwrap();
        let out = run(parsed(&[
            "reproduce",
            "--figure",
            "scale",
            "--scale-max-n",
            "1000",
            "--shards",
            "4",
            "--scale-out",
            out_s,
        ]))
        .unwrap();
        assert!(out.contains("1 cells"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"shards\": 4"), "{json}");
        edge_auction::set_shards(1);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn reproduce_single_figure_renders_table() {
        let out = run(parsed(&[
            "reproduce",
            "--figure",
            "fig4a",
            "--seeds",
            "1",
            "--parallel",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("Figure 4(a)"), "{out}");
        assert!(out.contains("payment"), "{out}");
    }

    #[test]
    fn reproduce_unknown_figure_is_rejected() {
        let err = run(parsed(&["reproduce", "--figure", "fig9z"])).unwrap_err();
        assert!(err.to_string().contains("fig9z"));
    }

    #[test]
    fn unknown_command_is_reported() {
        let err = run(parsed(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        let err = run(parsed(&["bench"])).unwrap_err();
        assert!(err.to_string().contains("bench diff"), "{err}");
        let err = run(parsed(&["bench", "frob"])).unwrap_err();
        assert!(err.to_string().contains("bench frob"), "{err}");
    }

    #[test]
    fn serve_drives_rounds_and_summary_aggregates_the_trace() {
        let trace_path = temp_path("serve-trace.jsonl");
        let trace_s = trace_path.to_str().unwrap();
        // --http off exercises the drive loop without binding a port;
        // the HTTP side has its own tests and the determinism suite.
        let out = run(parsed(&[
            "serve",
            "--rounds",
            "4",
            "--stage-rounds",
            "3",
            "--microservices",
            "8",
            "--http",
            "off",
            "--trace",
            trace_s,
        ]))
        .unwrap();
        assert!(out.contains("drove 2 stages, 4 auction rounds"), "{out}");
        assert!(out.contains("last outcome digest:"), "{out}");

        // The multi-stage trace summarizes with stage.round labels.
        let summary = run(parsed(&["explain", "--summary", "--trace", trace_s])).unwrap();
        assert!(summary.contains("4 rounds"), "{summary}");
        assert!(summary.contains("0.0"), "{summary}");
        assert!(summary.contains("1.0"), "{summary}");
        assert!(summary.contains("total"), "{summary}");
        assert!(summary.contains("replays"), "{summary}");

        // --summary conflicts with the single-round selectors.
        let err = run(parsed(&[
            "explain",
            "--summary",
            "--trace",
            trace_s,
            "--round",
            "0",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::FlagConflict("summary", "round")));
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn explain_summary_aggregates_a_plain_msoa_trace() {
        let inst_path = temp_path("summary-inst.json");
        let inst_s = inst_path.to_str().unwrap();
        run(parsed(&[
            "generate",
            "--seed",
            "5",
            "--microservices",
            "6",
            "--rounds",
            "3",
            "--out",
            inst_s,
        ]))
        .unwrap();
        let trace_path = temp_path("summary-trace.jsonl");
        let trace_s = trace_path.to_str().unwrap();
        run(parsed(&["msoa", "--input", inst_s, "--trace", trace_s])).unwrap();
        let summary = run(parsed(&["explain", "--summary", "--trace", trace_s])).unwrap();
        assert!(summary.contains("3 rounds"), "{summary}");
        // Plain traces carry no stage stamp: labels are bare rounds.
        for label in ["0", "1", "2", "total"] {
            assert!(
                summary.lines().any(|l| l.trim_start().starts_with(label)),
                "missing row {label} in:\n{summary}"
            );
        }
        let _ = std::fs::remove_file(inst_path);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn metrics_lint_accepts_valid_and_rejects_broken_expositions() {
        let good = temp_path("good.prom");
        std::fs::write(&good, "# HELP x h\n# TYPE x counter\nx 1\n").unwrap();
        let out = run(parsed(&["metrics-lint", "--file", good.to_str().unwrap()])).unwrap();
        assert!(
            out.contains("exposition ok: 1 families, 1 samples"),
            "{out}"
        );

        let bad = temp_path("bad.prom");
        std::fs::write(&bad, "# HELP x h\n# TYPE x counter\nx -3\n").unwrap();
        let err = run(parsed(&["metrics-lint", "--file", bad.to_str().unwrap()])).unwrap_err();
        assert!(matches!(err, CliError::Lint(_)));
        assert!(err.to_string().contains("non-monotone"), "{err}");
        let _ = std::fs::remove_file(good);
        let _ = std::fs::remove_file(bad);
    }

    #[test]
    fn metrics_lint_require_asserts_family_presence() {
        let path = temp_path("require.prom");
        std::fs::write(
            &path,
            "# HELP x h\n# TYPE x counter\nx 1\n# HELP y h\n# TYPE y gauge\ny 2\n",
        )
        .unwrap();
        let p = path.to_str().unwrap();

        let out = run(parsed(&["metrics-lint", "--file", p, "--require", "x,y"])).unwrap();
        assert!(out.contains("required families present: 2/2"), "{out}");

        let err = run(parsed(&[
            "metrics-lint",
            "--file",
            p,
            "--require",
            "x,edge_fed_deals_opened_total,edge_net_latency_ticks",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Lint(_)));
        let message = err.to_string();
        assert!(
            message.contains(
                "missing required families: edge_fed_deals_opened_total, edge_net_latency_ticks"
            ),
            "{message}"
        );
        assert!(
            !message.contains("x,"),
            "present families are not listed: {message}"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_diff_passes_clean_and_fails_tampered_baselines() {
        let _g = PRICING_FLAG_LOCK.lock().unwrap();
        // One real tiny report serves as both baseline and "fresh":
        // byte-identical inputs must pass at zero tolerance.
        let report = edge_bench::scale::run_scale(1_000, Some(1), None);
        edge_auction::set_pricing_threads(1);
        let base_path = temp_path("bench-base.json");
        let base_s = base_path.to_str().unwrap();
        std::fs::write(&base_path, report.to_json()).unwrap();

        let out = run(parsed(&[
            "bench",
            "diff",
            "--baseline",
            base_s,
            "--fresh",
            base_s,
            "--tolerance",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("PASS"), "{out}");

        // Guard: a tampered digest in a copied baseline must fail with
        // a readable report even at infinite tolerance.
        let mut tampered = report.clone();
        tampered.cells[0].outcome_digest = "0000000000000000".into();
        let tampered_path = temp_path("bench-tampered.json");
        let tampered_s = tampered_path.to_str().unwrap();
        std::fs::write(&tampered_path, tampered.to_json()).unwrap();
        let err = run(parsed(&[
            "bench",
            "diff",
            "--baseline",
            base_s,
            "--fresh",
            tampered_s,
            "--tolerance",
            "1000000",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::BenchRegression(_)));
        let msg = err.to_string();
        assert!(msg.contains("outcome digest changed"), "{msg}");
        assert!(msg.contains("REGRESSION"), "{msg}");

        // Guard: an injected slowdown (fresh 100x the baseline median)
        // fails a tight tolerance.
        let mut slow = report.clone();
        for c in &mut slow.cells {
            c.median_total_ns = c.median_total_ns.saturating_mul(100).max(100);
        }
        let slow_path = temp_path("bench-slow.json");
        let slow_s = slow_path.to_str().unwrap();
        std::fs::write(&slow_path, slow.to_json()).unwrap();
        let err = run(parsed(&[
            "bench",
            "diff",
            "--baseline",
            base_s,
            "--fresh",
            slow_s,
            "--tolerance",
            "1.0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("wall-clock"), "{err}");

        // A baseline with no overlapping cells is an error, not a pass.
        let mut disjoint = report.clone();
        for c in &mut disjoint.cells {
            c.n = 77;
        }
        let disjoint_path = temp_path("bench-disjoint.json");
        let disjoint_s = disjoint_path.to_str().unwrap();
        std::fs::write(&disjoint_path, disjoint.to_json()).unwrap();
        let err = run(parsed(&[
            "bench",
            "diff",
            "--baseline",
            base_s,
            "--fresh",
            disjoint_s,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no overlapping"), "{err}");

        for p in [base_path, tampered_path, slow_path, disjoint_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn generate_then_msoa_round_trips() {
        let path = temp_path("multi.json");
        let path_s = path.to_str().unwrap();
        let out = run(parsed(&[
            "generate",
            "--seed",
            "7",
            "--microservices",
            "8",
            "--rounds",
            "4",
            "--out",
            path_s,
        ]))
        .unwrap();
        assert!(out.contains("4 rounds"));
        let out = run(parsed(&["msoa", "--input", path_s])).unwrap();
        assert!(out.contains("social cost"), "{out}");
        let out = run(parsed(&["msoa", "--input", path_s, "--variant", "da"])).unwrap();
        assert!(out.contains("MSOA-DA"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn generate_round_then_ssam_and_audit() {
        let path = temp_path("wsp.json");
        let path_s = path.to_str().unwrap();
        run(parsed(&[
            "generate-round",
            "--seed",
            "3",
            "--microservices",
            "10",
            "--out",
            path_s,
        ]))
        .unwrap();
        let out = run(parsed(&["ssam", "--input", path_s])).unwrap();
        assert!(out.contains("social cost"), "{out}");
        assert!(out.contains("certified π"));
        let out = run(parsed(&["audit", "--input", path_s])).unwrap();
        assert!(out.contains("individual rationality : true"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_variant_is_rejected() {
        let path = temp_path("multi2.json");
        let path_s = path.to_str().unwrap();
        run(parsed(&[
            "generate", "--seed", "1", "--rounds", "2", "--out", path_s,
        ]))
        .unwrap();
        let err = run(parsed(&["msoa", "--input", path_s, "--variant", "bogus"])).unwrap_err();
        assert!(err.to_string().contains("bogus"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn msoa_with_fault_plan_reports_sla_and_reliability() {
        let instance_path = temp_path("faulty.json");
        let instance_s = instance_path.to_str().unwrap();
        run(parsed(&[
            "generate",
            "--seed",
            "11",
            "--microservices",
            "6",
            "--rounds",
            "4",
            "--out",
            instance_s,
        ]))
        .unwrap();

        let plan_path = temp_path("plan.toml");
        let plan_s = plan_path.to_str().unwrap();
        std::fs::write(
            &plan_path,
            "# total no-show in round 1\n\
             [[defaults]]\nround = 1\nseller = 0\ndelivered_fraction = 0.0\n\n\
             [[crashes]]\nseller = 1\nfrom = 2\nuntil = 4\n\n\
             [[dropouts]]\nindicator = \"rate\"\nfrom = 0\nuntil = 2\n",
        )
        .unwrap();

        let out = run(parsed(&["msoa", "--input", instance_s, "--faults", plan_s])).unwrap();
        assert!(
            out.contains("fault plan: 1 defaults, 1 crashes, 1 dropouts; recovery on"),
            "{out}"
        );
        assert!(out.contains("SLA violation rate"), "{out}");
        assert!(out.contains("reliability"), "{out}");
        assert!(out.contains("clawed back"), "{out}");

        let off = run(parsed(&[
            "msoa",
            "--input",
            instance_s,
            "--faults",
            plan_s,
            "--recovery",
            "off",
        ]))
        .unwrap();
        assert!(off.contains("recovery off"), "{off}");

        // --recovery alone engages the pipeline with an empty plan.
        let empty = run(parsed(&["msoa", "--input", instance_s, "--recovery", "on"])).unwrap();
        assert!(empty.contains("fault plan: 0 defaults"), "{empty}");

        let _ = std::fs::remove_file(instance_path);
        let _ = std::fs::remove_file(plan_path);
    }

    #[test]
    fn faults_flag_conflicts_with_variant() {
        let err = run(parsed(&[
            "msoa",
            "--input",
            "x.json",
            "--faults",
            "p.toml",
            "--variant",
            "da",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::FlagConflict("variant", "faults")));
        assert!(err.to_string().contains("--variant"));
    }

    #[test]
    fn broken_fault_plan_reports_the_line() {
        let instance_path = temp_path("faulty2.json");
        let instance_s = instance_path.to_str().unwrap();
        run(parsed(&[
            "generate", "--seed", "1", "--rounds", "2", "--out", instance_s,
        ]))
        .unwrap();
        let plan_path = temp_path("bad-plan.toml");
        let plan_s = plan_path.to_str().unwrap();
        std::fs::write(&plan_path, "[[defaults]]\nround = 0\nwat = 1\n").unwrap();
        let err = run(parsed(&["msoa", "--input", instance_s, "--faults", plan_s])).unwrap_err();
        assert!(matches!(err, CliError::Faults(_)));
        assert!(err.to_string().contains("line 3"), "{err}");
        let _ = std::fs::remove_file(instance_path);
        let _ = std::fs::remove_file(plan_path);
    }

    #[test]
    fn bad_recovery_value_is_rejected() {
        let err = run(parsed(&[
            "msoa",
            "--input",
            "x.json",
            "--recovery",
            "maybe",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("maybe"), "{err}");
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = run(parsed(&["generate", "--frobnicate", "1", "--out", "x"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_input_file_is_io_error() {
        let err = run(parsed(&["ssam", "--input", "/nonexistent/x.json"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
