//! The `explain` command: render one auction round's decisions from a
//! recorded trace.
//!
//! Reads a JSONL trace written by `ssam --trace`, `msoa --trace`, or
//! the fault pipeline, filters to one round, and narrates every
//! decision the mechanism took: exclusions, ψ price scaling, greedy
//! selection order, and the Myerson critical-value payment of each
//! winner — including *which runner-up bid priced it*.
//!
//! The narration is not a pretty-printer: every winner's payment is
//! **recomputed from the recorded provenance** (runner-up unit price ×
//! counted contribution, reserve × amount, or the bid's own price) and
//! compared bit-for-bit against the recorded payment. Traces record
//! floats in shortest round-trip form, so the recomputation is exact —
//! any drift between the mechanism and its audit trail fails loudly.

use serde_json::Value;
use std::fmt::Write as _;

/// One line of the trace, already filtered to deterministic events.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    name: String,
    fields: Value,
}

impl TraceEvent {
    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn str(&self, key: &str) -> Option<&str> {
        match self.fields.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn f64(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Value::as_f64)
    }

    pub(crate) fn u64(&self, key: &str) -> Option<u64> {
        match self.fields.get(key) {
            Some(&Value::U64(u)) => Some(u),
            Some(&Value::F64(f)) if f.fract() == 0.0 && f >= 0.0 => Some(f as u64),
            _ => None,
        }
    }

    pub(crate) fn bool(&self, key: &str) -> Option<bool> {
        match self.fields.get(key) {
            Some(&Value::Bool(b)) => Some(b),
            _ => None,
        }
    }
}

/// Errors from trace parsing.
#[derive(Debug)]
pub enum ExplainError {
    /// A line failed to parse as JSON.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// The trace holds no events for the requested round.
    NoSuchRound {
        /// The requested round.
        round: u64,
        /// Rounds that do appear, in order.
        available: Vec<u64>,
    },
    /// The trace holds no per-round events to summarize.
    EmptyTrace,
}

impl std::fmt::Display for ExplainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainError::BadLine { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            ExplainError::NoSuchRound { round, available } => {
                write!(f, "no events for round {round}; trace covers rounds ")?;
                let mut first = true;
                for r in available {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                    first = false;
                }
                Ok(())
            }
            ExplainError::EmptyTrace => {
                write!(f, "trace holds no per-round events to summarize")
            }
        }
    }
}

impl std::error::Error for ExplainError {}

/// Parses a JSONL trace into its deterministic events, skipping the
/// trailing profile section.
///
/// # Errors
///
/// [`ExplainError::BadLine`] on malformed JSON.
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ExplainError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line).map_err(|e| ExplainError::BadLine {
            line: i + 1,
            message: e.to_string(),
        })?;
        if value.get("section").is_some() {
            continue; // wall-clock profile entry, not part of the audit trail
        }
        let name = match value.get("event") {
            Some(Value::Str(s)) => s.clone(),
            _ => continue, // span bookkeeping or foreign line
        };
        let fields = value.get("fields").cloned().unwrap_or(Value::Null);
        events.push(TraceEvent { name, fields });
    }
    Ok(events)
}

/// Formats an f64 the way the trace does (shortest round-trip).
fn num(v: f64) -> String {
    format!("{v}")
}

/// The payment verdict for one winner: the payment recomputed from
/// provenance, and whether it matches the recorded value exactly.
struct Verified {
    line: String,
    exact: bool,
}

/// Recomputes one `ssam.payment` event from its recorded provenance and
/// renders the narrated payment line.
fn verify_payment(e: &TraceEvent, reserve: Option<f64>) -> Verified {
    let seller = e.u64("seller").unwrap_or(u64::MAX);
    let bid = e.u64("bid").unwrap_or(u64::MAX);
    let asked = e.f64("price").unwrap_or(f64::NAN);
    let paid = e.f64("payment").unwrap_or(f64::NAN);
    let kind = e.str("kind").unwrap_or("?");
    let (recomputed, origin) = match kind {
        "runner_up" => {
            let unit = e.f64("source_unit_price").unwrap_or(f64::NAN);
            let contrib = e.f64("source_contribution").unwrap_or(f64::NAN);
            let src_seller = e.u64("source_seller").unwrap_or(u64::MAX);
            let src_bid = e.u64("source_bid").unwrap_or(u64::MAX);
            let iter = e.u64("source_iteration").unwrap_or(0);
            (
                unit * contrib,
                format!(
                    "priced by runner-up seller {src_seller} bid#{src_bid} \
                     (replay iteration {iter}: unit {} × {}u)",
                    num(unit),
                    num(contrib)
                ),
            )
        }
        "zero" => (0.0, "no runner-up constrained it (threshold 0)".to_owned()),
        "reserve" => {
            let amount = e.f64("amount").unwrap_or(f64::NAN);
            let r = reserve.unwrap_or(f64::NAN);
            (
                r * amount,
                format!(
                    "reserve price (unit {} × {}u, monopolist)",
                    num(r),
                    num(amount)
                ),
            )
        }
        // Monopolist residual without a binding reserve: IR floor.
        "own_price" => (asked, "own asking price (monopolist residual)".to_owned()),
        other => (f64::NAN, format!("unknown payment kind '{other}'")),
    };
    // Bit-exact: the trace records shortest-round-trip decimals, so the
    // parsed operands are the exact f64s the mechanism multiplied.
    let exact = recomputed == paid || (recomputed.is_nan() && paid.is_nan());
    let mark = if exact {
        "✓".to_owned()
    } else {
        format!("✗ recomputed {}", num(recomputed))
    };
    Verified {
        line: format!(
            "  seller {seller} bid#{bid}: asked {}, paid {} — {origin} {mark}",
            num(asked),
            num(paid)
        ),
        exact,
    }
}

/// Renders the full narrative for `round`, optionally filtered to one
/// seller's bids. Returns the text plus the payment-verification tally
/// `(verified, total)`.
///
/// # Errors
///
/// [`ExplainError::NoSuchRound`] when the trace has no events for the
/// round.
pub fn explain_round(
    events: &[TraceEvent],
    round: u64,
    seller: Option<u64>,
) -> Result<String, ExplainError> {
    let of_round: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.u64("round") == Some(round))
        .collect();
    if of_round.is_empty() {
        let mut available: Vec<u64> = events.iter().filter_map(|e| e.u64("round")).collect();
        available.dedup();
        return Err(ExplainError::NoSuchRound { round, available });
    }
    let wants = |e: &TraceEvent| seller.is_none() || e.u64("seller") == seller;

    let mut out = String::new();
    let _ = writeln!(out, "round {round}");

    // Round shape: the MSOA round header, else the bare SSAM header.
    if let Some(start) = of_round.iter().find(|e| e.name == "round.start") {
        let _ = writeln!(
            out,
            "  demand {} units, {} bids submitted",
            start.u64("demand").unwrap_or(0),
            start.u64("bids").unwrap_or(0)
        );
    } else if let Some(start) = of_round.iter().find(|e| e.name == "ssam.start") {
        let _ = writeln!(
            out,
            "  demand {} units, {} bids ({} eligible)",
            start.u64("demand").unwrap_or(0),
            start.u64("bids").unwrap_or(0),
            start.u64("candidates").unwrap_or(0)
        );
    }

    let excluded: Vec<String> = of_round
        .iter()
        .filter(|e| (e.name == "bid.excluded" || e.name == "ssam.excluded") && wants(e))
        .map(|e| {
            format!(
                "  seller {} bid#{} — {}",
                e.u64("seller").unwrap_or(u64::MAX),
                e.u64("bid").unwrap_or(u64::MAX),
                e.str("reason").unwrap_or("?")
            )
        })
        .collect();
    if !excluded.is_empty() {
        let _ = writeln!(out, "excluded bids:");
        for line in excluded {
            let _ = writeln!(out, "{line}");
        }
    }

    let scaled: Vec<String> = of_round
        .iter()
        .filter(|e| e.name == "bid.scaled" && wants(e))
        .map(|e| {
            let mut line = format!(
                "  seller {} bid#{}: true {}",
                e.u64("seller").unwrap_or(u64::MAX),
                e.u64("bid").unwrap_or(u64::MAX),
                num(e.f64("true_price").unwrap_or(f64::NAN)),
            );
            if let Some(psi) = e.f64("psi_adjust") {
                let _ = write!(line, " + ψ·a {}", num(psi));
            }
            if let Some(rel) = e.f64("reliability_adjust") {
                let _ = write!(
                    line,
                    " + λ(1−ρ)·a {} (ρ {})",
                    num(rel),
                    num(e.f64("rho").unwrap_or(f64::NAN))
                );
            }
            let _ = write!(
                line,
                " → {}",
                num(e.f64("scaled_price").unwrap_or(f64::NAN))
            );
            line
        })
        .collect();
    if !scaled.is_empty() {
        let _ = writeln!(out, "price scaling (dual ψ, reliability):");
        for line in scaled {
            let _ = writeln!(out, "{line}");
        }
    }

    let selections: Vec<&&TraceEvent> = of_round
        .iter()
        .filter(|e| e.name == "ssam.select" && wants(e))
        .collect();
    if !selections.is_empty() {
        let _ = writeln!(
            out,
            "greedy selection (by unit price of marginal contribution):"
        );
        for e in selections {
            let before = e.u64("remaining_before").unwrap_or(0);
            let contribution = e.u64("contribution").unwrap_or(0);
            let _ = writeln!(
                out,
                "  #{} seller {} bid#{}: counted {} of {}u @ unit {} (remaining {} → {})",
                e.u64("order").unwrap_or(0),
                e.u64("seller").unwrap_or(u64::MAX),
                e.u64("bid").unwrap_or(u64::MAX),
                contribution,
                e.u64("amount").unwrap_or(0),
                num(e.f64("unit_price").unwrap_or(f64::NAN)),
                before,
                before.saturating_sub(contribution)
            );
        }
    }

    // The reserve (for payment recomputation of "reserve" kinds) comes
    // from the round's ssam.start event.
    let reserve = of_round
        .iter()
        .find(|e| e.name == "ssam.start")
        .and_then(|e| e.f64("reserve_unit_price"));
    let payments: Vec<Verified> = of_round
        .iter()
        .filter(|e| e.name == "ssam.payment" && wants(e))
        .map(|e| verify_payment(e, reserve))
        .collect();
    if !payments.is_empty() {
        let _ = writeln!(out, "payments (Myerson critical values):");
        let total = payments.len();
        let mut ok = 0usize;
        for v in &payments {
            let _ = writeln!(out, "{}", v.line);
            ok += usize::from(v.exact);
        }
        let _ = writeln!(
            out,
            "payments verified: {ok}/{total} reproduced exactly from recorded provenance"
        );
    }

    // Pricing effort from the ssam.stats counters: how many Myerson
    // replays ran and how much of their work the shared prefix absorbed.
    if let Some(stats) = of_round.iter().find(|e| e.name == "ssam.stats") {
        if let (Some(replays), Some(iters)) =
            (stats.u64("payment_replays"), stats.u64("replay_iterations"))
        {
            let prefix = stats.u64("replay_prefix_iterations").unwrap_or(0);
            let _ = writeln!(
                out,
                "pricing effort: {replays} payment replays, {iters} replay iterations \
                 ({prefix} answered from the shared prefix)"
            );
        }
    }

    for e in of_round
        .iter()
        .filter(|e| e.name == "settlement" && wants(e))
    {
        let _ = writeln!(
            out,
            "settlement: seller {} bid#{} committed {} delivered {} — due {}, paid {}, clawed back {}",
            e.u64("seller").unwrap_or(u64::MAX),
            e.u64("bid").unwrap_or(u64::MAX),
            e.u64("committed").unwrap_or(0),
            e.u64("delivered").unwrap_or(0),
            num(e.f64("payment_due").unwrap_or(f64::NAN)),
            num(e.f64("payment_made").unwrap_or(f64::NAN)),
            num(e.f64("clawback").unwrap_or(f64::NAN)),
        );
    }
    for e in of_round.iter().filter(|e| e.name == "backfill.start") {
        let _ = writeln!(
            out,
            "backfill re-auction: relaxation rung {} (shortfall {})",
            e.u64("rung").unwrap_or(0),
            e.u64("shortfall").unwrap_or(0)
        );
    }
    for e in of_round.iter().filter(|e| e.name == "sla.violation") {
        let _ = writeln!(
            out,
            "SLA VIOLATED: {} of {} units unserved",
            e.u64("shortfall").unwrap_or(0),
            e.u64("demand").unwrap_or(0)
        );
    }

    if let Some(end) = of_round.iter().find(|e| e.name == "round.end") {
        let _ = write!(
            out,
            "round totals: winners {}, social cost {}",
            end.u64("winners").unwrap_or(0),
            num(end.f64("social_cost").unwrap_or(f64::NAN)),
        );
        if let Some(paid) = end.f64("total_payment") {
            let _ = write!(out, ", payments {}", num(paid));
        }
        let _ = writeln!(out);
    } else if let Some(end) = of_round.iter().find(|e| e.name == "ssam.end") {
        let _ = writeln!(
            out,
            "round totals: winners {}, social cost {}, payments {}, certified π {}",
            end.u64("winners").unwrap_or(0),
            num(end.f64("social_cost").unwrap_or(f64::NAN)),
            num(end.f64("total_payment").unwrap_or(f64::NAN)),
            num(end.f64("pi").unwrap_or(f64::NAN)),
        );
    }
    Ok(out)
}

/// One-screen aggregate table over every recorded round: winners,
/// payments, and pricing effort, so operators don't need to replay a
/// trace round by round. Works on `msoa`, fault-recovery, and `serve`
/// traces; `serve` traces stamp a stage index onto every event, which
/// becomes the round label's `stage.round` prefix.
///
/// # Errors
///
/// [`ExplainError::EmptyTrace`] when the trace has no per-round events.
pub fn explain_summary(events: &[TraceEvent]) -> Result<String, ExplainError> {
    use edge_bench::table::Table;

    // Rounds in first-appearance order, keyed by (stage, round) so
    // multi-stage `serve` traces don't fold distinct rounds together.
    let mut order: Vec<(Option<u64>, u64)> = Vec::new();
    for e in events {
        if let Some(r) = e.u64("round") {
            let key = (e.u64("stage"), r);
            if !order.contains(&key) {
                order.push(key);
            }
        }
    }
    if order.is_empty() {
        return Err(ExplainError::EmptyTrace);
    }
    let staged = order.iter().any(|(s, _)| s.is_some());

    let mut table = Table::new([
        "round", "demand", "winners", "cost", "paid", "replays", "iters", "prefix", "flags",
    ]);
    let mut tot_winners = 0u64;
    let mut tot_cost = 0.0f64;
    let mut tot_paid = 0.0f64;
    let mut tot_replays = 0u64;
    let mut tot_iters = 0u64;
    let mut tot_prefix = 0u64;
    for (stage, round) in &order {
        let of_round: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.u64("round") == Some(*round) && e.u64("stage") == *stage)
            .collect();
        let start = of_round
            .iter()
            .find(|e| e.name == "round.start" || e.name == "ssam.start");
        let end = of_round
            .iter()
            .find(|e| e.name == "round.end" || e.name == "ssam.end");
        let demand = start.and_then(|e| e.u64("demand")).unwrap_or(0);
        let winners = end.and_then(|e| e.u64("winners")).unwrap_or(0);
        let cost = end.and_then(|e| e.f64("social_cost")).unwrap_or(0.0);
        // Recovery round.end carries platform_cost, plain carries
        // total_payment; either is "what the platform paid".
        let paid = end
            .and_then(|e| e.f64("total_payment").or_else(|| e.f64("platform_cost")))
            .unwrap_or(0.0);
        let mut replays = 0u64;
        let mut iters = 0u64;
        let mut prefix = 0u64;
        for stats in of_round.iter().filter(|e| e.name == "ssam.stats") {
            replays += stats.u64("payment_replays").unwrap_or(0);
            iters += stats.u64("replay_iterations").unwrap_or(0);
            prefix += stats.u64("replay_prefix_iterations").unwrap_or(0);
        }
        let mut flags = Vec::new();
        if end.and_then(|e| e.bool("infeasible")).unwrap_or(false) {
            flags.push("uncovered");
        }
        if of_round.iter().any(|e| e.name == "sla.violation") {
            flags.push("SLA");
        }
        let label = match stage {
            Some(s) if staged => format!("{s}.{round}"),
            _ => round.to_string(),
        };
        table.push([
            label,
            demand.to_string(),
            winners.to_string(),
            num(cost),
            num(paid),
            replays.to_string(),
            iters.to_string(),
            prefix.to_string(),
            flags.join("+"),
        ]);
        tot_winners += winners;
        tot_cost += cost;
        tot_paid += paid;
        tot_replays += replays;
        tot_iters += iters;
        tot_prefix += prefix;
    }
    table.push([
        "total".to_string(),
        String::new(),
        tot_winners.to_string(),
        num(tot_cost),
        num(tot_paid),
        tot_replays.to_string(),
        tot_iters.to_string(),
        tot_prefix.to_string(),
        String::new(),
    ]);
    let mut out = format!("{} rounds\n", order.len());
    out.push_str(&table.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(lines: &[&str]) -> Vec<TraceEvent> {
        parse_trace(&lines.join("\n")).unwrap()
    }

    #[test]
    fn skips_profile_lines_and_blank_lines() {
        let events = trace(&[
            r#"{"seq":0,"level":"info","event":"ssam.start","fields":{"round":0,"demand":5,"bids":3,"candidates":3}}"#,
            "",
            r#"{"section":"profile","name":"sweep.profile","fields":{"total_us":12}}"#,
        ]);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "ssam.start");
    }

    #[test]
    fn bad_json_reports_the_line() {
        let err = parse_trace("{\"event\":\"x\"}\nnot json").unwrap_err();
        assert!(matches!(err, ExplainError::BadLine { line: 2, .. }));
    }

    #[test]
    fn missing_round_lists_available() {
        let events = trace(&[
            r#"{"seq":0,"event":"round.start","fields":{"round":0,"demand":5,"bids":2}}"#,
            r#"{"seq":1,"event":"round.start","fields":{"round":1,"demand":6,"bids":2}}"#,
        ]);
        let err = explain_round(&events, 7, None).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("round 7"), "{msg}");
        assert!(msg.contains("0, 1"), "{msg}");
    }

    #[test]
    fn runner_up_payment_recomputes_exactly() {
        let unit = 1.23456789f64;
        let contrib = 3.0f64;
        let paid = unit * contrib;
        let line = format!(
            r#"{{"seq":0,"event":"ssam.payment","fields":{{"round":0,"seller":0,"bid":0,"amount":3,"price":2.5,"payment":{paid},"kind":"runner_up","source_seller":1,"source_bid":0,"source_iteration":0,"source_unit_price":{unit},"source_contribution":{contrib}}}}}"#
        );
        let events = parse_trace(&line).unwrap();
        let out = explain_round(&events, 0, None).unwrap();
        assert!(out.contains("runner-up seller 1"), "{out}");
        assert!(out.contains("payments verified: 1/1"), "{out}");
    }

    #[test]
    fn tampered_payment_is_flagged() {
        let line = r#"{"seq":0,"event":"ssam.payment","fields":{"round":0,"seller":0,"bid":0,"amount":3,"price":2.5,"payment":99.0,"kind":"runner_up","source_seller":1,"source_bid":0,"source_iteration":0,"source_unit_price":2.0,"source_contribution":3}}"#;
        let events = parse_trace(line).unwrap();
        let out = explain_round(&events, 0, None).unwrap();
        assert!(out.contains("payments verified: 0/1"), "{out}");
        assert!(out.contains("✗ recomputed 6"), "{out}");
    }

    #[test]
    fn stats_event_renders_pricing_effort() {
        let lines = [
            r#"{"seq":0,"event":"ssam.payment","fields":{"round":0,"seller":0,"bid":0,"amount":3,"price":2.5,"payment":0.0,"kind":"zero"}}"#,
            r#"{"seq":1,"event":"ssam.stats","fields":{"round":0,"heap_pops":9,"heap_repushes":1,"sold_discards":0,"unsafe_discards":0,"payment_replays":4,"replay_iterations":31,"replay_prefix_iterations":17}}"#,
        ];
        let events = trace(&lines);
        let out = explain_round(&events, 0, None).unwrap();
        assert!(
            out.contains(
                "pricing effort: 4 payment replays, 31 replay iterations \
                 (17 answered from the shared prefix)"
            ),
            "{out}"
        );
    }

    #[test]
    fn seller_filter_drops_other_sellers() {
        let lines = [
            r#"{"seq":0,"event":"ssam.select","fields":{"round":0,"order":0,"seller":3,"bid":0,"amount":2,"contribution":2,"price":4.0,"unit_price":2.0,"remaining_before":5}}"#,
            r#"{"seq":1,"event":"ssam.select","fields":{"round":0,"order":1,"seller":4,"bid":0,"amount":3,"contribution":3,"price":9.0,"unit_price":3.0,"remaining_before":3}}"#,
        ];
        let events = trace(&lines);
        let out = explain_round(&events, 0, Some(4)).unwrap();
        assert!(out.contains("seller 4"), "{out}");
        assert!(!out.contains("seller 3"), "{out}");
    }
}
