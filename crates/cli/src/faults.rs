//! Fault-plan files: a hand-written parser for the TOML subset the
//! `--faults` flag accepts.
//!
//! The workspace deliberately carries no TOML dependency, so this module
//! parses exactly the subset a fault plan needs and nothing more:
//!
//! ```toml
//! # seller 2 delivers only 40% of its commitment in round 3
//! [[defaults]]
//! round = 3
//! seller = 2
//! delivered_fraction = 0.4
//!
//! [[crashes]]
//! seller = 1
//! from = 2      # inclusive
//! until = 5     # exclusive
//!
//! [[dropouts]]
//! indicator = "rate"   # waiting | processing | rate
//! from = 0
//! until = 4
//! ```
//!
//! Supported: `#` comments (whole-line and trailing), blank lines, the
//! three array-of-table headers above, and `key = value` pairs whose
//! values are unsigned integers, floats, or double-quoted strings
//! (without escape sequences). Anything else is a loud error naming the
//! offending line — a fault plan that silently drops half its events
//! would invalidate every experiment run on it.

use edge_auction::recovery::{CrashWindow, DefaultEvent, DropoutWindow, FaultPlan};
use edge_common::id::MicroserviceId;
use edge_common::indicator::Indicator;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from [`parse_fault_plan`], each naming the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A line that is neither a table header nor `key = value`.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A `[[...]]` header naming an unknown table.
    UnknownTable {
        /// 1-based line number.
        line: usize,
        /// The header's table name.
        name: String,
    },
    /// A `key = value` pair before any table header.
    KeyOutsideTable {
        /// 1-based line number.
        line: usize,
        /// The stray key.
        key: String,
    },
    /// A key the table does not define (or a duplicate within an entry).
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The table being filled.
        table: &'static str,
        /// The offending key.
        key: String,
    },
    /// A value that does not parse as the key's type.
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The key being assigned.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// An entry missing a required key.
    MissingKey {
        /// 1-based line number of the entry's `[[...]]` header.
        line: usize,
        /// The table the entry belongs to.
        table: &'static str,
        /// The absent key.
        key: &'static str,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            FaultPlanError::UnknownTable { line, name } => {
                write!(
                    f,
                    "line {line}: unknown table [[{name}]] \
                     (expected defaults, crashes, or dropouts)"
                )
            }
            FaultPlanError::KeyOutsideTable { line, key } => {
                write!(
                    f,
                    "line {line}: key '{key}' before any [[defaults]]/[[crashes]]/[[dropouts]] header"
                )
            }
            FaultPlanError::UnknownKey { line, table, key } => {
                write!(f, "line {line}: [[{table}]] has no key '{key}'")
            }
            FaultPlanError::InvalidValue { line, key, value } => {
                write!(f, "line {line}: cannot parse '{value}' for key '{key}'")
            }
            FaultPlanError::MissingKey { line, table, key } => {
                write!(
                    f,
                    "[[{table}]] entry at line {line} is missing required key '{key}'"
                )
            }
        }
    }
}

impl Error for FaultPlanError {}

/// Which array-of-tables an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Table {
    Defaults,
    Crashes,
    Dropouts,
}

impl Table {
    fn name(self) -> &'static str {
        match self {
            Table::Defaults => "defaults",
            Table::Crashes => "crashes",
            Table::Dropouts => "dropouts",
        }
    }

    fn keys(self) -> &'static [&'static str] {
        match self {
            Table::Defaults => &["round", "seller", "delivered_fraction"],
            Table::Crashes => &["seller", "from", "until"],
            Table::Dropouts => &["indicator", "from", "until"],
        }
    }
}

/// One `[[table]]` entry mid-parse: its header line and raw key/values.
#[derive(Debug)]
struct RawEntry {
    table: Table,
    line: usize,
    values: BTreeMap<String, (String, usize)>,
}

impl RawEntry {
    fn require(&self, key: &'static str) -> Result<(&str, usize), FaultPlanError> {
        self.values
            .get(key)
            .map(|(raw, line)| (raw.as_str(), *line))
            .ok_or(FaultPlanError::MissingKey {
                line: self.line,
                table: self.table.name(),
                key,
            })
    }

    fn u64(&self, key: &'static str) -> Result<u64, FaultPlanError> {
        let (raw, line) = self.require(key)?;
        raw.parse().map_err(|_| FaultPlanError::InvalidValue {
            line,
            key: key.to_owned(),
            value: raw.to_owned(),
        })
    }

    fn f64(&self, key: &'static str) -> Result<f64, FaultPlanError> {
        let (raw, line) = self.require(key)?;
        // Reject non-finite spellings (`inf`, `nan`) that f64::from_str
        // would happily accept; a plan file has no business with them.
        match raw.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(FaultPlanError::InvalidValue {
                line,
                key: key.to_owned(),
                value: raw.to_owned(),
            }),
        }
    }

    fn string(&self, key: &'static str) -> Result<(&str, usize), FaultPlanError> {
        let (raw, line) = self.require(key)?;
        let inner = raw
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .filter(|s| !s.contains('"'));
        inner
            .map(|s| (s, line))
            .ok_or(FaultPlanError::InvalidValue {
                line,
                key: key.to_owned(),
                value: raw.to_owned(),
            })
    }
}

/// Strips a trailing `#` comment, honouring double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a fault-plan file into the core [`FaultPlan`].
///
/// # Errors
///
/// Any [`FaultPlanError`], always naming the offending line.
pub fn parse_fault_plan(text: &str) -> Result<FaultPlan, FaultPlanError> {
    let mut entries: Vec<RawEntry> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let table = match header.trim() {
                "defaults" => Table::Defaults,
                "crashes" => Table::Crashes,
                "dropouts" => Table::Dropouts,
                other => {
                    return Err(FaultPlanError::UnknownTable {
                        line: line_no,
                        name: other.to_owned(),
                    })
                }
            };
            entries.push(RawEntry {
                table,
                line: line_no,
                values: BTreeMap::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(FaultPlanError::Syntax {
                line: line_no,
                message: format!("expected [[table]] or key = value, got '{line}'"),
            });
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(entry) = entries.last_mut() else {
            return Err(FaultPlanError::KeyOutsideTable {
                line: line_no,
                key: key.to_owned(),
            });
        };
        if !entry.table.keys().contains(&key) || entry.values.contains_key(key) {
            return Err(FaultPlanError::UnknownKey {
                line: line_no,
                table: entry.table.name(),
                key: key.to_owned(),
            });
        }
        if value.is_empty() {
            return Err(FaultPlanError::Syntax {
                line: line_no,
                message: format!("key '{key}' has no value"),
            });
        }
        entry
            .values
            .insert(key.to_owned(), (value.to_owned(), line_no));
    }

    let mut plan = FaultPlan::empty();
    for entry in &entries {
        match entry.table {
            Table::Defaults => plan.defaults.push(DefaultEvent {
                round: entry.u64("round")?,
                seller: MicroserviceId::new(entry.u64("seller")? as usize),
                delivered_fraction: entry.f64("delivered_fraction")?,
            }),
            Table::Crashes => plan.crashes.push(CrashWindow {
                seller: MicroserviceId::new(entry.u64("seller")? as usize),
                from: entry.u64("from")?,
                until: entry.u64("until")?,
            }),
            Table::Dropouts => {
                let (name, line) = entry.string("indicator")?;
                let indicator: Indicator =
                    name.parse().map_err(|_| FaultPlanError::InvalidValue {
                        line,
                        key: "indicator".to_owned(),
                        value: name.to_owned(),
                    })?;
                plan.dropouts.push(DropoutWindow {
                    indicator,
                    from: entry.u64("from")?,
                    until: entry.u64("until")?,
                });
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# a three-event plan
[[defaults]]
round = 3
seller = 2
delivered_fraction = 0.4   # partial delivery

[[crashes]]
seller = 1
from = 2
until = 5

[[dropouts]]
indicator = "rate"
from = 0
until = 4
"#;

    #[test]
    fn parses_a_full_plan() {
        let plan = parse_fault_plan(GOOD).unwrap();
        assert_eq!(plan.defaults.len(), 1);
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.dropouts.len(), 1);
        let d = &plan.defaults[0];
        assert_eq!((d.round, d.seller), (3, MicroserviceId::new(2)));
        assert!((d.delivered_fraction - 0.4).abs() < 1e-12);
        let c = &plan.crashes[0];
        assert_eq!((c.seller, c.from, c.until), (MicroserviceId::new(1), 2, 5));
        let o = &plan.dropouts[0];
        assert_eq!((o.indicator, o.from, o.until), (Indicator::Rate, 0, 4));
        // And the plan answers queries the way the file reads.
        assert_eq!(
            plan.delivered_fraction(3, MicroserviceId::new(2)),
            Some(0.4)
        );
        assert!(plan.crashed(4, MicroserviceId::new(1)));
        assert!(!plan.observed(2).contains(Indicator::Rate));
    }

    #[test]
    fn empty_and_comment_only_files_are_empty_plans() {
        assert!(parse_fault_plan("").unwrap().is_empty());
        assert!(parse_fault_plan("# nothing\n\n  # more nothing\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn multiple_entries_per_table_accumulate() {
        let text = "[[defaults]]\nround = 0\nseller = 0\ndelivered_fraction = 0\n\
                    [[defaults]]\nround = 1\nseller = 1\ndelivered_fraction = 1";
        let plan = parse_fault_plan(text).unwrap();
        assert_eq!(plan.defaults.len(), 2);
    }

    #[test]
    fn errors_name_the_offending_line() {
        let err = parse_fault_plan("[[defaults]]\nround = 3\nbogus = 1").unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::UnknownKey {
                line: 3,
                table: "defaults",
                key: "bogus".into()
            }
        );
        assert!(err.to_string().contains("line 3"));

        let err = parse_fault_plan("[[oops]]").unwrap_err();
        assert!(matches!(err, FaultPlanError::UnknownTable { line: 1, .. }));

        let err = parse_fault_plan("round = 3").unwrap_err();
        assert!(matches!(
            err,
            FaultPlanError::KeyOutsideTable { line: 1, .. }
        ));

        let err = parse_fault_plan("[[crashes]]\nnot a pair").unwrap_err();
        assert!(matches!(err, FaultPlanError::Syntax { line: 2, .. }));
    }

    #[test]
    fn missing_required_key_names_the_entry_header() {
        let err = parse_fault_plan("\n[[crashes]]\nseller = 1\nfrom = 2").unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::MissingKey {
                line: 2,
                table: "crashes",
                key: "until"
            }
        );
    }

    #[test]
    fn bad_values_are_rejected() {
        let bad_int = "[[crashes]]\nseller = -1\nfrom = 0\nuntil = 1";
        assert!(matches!(
            parse_fault_plan(bad_int).unwrap_err(),
            FaultPlanError::InvalidValue { line: 2, .. }
        ));

        let bad_frac = "[[defaults]]\nround = 0\nseller = 0\ndelivered_fraction = inf";
        assert!(matches!(
            parse_fault_plan(bad_frac).unwrap_err(),
            FaultPlanError::InvalidValue { line: 4, .. }
        ));

        let bad_ind = "[[dropouts]]\nindicator = \"latency\"\nfrom = 0\nuntil = 1";
        assert!(matches!(
            parse_fault_plan(bad_ind).unwrap_err(),
            FaultPlanError::InvalidValue { line: 2, .. }
        ));

        let unquoted = "[[dropouts]]\nindicator = rate\nfrom = 0\nuntil = 1";
        assert!(matches!(
            parse_fault_plan(unquoted).unwrap_err(),
            FaultPlanError::InvalidValue { line: 2, .. }
        ));
    }

    #[test]
    fn duplicate_key_within_an_entry_is_rejected() {
        let err = parse_fault_plan("[[crashes]]\nseller = 1\nseller = 2").unwrap_err();
        assert!(matches!(err, FaultPlanError::UnknownKey { line: 3, .. }));
    }

    #[test]
    fn hash_inside_quoted_string_is_not_a_comment() {
        let text = "[[dropouts]]\nindicator = \"ra#te\"\nfrom = 0\nuntil = 1";
        // The '#' survives comment stripping and then fails indicator
        // parsing — proving it was not treated as a comment start.
        let err = parse_fault_plan(text).unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::InvalidValue {
                line: 2,
                key: "indicator".into(),
                value: "ra#te".into()
            }
        );
    }
}
