//! `explain --deal` / `--deals`: reconstruct re-sell deal timelines
//! from a federation log (`federate --fed-log`) or a federation trace
//! (`federate --trace`).
//!
//! Like the per-round explain, this is an audit, not a pretty-printer:
//! every committed deal's fill units and resale revenue are re-derived
//! from the raw events — accumulating in the same chronological order
//! the run used, so f64 sums are bit-exact — and verified against the
//! `NodeCounters` the run recorded in its end-of-run `NodeSummary`
//! records. Any drift between the protocol and its audit trail fails
//! loudly (`deals verified: N/N` drops below N).

use crate::commands::CliError;
use crate::explain::TraceEvent;
use edge_auction::federation::{
    msg_deal, msg_kind, DealId, FedEvent, FedLog, FedMsg, FedPacket, NodeCounters,
};
use edge_common::id::PlatformId;
use edge_net::{DropReason, NetEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parses a deal id: `platform#0/3` (the canonical rendering) or the
/// `0/3` shorthand.
pub fn parse_deal_id(raw: &str) -> Option<DealId> {
    let rest = raw.strip_prefix("platform#").unwrap_or(raw);
    let (origin, seq) = rest.split_once('/')?;
    Some(DealId {
        origin: PlatformId::new(origin.parse().ok()?),
        seq: seq.parse().ok()?,
    })
}

/// One normalized deal-lifecycle step, shared by the fed-log and trace
/// front ends. `fed_seq` is the chained log record the step folds under.
enum Step {
    Sent {
        tick: u64,
        from: usize,
        to: usize,
        kind: String,
        attempt: Option<u64>,
        deal: DealId,
        hop: u64,
    },
    Dropped {
        tick: u64,
        kind: String,
        deal: DealId,
        partition: bool,
    },
    Duplicated {
        tick: u64,
        kind: String,
        deal: DealId,
        deliver_at: u64,
    },
    Delivered {
        tick: u64,
        kind: String,
        deal: DealId,
        to: usize,
        duplicate: bool,
    },
    Opened {
        tick: u64,
        buyer: usize,
        seller: usize,
        deal: DealId,
        units: u64,
        cap: f64,
    },
    Reserved {
        tick: u64,
        seller: usize,
        deal: DealId,
        units: u64,
        price: f64,
        expires: u64,
    },
    Rejected {
        tick: u64,
        seller: usize,
        deal: DealId,
        code: String,
    },
    Applied {
        tick: u64,
        seller: usize,
        deal: DealId,
        units: u64,
        price: f64,
    },
    Filled {
        tick: u64,
        buyer: usize,
        deal: DealId,
        units: u64,
        price: f64,
        late: bool,
    },
    Timeout {
        tick: u64,
        node: usize,
        deal: DealId,
        phase: String,
        attempt: u64,
        retrying: bool,
    },
    Aborted {
        tick: u64,
        node: usize,
        deal: DealId,
        phase: String,
    },
    Unresolved {
        tick: u64,
        node: usize,
        deal: DealId,
    },
    Expired {
        tick: u64,
        seller: usize,
        deal: DealId,
        units: u64,
    },
    Summary {
        node: usize,
        recorded: Recorded,
    },
}

/// The recorded counters the audit verifies against (a subset of
/// [`NodeCounters`], available from both input formats).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Recorded {
    deals_applied: u64,
    deals_filled: u64,
    resold_units: u64,
    filled_units: u64,
    resale_revenue: f64,
    cross_cost: f64,
}

impl From<&NodeCounters> for Recorded {
    fn from(c: &NodeCounters) -> Self {
        Recorded {
            deals_applied: c.deals_applied,
            deals_filled: c.deals_filled,
            resold_units: c.resold_units,
            filled_units: c.filled_units,
            resale_revenue: c.resale_revenue,
            cross_cost: c.cross_cost,
        }
    }
}

/// What one deal went through, reconstructed.
#[derive(Debug, Default)]
struct DealState {
    timeline: Vec<String>,
    buyer: Option<usize>,
    seller: Option<usize>,
    requested: Option<u64>,
    /// Seller-side application terms `(units, price, seller)`.
    applied: Option<(u64, f64, usize)>,
    /// Buyer-side booked fill `(units, price, buyer, late)`.
    filled: Option<(u64, f64, usize, bool)>,
    aborted: Option<String>,
    unresolved: bool,
}

impl DealState {
    fn status(&self) -> String {
        match (&self.applied, &self.filled, &self.aborted, self.unresolved) {
            (Some(_), Some((_, _, _, true)), _, _) => "filled (late)".to_owned(),
            (Some(_), Some(_), _, _) => "filled".to_owned(),
            (Some(_), None, _, _) => "applied, fill unconfirmed".to_owned(),
            (None, _, Some(phase), _) => format!("aborted ({phase})"),
            (None, _, None, true) => "unresolved".to_owned(),
            _ => "open".to_owned(),
        }
    }
}

/// Everything reconstructed from one input: per-deal timelines plus the
/// per-node derivation/verification state.
#[derive(Debug, Default)]
pub struct DealLedger {
    deals: BTreeMap<DealId, DealState>,
    recorded: BTreeMap<usize, Recorded>,
    derived: BTreeMap<usize, Recorded>,
}

/// Builds the ledger from a parsed, chain-verified federation log.
pub fn ledger_from_fed_log(log: &FedLog) -> DealLedger {
    // Send seq → (deal, hop, kind, attempt), so substrate events (which
    // carry only the seq) regain deal provenance.
    let mut meta: BTreeMap<u64, (DealId, u64, &'static str, Option<u32>)> = BTreeMap::new();
    let mut steps = Vec::new();
    for record in &log.records {
        let step = match &record.event {
            FedEvent::Net(net) => match net {
                NetEvent::Sent {
                    tick,
                    seq,
                    from,
                    to,
                    payload,
                } => {
                    let Ok(packet) = serde_json::from_str::<FedPacket>(payload) else {
                        continue;
                    };
                    let Some(deal) = msg_deal(&packet.msg) else {
                        continue; // gossip: not part of any deal timeline
                    };
                    let attempt = match &packet.msg {
                        FedMsg::Offer { attempt, .. } | FedMsg::Commit { attempt, .. } => {
                            Some(*attempt)
                        }
                        _ => None,
                    };
                    let kind = msg_kind(&packet.msg);
                    meta.insert(*seq, (deal, packet.hop, kind, attempt));
                    Step::Sent {
                        tick: *tick,
                        from: *from,
                        to: *to,
                        kind: kind.to_owned(),
                        attempt: attempt.map(u64::from),
                        deal,
                        hop: packet.hop,
                    }
                }
                NetEvent::Dropped {
                    tick, seq, reason, ..
                } => {
                    let Some((deal, _, kind, _)) = meta.get(seq) else {
                        continue;
                    };
                    Step::Dropped {
                        tick: *tick,
                        kind: (*kind).to_owned(),
                        deal: *deal,
                        partition: *reason == DropReason::Partition,
                    }
                }
                NetEvent::Duplicated {
                    tick,
                    seq,
                    deliver_at,
                    ..
                } => {
                    let Some((deal, _, kind, _)) = meta.get(seq) else {
                        continue;
                    };
                    Step::Duplicated {
                        tick: *tick,
                        kind: (*kind).to_owned(),
                        deal: *deal,
                        deliver_at: *deliver_at,
                    }
                }
                NetEvent::Delivered {
                    tick,
                    seq,
                    to,
                    duplicate,
                    ..
                } => {
                    let Some((deal, _, kind, _)) = meta.get(seq) else {
                        continue;
                    };
                    Step::Delivered {
                        tick: *tick,
                        kind: (*kind).to_owned(),
                        deal: *deal,
                        to: *to,
                        duplicate: *duplicate,
                    }
                }
            },
            FedEvent::Timeout {
                tick,
                node,
                deal,
                phase,
                attempt,
                retrying,
            } => Step::Timeout {
                tick: *tick,
                node: *node,
                deal: *deal,
                phase: phase.clone(),
                attempt: u64::from(*attempt),
                retrying: *retrying,
            },
            FedEvent::DealOpened {
                tick,
                buyer,
                seller,
                deal,
                units,
                max_unit_price,
            } => Step::Opened {
                tick: *tick,
                buyer: *buyer,
                seller: *seller,
                deal: *deal,
                units: *units,
                cap: *max_unit_price,
            },
            FedEvent::DealReserved {
                tick,
                seller,
                deal,
                units,
                unit_price,
                expires,
            } => Step::Reserved {
                tick: *tick,
                seller: *seller,
                deal: *deal,
                units: *units,
                price: *unit_price,
                expires: *expires,
            },
            FedEvent::DealRejected {
                tick,
                seller,
                deal,
                code,
            } => Step::Rejected {
                tick: *tick,
                seller: *seller,
                deal: *deal,
                code: code.clone(),
            },
            FedEvent::DealApplied {
                tick,
                seller,
                deal,
                units,
                unit_price,
            } => Step::Applied {
                tick: *tick,
                seller: *seller,
                deal: *deal,
                units: *units,
                price: *unit_price,
            },
            FedEvent::DealFilled {
                tick,
                buyer,
                deal,
                units,
                unit_price,
                late,
            } => Step::Filled {
                tick: *tick,
                buyer: *buyer,
                deal: *deal,
                units: *units,
                price: *unit_price,
                late: *late,
            },
            FedEvent::DealAborted {
                tick,
                node,
                deal,
                phase,
            } => Step::Aborted {
                tick: *tick,
                node: *node,
                deal: *deal,
                phase: phase.clone(),
            },
            FedEvent::DealUnresolved { tick, node, deal } => Step::Unresolved {
                tick: *tick,
                node: *node,
                deal: *deal,
            },
            FedEvent::ReservationExpired {
                tick,
                seller,
                deal,
                units,
            } => Step::Expired {
                tick: *tick,
                seller: *seller,
                deal: *deal,
                units: *units,
            },
            FedEvent::NodeSummary { node, counters, .. } => Step::Summary {
                node: *node,
                recorded: Recorded::from(counters),
            },
            FedEvent::StageCompleted { .. } | FedEvent::LocalOnly { .. } => continue,
        };
        steps.push((Some(record.seq), step));
    }
    build(steps)
}

/// Builds the ledger from a parsed federation trace (`fed.*` events, as
/// written by `federate --trace` / `replay --trace`).
pub fn ledger_from_trace(events: &[TraceEvent]) -> DealLedger {
    let deal_of = |e: &TraceEvent| e.str("deal").and_then(parse_deal_id);
    let hop_of = |e: &TraceEvent| {
        e.str("span")
            .and_then(|s| s.rsplit_once('#'))
            .and_then(|(_, h)| h.parse().ok())
            .unwrap_or(0)
    };
    let mut steps = Vec::new();
    for e in events {
        let fed_seq = e.u64("fed_seq");
        let tick = e.u64("tick").unwrap_or(0);
        let step = match e.name() {
            "fed.net.sent" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Sent {
                    tick,
                    from: e.u64("from").unwrap_or(0) as usize,
                    to: e.u64("to").unwrap_or(0) as usize,
                    kind: e.str("kind").unwrap_or("?").to_owned(),
                    attempt: e.u64("attempt"),
                    deal,
                    hop: hop_of(e),
                }
            }
            "fed.net.dropped" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Dropped {
                    tick,
                    kind: e.str("kind").unwrap_or("?").to_owned(),
                    deal,
                    partition: e.str("reason") == Some("partition"),
                }
            }
            "fed.net.duplicated" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Duplicated {
                    tick,
                    kind: e.str("kind").unwrap_or("?").to_owned(),
                    deal,
                    deliver_at: e.u64("deliver_at").unwrap_or(0),
                }
            }
            "fed.net.delivered" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Delivered {
                    tick,
                    kind: e.str("kind").unwrap_or("?").to_owned(),
                    deal,
                    to: e.u64("to").unwrap_or(0) as usize,
                    duplicate: e.bool("duplicate").unwrap_or(false),
                }
            }
            "fed.timeout" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Timeout {
                    tick,
                    node: e.u64("node").unwrap_or(0) as usize,
                    deal,
                    phase: e.str("phase").unwrap_or("?").to_owned(),
                    attempt: e.u64("attempt").unwrap_or(0),
                    retrying: e.bool("retrying").unwrap_or(false),
                }
            }
            "fed.deal.opened" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Opened {
                    tick,
                    buyer: e.u64("buyer").unwrap_or(0) as usize,
                    seller: e.u64("seller").unwrap_or(0) as usize,
                    deal,
                    units: e.u64("units").unwrap_or(0),
                    cap: e.f64("max_unit_price").unwrap_or(f64::NAN),
                }
            }
            "fed.deal.reserved" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Reserved {
                    tick,
                    seller: e.u64("seller").unwrap_or(0) as usize,
                    deal,
                    units: e.u64("units").unwrap_or(0),
                    price: e.f64("unit_price").unwrap_or(f64::NAN),
                    expires: e.u64("expires").unwrap_or(0),
                }
            }
            "fed.deal.rejected" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Rejected {
                    tick,
                    seller: e.u64("seller").unwrap_or(0) as usize,
                    deal,
                    code: e.str("code").unwrap_or("?").to_owned(),
                }
            }
            "fed.deal.applied" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Applied {
                    tick,
                    seller: e.u64("seller").unwrap_or(0) as usize,
                    deal,
                    units: e.u64("units").unwrap_or(0),
                    price: e.f64("unit_price").unwrap_or(f64::NAN),
                }
            }
            "fed.deal.filled" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Filled {
                    tick,
                    buyer: e.u64("buyer").unwrap_or(0) as usize,
                    deal,
                    units: e.u64("units").unwrap_or(0),
                    price: e.f64("unit_price").unwrap_or(f64::NAN),
                    late: e.bool("late").unwrap_or(false),
                }
            }
            "fed.deal.aborted" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Aborted {
                    tick,
                    node: e.u64("node").unwrap_or(0) as usize,
                    deal,
                    phase: e.str("phase").unwrap_or("?").to_owned(),
                }
            }
            "fed.deal.unresolved" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Unresolved {
                    tick,
                    node: e.u64("node").unwrap_or(0) as usize,
                    deal,
                }
            }
            "fed.reservation.expired" => {
                let Some(deal) = deal_of(e) else { continue };
                Step::Expired {
                    tick,
                    seller: e.u64("seller").unwrap_or(0) as usize,
                    deal,
                    units: e.u64("units").unwrap_or(0),
                }
            }
            "fed.node.summary" => Step::Summary {
                node: e.u64("node").unwrap_or(0) as usize,
                recorded: Recorded {
                    deals_applied: e.u64("deals_applied").unwrap_or(0),
                    deals_filled: e.u64("deals_filled").unwrap_or(0),
                    resold_units: e.u64("resold_units").unwrap_or(0),
                    filled_units: e.u64("filled_units").unwrap_or(0),
                    resale_revenue: e.f64("resale_revenue").unwrap_or(f64::NAN),
                    cross_cost: e.f64("cross_cost").unwrap_or(f64::NAN),
                },
            },
            _ => continue,
        };
        steps.push((fed_seq, step));
    }
    build(steps)
}

/// Formats an f64 in shortest round-trip form (the trace/log format).
fn num(v: f64) -> String {
    format!("{v}")
}

/// Folds normalized steps into timelines and derivation state. The
/// derived f64 totals accumulate in step order — the same chronological
/// order the live run used — so they must equal the recorded counters
/// bit-for-bit.
fn build(steps: Vec<(Option<u64>, Step)>) -> DealLedger {
    let mut ledger = DealLedger::default();
    for (fed_seq, step) in steps {
        let seq_tag = fed_seq.map_or_else(String::new, |s| format!(" · seq {s}"));
        let (deal, line) = match step {
            Step::Sent {
                tick,
                from,
                to,
                kind,
                attempt,
                deal,
                hop,
            } => {
                let retx = match attempt {
                    Some(a) if a > 0 => format!(" [retransmit, attempt {a}]"),
                    _ => String::new(),
                };
                (
                    deal,
                    format!(
                        "[tick {tick}{seq_tag}] {kind} sent platform#{from} → platform#{to} \
                         (span {deal}#{hop}){retx}"
                    ),
                )
            }
            Step::Dropped {
                tick,
                kind,
                deal,
                partition,
            } => {
                let why = if partition {
                    "partition window"
                } else {
                    "link loss"
                };
                (
                    deal,
                    format!("[tick {tick}{seq_tag}] {kind} DROPPED in flight ({why})"),
                )
            }
            Step::Duplicated {
                tick,
                kind,
                deal,
                deliver_at,
            } => (
                deal,
                format!(
                    "[tick {tick}{seq_tag}] duplicate {kind} copy scheduled for tick {deliver_at}"
                ),
            ),
            Step::Delivered {
                tick,
                kind,
                deal,
                to,
                duplicate,
            } => {
                let dup = if duplicate { " (duplicate copy)" } else { "" };
                (
                    deal,
                    format!("[tick {tick}{seq_tag}] {kind} delivered to platform#{to}{dup}"),
                )
            }
            Step::Opened {
                tick,
                buyer,
                seller,
                deal,
                units,
                cap,
            } => {
                let state = ledger.deals.entry(deal).or_default();
                state.buyer = Some(buyer);
                state.seller = Some(seller);
                state.requested = Some(units);
                (
                    deal,
                    format!(
                        "[tick {tick}{seq_tag}] deal opened by platform#{buyer}: \
                         wants {units}u from platform#{seller} (price cap {}/u)",
                        num(cap)
                    ),
                )
            }
            Step::Reserved {
                tick,
                seller,
                deal,
                units,
                price,
                expires,
            } => (
                deal,
                format!(
                    "[tick {tick}{seq_tag}] platform#{seller} reserved {units}u @ {}/u \
                     (reservation expires tick {expires})",
                    num(price)
                ),
            ),
            Step::Rejected {
                tick,
                seller,
                deal,
                code,
            } => (
                deal,
                format!("[tick {tick}{seq_tag}] platform#{seller} rejected: {code}"),
            ),
            Step::Applied {
                tick,
                seller,
                deal,
                units,
                price,
            } => {
                let state = ledger.deals.entry(deal).or_default();
                state.seller = Some(seller);
                state.applied = Some((units, price, seller));
                let d = ledger.derived.entry(seller).or_default();
                d.deals_applied += 1;
                d.resold_units += units;
                d.resale_revenue += units as f64 * price;
                (
                    deal,
                    format!(
                        "[tick {tick}{seq_tag}] platform#{seller} applied {units}u @ {}/u — \
                         resale revenue {}",
                        num(price),
                        num(units as f64 * price)
                    ),
                )
            }
            Step::Filled {
                tick,
                buyer,
                deal,
                units,
                price,
                late,
            } => {
                let state = ledger.deals.entry(deal).or_default();
                state.buyer = Some(buyer);
                state.filled = Some((units, price, buyer, late));
                let d = ledger.derived.entry(buyer).or_default();
                d.deals_filled += 1;
                d.filled_units += units;
                d.cross_cost += units as f64 * price;
                let late_tag = if late {
                    " (late — after giving up)"
                } else {
                    ""
                };
                (
                    deal,
                    format!(
                        "[tick {tick}{seq_tag}] platform#{buyer} booked the fill: \
                         {units}u @ {}/u{late_tag}",
                        num(price)
                    ),
                )
            }
            Step::Timeout {
                tick,
                node,
                deal,
                phase,
                attempt,
                retrying,
            } => {
                let next = if retrying { "retrying" } else { "giving up" };
                (
                    deal,
                    format!(
                        "[tick {tick}{seq_tag}] platform#{node} {phase} deadline expired \
                         (attempt {attempt}, {next})"
                    ),
                )
            }
            Step::Aborted {
                tick,
                node,
                deal,
                phase,
            } => {
                ledger.deals.entry(deal).or_default().aborted = Some(phase.clone());
                (
                    deal,
                    format!(
                        "[tick {tick}{seq_tag}] platform#{node} aborted the deal \
                         in phase {phase}"
                    ),
                )
            }
            Step::Unresolved { tick, node, deal } => {
                ledger.deals.entry(deal).or_default().unresolved = true;
                (
                    deal,
                    format!("[tick {tick}{seq_tag}] platform#{node} gave up: commit fate unknown"),
                )
            }
            Step::Expired {
                tick,
                seller,
                deal,
                units,
            } => (
                deal,
                format!(
                    "[tick {tick}{seq_tag}] platform#{seller} reservation expired — \
                     {units}u released"
                ),
            ),
            Step::Summary { node, recorded } => {
                ledger.recorded.insert(node, recorded);
                continue;
            }
        };
        ledger.deals.entry(deal).or_default().timeline.push(line);
    }
    ledger
}

impl DealLedger {
    /// True when the input held no deal events at all.
    pub fn is_empty(&self) -> bool {
        self.deals.is_empty()
    }

    /// The verification block shared by `--deal` and `--deals`: per-node
    /// re-derived totals vs recorded counters, then the per-deal tally.
    /// Returns `(text, verified, committed)`.
    fn verify(&self) -> (String, usize, usize) {
        let mut out = String::new();
        let mut bad_nodes = Vec::new();
        if self.recorded.is_empty() {
            let _ = writeln!(
                out,
                "no NodeSummary records in the input — totals cannot be verified \
                 (v{} logs and traces record them)",
                edge_auction::federation::FED_VERSION
            );
        }
        for (&node, rec) in &self.recorded {
            let der = self.derived.get(&node).copied().unwrap_or_default();
            let ok = der == *rec;
            if !ok {
                bad_nodes.push(node);
            }
            let mark = if ok {
                "✓ matches recorded counters".to_owned()
            } else {
                format!(
                    "✗ recorded applied {} / filled {} / resold {}u rev {} / \
                     bought {}u cost {}",
                    rec.deals_applied,
                    rec.deals_filled,
                    rec.resold_units,
                    num(rec.resale_revenue),
                    rec.filled_units,
                    num(rec.cross_cost)
                )
            };
            let _ = writeln!(
                out,
                "platform#{node}: re-derived {} applied ({}u sold, revenue {}), \
                 {} filled ({}u bought, cost {}) {mark}",
                der.deals_applied,
                der.resold_units,
                num(der.resale_revenue),
                der.deals_filled,
                der.filled_units,
                num(der.cross_cost)
            );
        }
        // A committed deal verifies when its fill terms (if booked)
        // match the applied terms AND neither endpoint's totals drifted.
        let committed: Vec<(&DealId, &DealState)> = self
            .deals
            .iter()
            .filter(|(_, s)| s.applied.is_some())
            .collect();
        let mut verified = 0usize;
        for (deal, state) in &committed {
            let (au, ap, seller) = state.applied.expect("committed deals have terms");
            let terms_ok = match state.filled {
                Some((fu, fp, _, _)) => fu == au && fp == ap,
                None => true, // applied but never booked: nothing to cross-check
            };
            let buyer_ok = state
                .filled
                .is_none_or(|(_, _, buyer, _)| !bad_nodes.contains(&buyer));
            if terms_ok && buyer_ok && !bad_nodes.contains(&seller) {
                verified += 1;
            } else {
                let _ = writeln!(out, "deal {deal}: terms drifted between log and counters");
            }
        }
        let _ = writeln!(out, "deals verified: {verified}/{}", committed.len());
        (out, verified, committed.len())
    }

    /// Renders one deal's causal timeline plus the verification block.
    ///
    /// # Errors
    ///
    /// [`CliError::Federation`] naming the known deals when `deal` has
    /// no events.
    pub fn render_deal(&self, deal: DealId) -> Result<String, CliError> {
        let Some(state) = self.deals.get(&deal) else {
            let known: Vec<String> = self.deals.keys().map(ToString::to_string).collect();
            return Err(CliError::Federation(format!(
                "no events for deal {deal}; input covers deals: {}",
                if known.is_empty() {
                    "(none)".to_owned()
                } else {
                    known.join(", ")
                }
            )));
        };
        let mut out = String::new();
        let _ = writeln!(out, "deal {deal} — {}", state.status());
        if let (Some(buyer), Some(seller)) = (state.buyer, state.seller) {
            let _ = writeln!(
                out,
                "buyer platform#{buyer}, seller platform#{seller}, requested {}u",
                state.requested.unwrap_or(0)
            );
        }
        for line in &state.timeline {
            let _ = writeln!(out, "  {line}");
        }
        if let Some((units, price, seller)) = state.applied {
            let _ = writeln!(
                out,
                "re-derived: platform#{seller} resold {units}u @ {}/u → revenue {}",
                num(price),
                num(units as f64 * price)
            );
        }
        out.push_str(&self.verify().0);
        Ok(out)
    }

    /// Renders the all-deals summary table plus the verification block.
    ///
    /// # Errors
    ///
    /// [`CliError::Federation`] when the input holds no deal events.
    pub fn render_deals(&self) -> Result<String, CliError> {
        use edge_bench::table::Table;
        if self.deals.is_empty() {
            return Err(CliError::Federation(
                "input holds no deal events (nothing was opened)".to_owned(),
            ));
        }
        let mut table = Table::new([
            "deal", "buyer", "seller", "units", "price", "revenue", "status",
        ]);
        for (deal, state) in &self.deals {
            let (units, price) = state
                .applied
                .map_or((state.requested.unwrap_or(0), None), |(u, p, _)| {
                    (u, Some(p))
                });
            table.push([
                deal.to_string(),
                state.buyer.map_or_else(|| "?".into(), |b| b.to_string()),
                state.seller.map_or_else(|| "?".into(), |s| s.to_string()),
                units.to_string(),
                price.map_or_else(String::new, num),
                price.map_or_else(String::new, |p| num(units as f64 * p)),
                state.status(),
            ]);
        }
        let mut out = format!("{} deals\n", self.deals.len());
        out.push_str(&table.render());
        out.push_str(&self.verify().0);
        Ok(out)
    }
}
