//! `edge-market federate` — run a multi-platform federation over the
//! deterministic network substrate.
//!
//! `--platforms K` platforms each wrap the same event-sourced
//! [`AuctionService`](edge_auction::service::AuctionService) the `serve`
//! daemon drives (node `k` reseeded as `seed + k·7919`, node 0
//! unchanged), connected by an in-process [`edge_net`] network whose
//! faults come from a seeded `--net-faults` plan. Platforms gossip
//! surplus and prices after every stage and re-sell spare capacity
//! through a two-phase offer/commit protocol with deterministic
//! timeouts and bounded retries; a partitioned platform degrades to
//! local-only clearing and reconciles on heal.
//!
//! Every message send, drop, timeout, and deal transition is folded
//! into a digest-chained federation event log (`--fed-log`); `replay`
//! re-runs the whole federation from that log's header and verifies
//! record-for-record equality — at any `--pricing-threads` setting.
//! With `--platforms 1` and no net-fault plan, the run is bit-identical
//! to the single-platform serve loop: same provider, same seed, same
//! state digest.

use crate::args::{ArgsError, ParsedArgs};
use crate::commands::{apply_pricing_threads, CliError};
use edge_auction::federation::{
    render_fed_log, FederationConfig, FederationOutcome, FederationSim,
};
use edge_auction::service::ServiceConfig;
use edge_net::NetFaultPlan;
use edge_telemetry::Collector;
use std::fmt::Write as _;
use std::fs;

/// Flags the `federate` command accepts.
pub const FEDERATE_FLAGS: &[&str] = &[
    "platforms",
    "net-faults",
    "seed",
    "microservices",
    "requests",
    "rounds",
    "stage-rounds",
    "book-cap",
    "demand-cap",
    "round-ticks",
    "offer-timeout",
    "max-retries",
    "retries",
    "fed-log",
    "trace",
    "pricing-threads",
    "spans",
];

/// Builds the [`FederationConfig`] from parsed flags. Node 0 keeps the
/// base seed so a 1-platform federation matches the serve loop exactly.
fn federation_config(args: &ParsedArgs) -> Result<(FederationConfig, usize), CliError> {
    let platforms = args.get_or("platforms", 2usize)?.max(1);
    let base = ServiceConfig {
        seed: args.get_or("seed", 42u64)?,
        microservices: args.get_or("microservices", 25usize)?,
        requests: args.get_or("requests", 100u64)?,
        total_rounds: args.get_or("rounds", 10u64)?.max(1),
        stage_rounds: args.get_or("stage-rounds", 5u64)?.max(1),
        book_cap: args.get_or("book-cap", 4096usize)?,
        demand_cap: args.get_or("demand-cap", 1_000_000u64)?,
    };
    let mut config = FederationConfig::uniform(base, platforms);
    config.round_ticks = args.get_or("round-ticks", config.round_ticks)?;
    config.offer_timeout = args.get_or("offer-timeout", config.offer_timeout)?;
    config.max_retries = args.get_or("max-retries", config.max_retries)?;
    config.retries_enabled = match args.get("retries").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(ArgsError::InvalidValue {
                flag: "retries".into(),
                value: other.to_owned(),
            }
            .into())
        }
    };
    Ok((config, platforms))
}

/// Renders the human-readable run summary shared by `federate` and the
/// federation arm of `replay`.
pub fn render_outcome(outcome: &FederationOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "federation settled after {} ticks: {} platforms",
        outcome.ticks,
        outcome.nodes.len()
    );
    for n in &outcome.nodes {
        let _ = writeln!(
            out,
            "  platform {}: {} stages, {} rounds, deficit {}u, filled {}u \
             (late {}), resold {}u, local-only stages {}, state {}",
            n.node,
            n.stages,
            n.rounds,
            n.counters.deficit_units,
            n.counters.filled_units,
            n.counters.late_fills,
            n.counters.resold_units,
            n.counters.local_only_stages,
            n.state_digest,
        );
    }
    let _ = writeln!(
        out,
        "network: {} sent, {} delivered, {} dropped (loss {}, partition {}), \
         {} duplicated, {} reordered",
        outcome.net.sent,
        outcome.net.delivered,
        outcome.net.dropped_loss + outcome.net.dropped_partition,
        outcome.net.dropped_loss,
        outcome.net.dropped_partition,
        outcome.net.duplicated,
        outcome.net.reordered,
    );
    let _ = writeln!(
        out,
        "cross-platform fill rate: {:.3}, platform cost: {:.3}",
        outcome.fill_rate(),
        outcome.platform_cost()
    );
    let _ = writeln!(out, "fed digest: {}", outcome.fed_digest);
    let _ = writeln!(out, "net digest: {}", outcome.net_digest);
    let _ = writeln!(out, "outcome digest: {}", outcome.digest_hex());
    out
}

/// Runs `federate`: build the federation, drive it to settlement, and
/// report per-platform outcomes plus the chained digests. See the
/// module docs for the determinism contract.
pub fn federate(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(FEDERATE_FLAGS)?;
    apply_pricing_threads(args)?;
    let (config, platforms) = federation_config(args)?;
    let plan = match args.get("net-faults") {
        Some(path) => crate::netfaults::parse_net_fault_plan(
            &fs::read_to_string(path)?,
            config.nodes[0].seed,
            platforms,
        )?,
        None => NetFaultPlan::ideal(config.nodes[0].seed),
    };

    edge_auction::live::preregister();
    edge_net::preregister();
    edge_auction::federation::preregister_federation_metrics();
    edge_telemetry::spans::preregister();
    edge_telemetry::spans::set_live(true);
    let spans_on = crate::commands::on_off_flag(args, "spans", false)?;
    if spans_on {
        edge_telemetry::spans::install();
    }

    let collector = args.get("trace").map(|_| Collector::new());
    let mut sim = FederationSim::new(config, plan, |_, c| crate::serve::stage_provider(c))
        .map_err(|e| CliError::Federation(e.to_string()))?;
    let run_result = sim.run(collector.as_ref());
    if spans_on {
        let tree = edge_telemetry::spans::uninstall();
        if let (Some(tree), Some(collector)) = (tree, collector.as_ref()) {
            tree.flush_into(collector);
        }
    }
    edge_telemetry::spans::set_live(false);
    let outcome = run_result.map_err(|e| CliError::Federation(e.to_string()))?;

    let mut out = render_outcome(&outcome);
    if let Some(path) = args.get("fed-log") {
        let rendered = render_fed_log(&sim.header(), sim.records());
        fs::write(path, rendered)?;
        let _ = writeln!(out, "fed log: {} records → {path}", sim.records().len());
    }
    if let (Some(path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(path, collector.deterministic_jsonl())?;
        let _ = writeln!(out, "trace: {} events → {path}", collector.len());
    }
    Ok(out)
}
