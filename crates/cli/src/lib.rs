//! Command-line front end for the `edge-market` workspace.
//!
//! The binary is a thin wrapper over [`commands::run`], so everything —
//! argument parsing, command dispatch, rendering — is testable as a
//! library:
//!
//! ```
//! use edge_market_cli::args::ParsedArgs;
//! use edge_market_cli::commands::run;
//!
//! let parsed = ParsedArgs::parse(["help".to_owned()]).unwrap();
//! let output = run(parsed).unwrap();
//! assert!(output.contains("edge-market"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod args;
pub mod bench_diff;
pub mod commands;
pub mod explain;
pub mod faults;
pub mod fed_explain;
pub mod federate;
pub mod netfaults;
pub mod profile;
pub mod replay;
pub mod serve;
