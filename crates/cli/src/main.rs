//! `edge-market` binary entry point.

use edge_market_cli::args::ParsedArgs;
use edge_market_cli::commands::{help, run};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print!("{}", help());
        std::process::exit(2);
    }
    match ParsedArgs::parse(args).map_err(Into::into).and_then(run) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
