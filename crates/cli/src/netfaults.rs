//! Net-fault-plan files: a hand-written parser for the TOML subset the
//! `--net-faults` flag accepts.
//!
//! Like [`crate::faults`], the workspace carries no TOML dependency, so
//! this module parses exactly what a [`NetFaultPlan`] needs:
//!
//! ```toml
//! seed = 7                     # optional; defaults to --seed
//!
//! [link]                       # optional; defaults to the ideal link
//! latency_min = 1
//! latency_max = 3
//! drop_probability = 0.3
//! duplicate_probability = 0.05
//! reorder_probability = 0.1
//! reorder_max_extra = 2
//!
//! [[partitions]]
//! from = 4        # inclusive
//! until = 20      # exclusive (the heal tick); omit for "never heals"
//! isolated = 2    # the platform cut off from everyone
//! ```
//!
//! Supported: `#` comments, blank lines, one optional top-level `seed`,
//! one optional `[link]` table, and any number of `[[partitions]]`
//! entries. Anything else is a loud error naming the offending line — a
//! plan that silently drops half its faults would invalidate every
//! experiment run on it.

use edge_net::{NetFaultPlan, PartitionWindow};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from [`parse_net_fault_plan`], naming the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultPlanError {
    /// A line that is neither a table header nor `key = value`.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A header naming an unknown table.
    UnknownTable {
        /// 1-based line number.
        line: usize,
        /// The header's table name.
        name: String,
    },
    /// A key the current table (or the top level) does not define, or a
    /// duplicate within one entry.
    UnknownKey {
        /// 1-based line number.
        line: usize,
        /// The table being filled (`"top level"` before any header).
        table: &'static str,
        /// The offending key.
        key: String,
    },
    /// A value that does not parse as the key's type.
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// The key being assigned.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// A `[[partitions]]` entry missing a required key.
    MissingKey {
        /// 1-based line number of the entry's header.
        line: usize,
        /// The absent key.
        key: &'static str,
    },
    /// The assembled plan failed [`NetFaultPlan::validate`].
    Invalid(String),
}

impl fmt::Display for NetFaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFaultPlanError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            NetFaultPlanError::UnknownTable { line, name } => write!(
                f,
                "line {line}: unknown table [{name}] (expected [link] or [[partitions]])"
            ),
            NetFaultPlanError::UnknownKey { line, table, key } => {
                write!(f, "line {line}: {table} has no key '{key}'")
            }
            NetFaultPlanError::InvalidValue { line, key, value } => {
                write!(f, "line {line}: cannot parse '{value}' for key '{key}'")
            }
            NetFaultPlanError::MissingKey { line, key } => write!(
                f,
                "[[partitions]] entry at line {line} is missing required key '{key}'"
            ),
            NetFaultPlanError::Invalid(detail) => write!(f, "invalid plan: {detail}"),
        }
    }
}

impl Error for NetFaultPlanError {}

/// Where keys currently land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Top,
    Link,
    Partition(usize),
}

const LINK_KEYS: &[&str] = &[
    "latency_min",
    "latency_max",
    "drop_probability",
    "duplicate_probability",
    "reorder_probability",
    "reorder_max_extra",
];
const PARTITION_KEYS: &[&str] = &["from", "until", "isolated"];

/// Strips a trailing `#` comment (no string values in this grammar).
fn strip_comment(line: &str) -> &str {
    line.split_once('#').map_or(line, |(before, _)| before)
}

fn parse_u64(raw: &str, key: &str, line: usize) -> Result<u64, NetFaultPlanError> {
    raw.parse().map_err(|_| NetFaultPlanError::InvalidValue {
        line,
        key: key.to_owned(),
        value: raw.to_owned(),
    })
}

fn parse_f64(raw: &str, key: &str, line: usize) -> Result<f64, NetFaultPlanError> {
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(NetFaultPlanError::InvalidValue {
            line,
            key: key.to_owned(),
            value: raw.to_owned(),
        }),
    }
}

/// One `[[partitions]]` entry mid-parse.
#[derive(Debug, Default)]
struct RawPartition {
    line: usize,
    values: BTreeMap<String, (String, usize)>,
}

/// Parses a net-fault-plan file into a [`NetFaultPlan`].
///
/// `default_seed` is used when the file has no top-level `seed`;
/// `platforms` bounds partition `isolated` indices during validation.
///
/// # Errors
///
/// Any [`NetFaultPlanError`], always naming the offending line (or the
/// validation failure).
pub fn parse_net_fault_plan(
    text: &str,
    default_seed: u64,
    platforms: usize,
) -> Result<NetFaultPlan, NetFaultPlanError> {
    let mut plan = NetFaultPlan::ideal(default_seed);
    let mut section = Section::Top;
    let mut seen_top: BTreeMap<String, usize> = BTreeMap::new();
    let mut seen_link: BTreeMap<String, usize> = BTreeMap::new();
    let mut partitions: Vec<RawPartition> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            if header.trim() != "partitions" {
                return Err(NetFaultPlanError::UnknownTable {
                    line: line_no,
                    name: format!("[{}]", header.trim()),
                });
            }
            partitions.push(RawPartition {
                line: line_no,
                values: BTreeMap::new(),
            });
            section = Section::Partition(partitions.len() - 1);
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            if header.trim() != "link" {
                return Err(NetFaultPlanError::UnknownTable {
                    line: line_no,
                    name: header.trim().to_owned(),
                });
            }
            section = Section::Link;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(NetFaultPlanError::Syntax {
                line: line_no,
                message: format!("expected [link], [[partitions]], or key = value, got '{line}'"),
            });
        };
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(NetFaultPlanError::Syntax {
                line: line_no,
                message: format!("key '{key}' has no value"),
            });
        }
        match section {
            Section::Top => {
                if key != "seed" || seen_top.insert(key.to_owned(), line_no).is_some() {
                    return Err(NetFaultPlanError::UnknownKey {
                        line: line_no,
                        table: "the top level",
                        key: key.to_owned(),
                    });
                }
                plan.seed = parse_u64(value, key, line_no)?;
            }
            Section::Link => {
                if !LINK_KEYS.contains(&key) || seen_link.insert(key.to_owned(), line_no).is_some()
                {
                    return Err(NetFaultPlanError::UnknownKey {
                        line: line_no,
                        table: "[link]",
                        key: key.to_owned(),
                    });
                }
                match key {
                    "latency_min" => plan.link.latency_min = parse_u64(value, key, line_no)?,
                    "latency_max" => plan.link.latency_max = parse_u64(value, key, line_no)?,
                    "drop_probability" => {
                        plan.link.drop_probability = parse_f64(value, key, line_no)?;
                    }
                    "duplicate_probability" => {
                        plan.link.duplicate_probability = parse_f64(value, key, line_no)?;
                    }
                    "reorder_probability" => {
                        plan.link.reorder_probability = parse_f64(value, key, line_no)?;
                    }
                    "reorder_max_extra" => {
                        plan.link.reorder_max_extra = parse_u64(value, key, line_no)?;
                    }
                    _ => unreachable!("key checked against LINK_KEYS"),
                }
            }
            Section::Partition(i) => {
                let entry = &mut partitions[i];
                if !PARTITION_KEYS.contains(&key) || entry.values.contains_key(key) {
                    return Err(NetFaultPlanError::UnknownKey {
                        line: line_no,
                        table: "[[partitions]]",
                        key: key.to_owned(),
                    });
                }
                entry
                    .values
                    .insert(key.to_owned(), (value.to_owned(), line_no));
            }
        }
    }

    for entry in &partitions {
        let require = |key: &'static str| -> Result<(&str, usize), NetFaultPlanError> {
            entry
                .values
                .get(key)
                .map(|(raw, line)| (raw.as_str(), *line))
                .ok_or(NetFaultPlanError::MissingKey {
                    line: entry.line,
                    key,
                })
        };
        let (from_raw, from_line) = require("from")?;
        let (isolated_raw, isolated_line) = require("isolated")?;
        // `until` is optional: an absent heal tick means "never heals".
        let until = match entry.values.get("until") {
            Some((raw, line)) => parse_u64(raw, "until", *line)?,
            None => u64::MAX,
        };
        plan.partitions.push(PartitionWindow {
            from: parse_u64(from_raw, "from", from_line)?,
            until,
            isolated: usize::try_from(parse_u64(isolated_raw, "isolated", isolated_line)?)
                .expect("u64 fits usize on supported targets"),
        });
    }

    plan.validate(platforms)
        .map_err(|e| NetFaultPlanError::Invalid(e.to_string()))?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r"
seed = 7

[link]               # a moderately hostile link
latency_min = 1
latency_max = 3
drop_probability = 0.3
duplicate_probability = 0.05
reorder_probability = 0.1
reorder_max_extra = 2

[[partitions]]
from = 4
until = 20
isolated = 2

[[partitions]]       # never heals
from = 30
isolated = 0
";

    #[test]
    fn parses_a_full_plan() {
        let plan = parse_net_fault_plan(GOOD, 99, 3).unwrap();
        assert_eq!(plan.seed, 7, "file seed wins over the default");
        assert_eq!((plan.link.latency_min, plan.link.latency_max), (1, 3));
        assert!((plan.link.drop_probability - 0.3).abs() < 1e-12);
        assert_eq!(plan.link.reorder_max_extra, 2);
        assert_eq!(plan.partitions.len(), 2);
        assert_eq!(plan.partitions[0].until, 20);
        assert_eq!(plan.partitions[1].until, u64::MAX, "no heal tick");
        assert!(plan.is_partitioned(2, 0, 10));
        assert!(!plan.is_partitioned(2, 0, 25));
    }

    #[test]
    fn empty_file_is_the_ideal_plan_with_the_default_seed() {
        let plan = parse_net_fault_plan("# nothing\n", 42, 3).unwrap();
        assert_eq!(plan.seed, 42);
        assert!(plan.is_ideal());
    }

    #[test]
    fn errors_name_the_offending_line() {
        let err = parse_net_fault_plan("[link]\nbogus = 1", 0, 3).unwrap_err();
        assert_eq!(
            err,
            NetFaultPlanError::UnknownKey {
                line: 2,
                table: "[link]",
                key: "bogus".into()
            }
        );
        assert!(err.to_string().contains("line 2"), "{err}");

        let err = parse_net_fault_plan("[oops]", 0, 3).unwrap_err();
        assert!(matches!(
            err,
            NetFaultPlanError::UnknownTable { line: 1, .. }
        ));

        let err = parse_net_fault_plan("[[oops]]", 0, 3).unwrap_err();
        assert!(matches!(
            err,
            NetFaultPlanError::UnknownTable { line: 1, .. }
        ));

        let err = parse_net_fault_plan("latency_min = 2", 0, 3).unwrap_err();
        assert!(matches!(err, NetFaultPlanError::UnknownKey { line: 1, .. }));

        let err = parse_net_fault_plan("[link]\nnot a pair", 0, 3).unwrap_err();
        assert!(matches!(err, NetFaultPlanError::Syntax { line: 2, .. }));

        let err = parse_net_fault_plan("[link]\ndrop_probability = lots", 0, 3).unwrap_err();
        assert!(matches!(
            err,
            NetFaultPlanError::InvalidValue { line: 2, .. }
        ));
    }

    #[test]
    fn missing_partition_key_names_the_entry_header() {
        let err = parse_net_fault_plan("\n[[partitions]]\nfrom = 1", 0, 3).unwrap_err();
        assert_eq!(
            err,
            NetFaultPlanError::MissingKey {
                line: 2,
                key: "isolated"
            }
        );
    }

    #[test]
    fn semantic_validation_still_runs() {
        // isolated = 9 is out of range for a 3-platform federation.
        let err = parse_net_fault_plan("[[partitions]]\nfrom = 0\nisolated = 9", 0, 3).unwrap_err();
        assert!(matches!(err, NetFaultPlanError::Invalid(_)));
        // drop probability over 1 fails link validation.
        let err = parse_net_fault_plan("[link]\ndrop_probability = 1.5", 0, 3).unwrap_err();
        assert!(matches!(err, NetFaultPlanError::Invalid(_)));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = parse_net_fault_plan("seed = 1\nseed = 2", 0, 3).unwrap_err();
        assert!(matches!(err, NetFaultPlanError::UnknownKey { line: 2, .. }));
        let err =
            parse_net_fault_plan("[link]\nlatency_min = 1\nlatency_min = 2", 0, 3).unwrap_err();
        assert!(matches!(err, NetFaultPlanError::UnknownKey { line: 3, .. }));
    }
}
