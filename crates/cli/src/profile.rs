//! The `profile` command: run a scale-class MSOA instance under the
//! ambient span profiler and render where the time went.
//!
//! The report is an ASCII waterfall over the stage-attributed span tree
//! ([`edge_telemetry::spans`]): per-stage total/self times with
//! percentages, the attribution line (how much top-level wall time sits
//! inside named sub-stages), the deterministic per-span counters, and
//! the profile-side engine diagnostics. Because span *structure* is
//! knob-invariant, the same command at `--pricing-threads 1` and `4` —
//! or `--shards 1` and `4` — prints the same tree shape and counters;
//! only the measured durations move.
//!
//! `--trace` writes the full two-section trace (deterministic MSOA
//! events plus flushed `span` events, then the `"section":"profile"`
//! tail); `--folded` writes flamegraph-compatible folded stacks
//! (`inferno` / `flamegraph.pl` input), weighted by self-nanoseconds or
//! — for byte-deterministic output — by call counts.

use crate::args::{ArgsError, ParsedArgs};
use crate::commands::{apply_pricing_threads, apply_shards, CliError};
use crate::faults::parse_fault_plan;
use edge_auction::msoa::{run_msoa_traced, MsoaConfig};
use edge_auction::recovery::{run_msoa_with_faults_traced, RecoveryConfig};
use edge_auction::ssam::SsamConfig;
use edge_bench::scenario::scale_instance;
use edge_common::rng::derive_rng;
use edge_telemetry::spans::{self, FoldWeight, SpanTree};
use edge_telemetry::{Collector, Trace};
use std::fmt::Write as _;
use std::fs;

/// Entry point for `edge-market profile`.
///
/// # Errors
///
/// Any [`CliError`] from flag parsing, fault-plan loading, file I/O, or
/// the auction itself.
pub fn profile(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&[
        "scale-n",
        "rounds",
        "seed",
        "faults",
        "recovery",
        "pricing-threads",
        "shards",
        "trace",
        "folded",
        "folded-weight",
    ])?;
    let n = args.get_or("scale-n", 100_000usize)?.max(1);
    let rounds = args.get_or("rounds", 3u64)?.max(1);
    let seed = args.get_or("seed", 42u64)?;
    let weight = match args.get("folded-weight").unwrap_or("ns") {
        "ns" => FoldWeight::SelfNs,
        "calls" => FoldWeight::Calls,
        other => {
            return Err(ArgsError::InvalidValue {
                flag: "folded-weight".into(),
                value: other.to_owned(),
            }
            .into())
        }
    };
    let recovery = match args.get("recovery").unwrap_or("on") {
        "on" => RecoveryConfig::default(),
        "off" => RecoveryConfig::disabled(),
        other => {
            return Err(ArgsError::InvalidValue {
                flag: "recovery".into(),
                value: other.to_owned(),
            }
            .into())
        }
    };
    let plan = match args.get("faults") {
        Some(path) => Some(parse_fault_plan(&fs::read_to_string(path)?)?),
        None => None,
    };

    // The knobs are process-wide; restore them so an in-process caller
    // (the test suite) sees no leakage.
    let saved_threads = edge_auction::pricing_threads_setting();
    let saved_shards = edge_auction::shards_setting();
    apply_pricing_threads(args)?;
    apply_shards(args)?;
    spans::install();
    let run = run_instance(args, n, rounds, seed, &recovery, plan.as_ref());
    let tree = spans::uninstall().unwrap_or_else(|| {
        // Only reachable if something re-installed mid-run; render an
        // empty report rather than crash.
        spans::install();
        spans::uninstall().expect("freshly installed tree")
    });
    edge_auction::set_pricing_threads(saved_threads);
    edge_auction::set_shards(saved_shards);
    let (summary, collector) = run?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "profiled scale instance: n={n}, rounds={rounds}, seed={seed}{}",
        if plan.is_some() { ", faulty" } else { "" }
    );
    let _ = writeln!(out, "{summary}");
    out.push('\n');
    out.push_str(&tree.render());
    out.push_str(&lane_scan_note(&tree));

    if let (Some(path), Some(collector)) = (args.get("trace"), collector) {
        tree.flush_into(&collector);
        fs::write(path, collector.to_jsonl())?;
        let _ = writeln!(
            out,
            "\ntrace: {} deterministic events ({} spans) → {path}",
            collector.len(),
            tree.len()
        );
    }
    if let Some(path) = args.get("folded") {
        fs::write(path, tree.folded(weight))?;
        let _ = writeln!(
            out,
            "folded stacks ({}) → {path}",
            match weight {
                FoldWeight::SelfNs => "self-ns weights",
                FoldWeight::Calls => "call-count weights",
            }
        );
    }
    Ok(out)
}

/// Generates and runs the instance under the root `profile` span,
/// returning a one-line outcome summary and the trace collector.
fn run_instance(
    args: &ParsedArgs,
    n: usize,
    rounds: u64,
    seed: u64,
    recovery: &RecoveryConfig,
    plan: Option<&edge_auction::recovery::FaultPlan>,
) -> Result<(String, Option<Collector>), CliError> {
    let config = MsoaConfig {
        ssam: SsamConfig::default(),
        alpha: None,
    };
    let _root = spans::enter("profile");
    let instance = {
        let _gen = spans::enter("generate");
        let mut rng = derive_rng(seed, "profile-scale");
        scale_instance(n, rounds, &mut rng)
    };
    let collector = args.get("trace").map(|_| Collector::new());
    let trace = collector
        .as_ref()
        .map_or_else(Trace::off, |c| Trace::new(c));
    let summary = {
        let _run = spans::enter("run");
        match plan {
            Some(plan) => {
                let outcome =
                    run_msoa_with_faults_traced(&instance, &config, plan, recovery, trace)?;
                format!(
                    "outcome: {} rounds, social cost {}, platform cost {}, shortfall {}u",
                    outcome.rounds.len(),
                    outcome.social_cost,
                    outcome.platform_cost,
                    outcome.shortfall_units
                )
            }
            None => {
                let outcome = run_msoa_traced(&instance, &config, trace)?;
                format!(
                    "outcome: {} rounds, social cost {}, payments {}",
                    outcome.rounds.len(),
                    outcome.social_cost,
                    outcome.total_payment
                )
            }
        }
    };
    Ok((summary, collector))
}

/// Renders the pricing-phase lane-scan cost: with the lane arena
/// engaged, every `pop_best` examines one head per lane, so the mean
/// heads-per-scan quantifies what the sharded layout costs the pricing
/// phase per argmin query.
fn lane_scan_note(tree: &SpanTree) -> String {
    let mut out = String::new();
    for view in tree.views() {
        if view.name != "selection" && view.name != "pricing" {
            continue;
        }
        let scans = view
            .counters
            .iter()
            .find(|(k, _)| *k == "pop_best_scans")
            .map_or(0, |&(_, v)| v);
        let reads = view
            .diag
            .iter()
            .find(|(k, _)| *k == "lane_head_reads")
            .map_or(0, |&(_, v)| v);
        if scans == 0 {
            continue;
        }
        if out.is_empty() {
            out.push_str("\nlane-head scan cost (arena engine)\n");
        }
        let _ = writeln!(
            out,
            "  {:<42} {} head reads / {} pop_best scans = {:.1} per scan",
            view.path,
            reads,
            scans,
            reads as f64 / scans as f64
        );
    }
    out
}
