//! `edge-market replay` — offline, byte-identical re-execution of a
//! recorded serve run.
//!
//! The event log is the source of truth: its header carries the full
//! [`ServiceConfig`], and its digest-chained records carry every
//! accepted event in order. Replaying is therefore just
//!
//! 1. parse + chain-verify the log ([`edge_auction::service::parse_log`]);
//! 2. build a fresh [`AuctionService`] over the same seeded stage
//!    provider `serve` uses ([`crate::serve::stage_provider`]);
//! 3. apply every record in sequence.
//!
//! Outcome digests, payments, and the deterministic trace section come
//! out byte-identical to the live run — at any `--pricing-threads`
//! setting — because the service is a pure function of (header,
//! events). A trailing partial record (the daemon was killed mid-write)
//! is dropped with a note; corruption anywhere else is a hard error
//! naming the exact record.

use crate::args::{ArgsError, ParsedArgs};
use crate::commands::{apply_pricing_threads, CliError};
use edge_auction::service::{parse_log, AuctionService, ServiceConfig};
use edge_telemetry::Collector;
use std::fmt::Write as _;
use std::fs;

/// Runs `replay <log.jsonl>`: parses, verifies, and re-executes the
/// log, reporting digests. See the module docs for the contract.
pub fn replay(args: &ParsedArgs) -> Result<String, CliError> {
    args.allow_only(&["log", "trace", "pricing-threads"])?;
    apply_pricing_threads(args)?;
    let path = match (args.subcommand.as_deref(), args.get("log")) {
        (Some(p), None) => p.to_owned(),
        (None, Some(p)) => p.to_owned(),
        (Some(_), Some(_)) => return Err(CliError::FlagConflict("log", "<positional log>")),
        (None, None) => {
            return Err(ArgsError::MissingFlag("log (or a positional path)").into());
        }
    };
    let text = fs::read_to_string(&path)?;
    let parsed = parse_log(&text, true)?;
    let collector = args.get("trace").map(|_| Collector::new());

    let mut svc = AuctionService::new(parsed.config, crate::serve::stage_provider(parsed.config));
    svc.apply_all(&parsed.records, collector.as_ref())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {path}: {} events verified",
        parsed.records.len()
    );
    let _ = writeln!(out, "{}", describe(&parsed.config));
    let _ = writeln!(
        out,
        "drove {} stages, {} auction rounds (seed {})",
        svc.stages_completed(),
        svc.rounds_closed(),
        parsed.config.seed
    );
    if let Some(digest) = svc.last_outcome_digest_hex() {
        let _ = writeln!(out, "last outcome digest: {digest}");
    }
    let _ = writeln!(out, "state digest: {}", svc.state_digest_hex());
    if parsed.truncated_tail {
        let _ = writeln!(
            out,
            "note: dropped a trailing partial record (mid-write crash)"
        );
    }
    if let (Some(trace_path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(trace_path, collector.to_jsonl())?;
        let _ = writeln!(out, "trace: {} events → {trace_path}", collector.len());
    }
    Ok(out)
}

/// One line summarizing the header configuration.
fn describe(config: &ServiceConfig) -> String {
    format!(
        "header: {} microservices, {} requests/round, stage_rounds {}, horizon {}",
        config.microservices,
        config.requests,
        config.stage_rounds,
        if config.total_rounds == 0 {
            "unbounded".to_owned()
        } else {
            config.total_rounds.to_string()
        }
    )
}
