//! `edge-market replay` — offline, byte-identical re-execution of a
//! recorded run.
//!
//! The event log is the source of truth. For a **serve** log the header
//! carries the full [`ServiceConfig`] and the digest-chained records
//! carry every accepted event in order; replaying is
//!
//! 1. parse + chain-verify the log ([`edge_auction::service::parse_log`]);
//! 2. build a fresh [`AuctionService`] over the same seeded stage
//!    provider `serve` uses ([`crate::serve::stage_provider`]);
//! 3. apply every record in sequence.
//!
//! A **federation** log (written by `federate --fed-log`) is detected
//! automatically ([`is_fed_log`]): its header carries the whole
//! [`FederationConfig`](edge_auction::federation::FederationConfig)
//! *and* the seeded net-fault plan, so replay rebuilds the entire
//! federation — network substrate included — re-runs it, and verifies
//! the regenerated record stream against the recorded one, reporting
//! the exact first divergent sequence number on mismatch.
//!
//! Outcome digests, payments, and deterministic trace sections come out
//! byte-identical to the live run — at any `--pricing-threads` setting
//! — because both state machines are pure functions of (header,
//! events). A trailing partial record in a serve log (the daemon was
//! killed mid-write) is dropped with a note; corruption anywhere else
//! is a hard error naming the exact record.
//!
//! Config flags (`--seed`, `--microservices`, …) are **assertions**,
//! not overrides: replay always uses the header, and a flag that
//! contradicts it is a loud [`CliError::ReplayConflict`] — catching the
//! "replayed the wrong log" mistake before anyone trusts the digests.

use crate::args::{ArgsError, ParsedArgs};
use crate::commands::{apply_pricing_threads, CliError};
use edge_auction::federation::{first_divergence, is_fed_log, parse_fed_log, FederationSim};
use edge_auction::service::{parse_log, AuctionService, ServiceConfig};
use edge_telemetry::Collector;
use std::fmt::Write as _;
use std::fs;

/// The config-assertion flags replay accepts alongside its own.
const ASSERTION_FLAGS: &[&str] = &[
    "seed",
    "microservices",
    "requests",
    "rounds",
    "stage-rounds",
    "book-cap",
    "demand-cap",
    "platforms",
];

/// Runs `replay <log.jsonl>`: parses, verifies, and re-executes the
/// log, reporting digests. See the module docs for the contract.
pub fn replay(args: &ParsedArgs) -> Result<String, CliError> {
    let mut allowed = vec!["log", "trace", "pricing-threads", "spans"];
    allowed.extend_from_slice(ASSERTION_FLAGS);
    args.allow_only(&allowed)?;
    apply_pricing_threads(args)?;
    let spans_on = crate::commands::on_off_flag(args, "spans", false)?;
    let path = match (args.subcommand.as_deref(), args.get("log")) {
        (Some(p), None) => p.to_owned(),
        (None, Some(p)) => p.to_owned(),
        (Some(_), Some(_)) => return Err(CliError::FlagConflict("log", "<positional log>")),
        (None, None) => {
            return Err(ArgsError::MissingFlag("log (or a positional path)").into());
        }
    };
    let text = fs::read_to_string(&path)?;
    if is_fed_log(&text) {
        return replay_federation(args, &path, &text);
    }
    let parsed = parse_log(&text, true)?;
    check_assertions(args, &parsed.config, None)?;
    let collector = args.get("trace").map(|_| Collector::new());

    let mut svc = AuctionService::new(parsed.config, crate::serve::stage_provider(parsed.config));
    if spans_on {
        edge_telemetry::spans::install();
    }
    let applied = svc.apply_all(&parsed.records, collector.as_ref());
    if spans_on {
        // Replay applies the exact accepted-event sequence the live run
        // logged, so this flushed tree is byte-identical to the one the
        // `serve --spans on` trace carries.
        let tree = edge_telemetry::spans::uninstall();
        if let (Some(tree), Some(collector)) = (tree, collector.as_ref()) {
            tree.flush_into(collector);
        }
    }
    applied?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {path}: {} events verified",
        parsed.records.len()
    );
    let _ = writeln!(out, "header: {}", describe(&parsed.config));
    let _ = writeln!(
        out,
        "drove {} stages, {} auction rounds (seed {})",
        svc.stages_completed(),
        svc.rounds_closed(),
        parsed.config.seed
    );
    if let Some(digest) = svc.last_outcome_digest_hex() {
        let _ = writeln!(out, "last outcome digest: {digest}");
    }
    let _ = writeln!(out, "state digest: {}", svc.state_digest_hex());
    if parsed.truncated_tail {
        let _ = writeln!(
            out,
            "note: dropped a trailing partial record (mid-write crash)"
        );
    }
    if let (Some(trace_path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(trace_path, collector.to_jsonl())?;
        let _ = writeln!(out, "trace: {} events → {trace_path}", collector.len());
    }
    Ok(out)
}

/// The federation arm: rebuild the whole federation from the log header
/// (config + net-fault plan), re-run it, and verify the regenerated
/// record stream equals the recorded one.
fn replay_federation(args: &ParsedArgs, path: &str, text: &str) -> Result<String, CliError> {
    let log = parse_fed_log(text)?;
    let node0 =
        log.header.config.nodes.first().copied().ok_or_else(|| {
            CliError::Federation("federation log header has no platforms".to_owned())
        })?;
    check_assertions(args, &node0, Some(log.header.config.nodes.len()))?;
    let spans_on = crate::commands::on_off_flag(args, "spans", false)?;
    let collector = args.get("trace").map(|_| Collector::new());

    let mut sim = FederationSim::new(
        log.header.config.clone(),
        log.header.plan.clone(),
        |_, c| crate::serve::stage_provider(c),
    )
    .map_err(|e| CliError::Federation(e.to_string()))?;
    if spans_on {
        edge_telemetry::spans::install();
    }
    let run_result = sim.run(collector.as_ref());
    if spans_on {
        let tree = edge_telemetry::spans::uninstall();
        if let (Some(tree), Some(collector)) = (tree, collector.as_ref()) {
            tree.flush_into(collector);
        }
    }
    let outcome = run_result.map_err(|e| CliError::Federation(e.to_string()))?;

    if let Some(seq) = first_divergence(&log.records, sim.records()) {
        return Err(CliError::Federation(format!(
            "replay diverged from the recorded log at seq {seq} \
             (recorded {} records, regenerated {})",
            log.records.len(),
            sim.records().len()
        )));
    }
    if log.records.len() != sim.records().len() {
        return Err(CliError::Federation(format!(
            "replay regenerated {} records but the log holds {}",
            sim.records().len(),
            log.records.len()
        )));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replayed {path}: federation log, {} records verified record-for-record",
        log.records.len()
    );
    let _ = writeln!(
        out,
        "header: {} platforms, {}",
        log.header.config.nodes.len(),
        describe(&node0)
    );
    out.push_str(&crate::federate::render_outcome(&outcome));
    if let (Some(trace_path), Some(collector)) = (args.get("trace"), collector) {
        fs::write(trace_path, collector.deterministic_jsonl())?;
        let _ = writeln!(out, "trace: {} events → {trace_path}", collector.len());
    }
    Ok(out)
}

/// Compares every explicitly passed config flag against the log header;
/// the first contradiction is a [`CliError::ReplayConflict`].
fn check_assertions(
    args: &ParsedArgs,
    config: &ServiceConfig,
    platforms: Option<usize>,
) -> Result<(), CliError> {
    let header: &[(&'static str, String)] = &[
        ("seed", config.seed.to_string()),
        ("microservices", config.microservices.to_string()),
        ("requests", config.requests.to_string()),
        ("rounds", config.total_rounds.to_string()),
        ("stage-rounds", config.stage_rounds.to_string()),
        ("book-cap", config.book_cap.to_string()),
        ("demand-cap", config.demand_cap.to_string()),
        (
            "platforms",
            platforms.map_or_else(|| "1".to_owned(), |k| k.to_string()),
        ),
    ];
    for (flag, recorded) in header {
        if let Some(raw) = args.get(flag) {
            if raw != recorded {
                return Err(CliError::ReplayConflict {
                    flag,
                    cli: raw.to_owned(),
                    header: recorded.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Summarizes the header configuration (no leading label).
fn describe(config: &ServiceConfig) -> String {
    format!(
        "{} microservices, {} requests/round, stage_rounds {}, horizon {}",
        config.microservices,
        config.requests,
        config.stage_rounds,
        if config.total_rounds == 0 {
            "unbounded".to_owned()
        } else {
            config.total_rounds.to_string()
        }
    )
}
