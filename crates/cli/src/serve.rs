//! `edge-market serve` — the event-sourced serving daemon.
//!
//! The daemon runs the paper's online setting (Alg. 2) as an
//! [`AuctionService`] state machine: seeded base workloads per stage,
//! wire-submitted bids/demand/defaults merged on top, rounds closed on
//! the daemon's cadence, and *every accepted event* appended to a
//! digest-chained JSONL event log (`--event-log`). The log is the
//! source of truth: `edge-market replay <log.jsonl>` re-executes the
//! run offline and reproduces outcome digests and deterministic trace
//! sections byte-identically.
//!
//! Endpoints on the dependency-free `std::net` HTTP server:
//!
//! * `GET /metrics`  — the process-global metric registry in Prometheus
//!   text format ([`edge_telemetry::registry`]); all families are
//!   preregistered at startup (auction, recovery, sim, pricing,
//!   service, plus the federation `edge_fed_*` and network
//!   `edge_net_*` families) so a scrape before the first event still
//!   shows every series at zero;
//! * `GET /healthz`  — `ok` while the daemon lives;
//! * `GET /status`   — JSON: stages/rounds completed, sellers alive,
//!   last-round outcome digest, scrape count;
//! * `POST /v1/bid`, `/v1/bid/withdraw`, `/v1/demand`,
//!   `/v1/round/close`, `/v1/default` — the line-delimited wire API.
//!   Bodies are single JSON objects; replies are single JSON objects
//!   (`{"ok":true,"seq":…,"digest":…}` or
//!   `{"ok":false,"error":…,"message":…}`).
//!
//! **Admission control & backpressure.** Hostile input never reaches
//! the auction: oversized bodies are refused at the socket (413), bad
//! UTF-8 and malformed JSON are 400s, unknown `/v2/…` versions are
//! 404s, and events failing the service's admission checks (unknown
//! sellers, duplicate bid ids, negative prices, book/demand caps) get
//! the structured [`ServiceError`] code with the book digest untouched.
//! Ingress is a bounded queue: when it is full the daemon answers 429
//! and drops the event — rejected events are never logged, so
//! determinism of the accepted sequence is unaffected.
//!
//! **Determinism guarantee.** The GET endpoints only *read* (registry
//! atomics, the status mutex, the shutdown flag); the POST endpoints
//! only *enqueue*. Every state transition happens on the drive thread,
//! in log order — so auction outcomes and the deterministic trace
//! section are a pure function of (header config, event sequence),
//! byte-identical live or replayed, with the server on or off, at any
//! `--pricing-threads` setting.
//!
//! Every stage derives its RNG as `derive_rng(seed + stage, "cli-serve")`
//! and runs the recovery pipeline; with no wire events the fault plan
//! is empty and stages are bit-identical to plain MSOA (PR 2's
//! invariant, preserved since).

use crate::commands::CliError;
use edge_auction::service::{AuctionService, LogWriter, ServiceConfig, ServiceError, ServiceEvent};
use edge_bench::scenario::integrated_instance;
use edge_common::rng::derive_rng;
use edge_sim::engine::SimConfig;
use edge_telemetry::registry::global;
use edge_telemetry::{Collector, Counter, Gauge};
use edge_workload::params::PaperParams;
use std::io::{Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest request body the wire API accepts, bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024;

/// Parsed `serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base RNG seed; stage `k` derives from `seed + k`.
    pub seed: u64,
    /// Microservices (sellers) per stage.
    pub microservices: usize,
    /// Target request arrivals per simulated round.
    pub requests: u64,
    /// Total auction rounds to drive before exiting (0 = run forever).
    pub total_rounds: u64,
    /// Rounds per generated stage instance.
    pub stage_rounds: u64,
    /// Pause between stages, milliseconds (ingress drains throughout).
    pub interval_ms: u64,
    /// Admission cap on standing book entries.
    pub book_cap: usize,
    /// Admission cap on pending (unclosed) demand units.
    pub demand_cap: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            microservices: 25,
            requests: 100,
            total_rounds: 0,
            stage_rounds: 5,
            interval_ms: 0,
            book_cap: 4096,
            demand_cap: 1_000_000,
        }
    }
}

impl ServeConfig {
    /// The [`ServiceConfig`] this serve run records in its log header.
    #[must_use]
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            seed: self.seed,
            microservices: self.microservices,
            requests: self.requests,
            total_rounds: self.total_rounds,
            stage_rounds: self.stage_rounds,
            book_cap: self.book_cap,
            demand_cap: self.demand_cap,
        }
    }
}

/// The seeded per-stage base-instance provider `serve` and `replay`
/// share: stage `k` over `rounds` rounds is `integrated_instance` on
/// the paper parameters, seeded `derive_rng(seed + k, "cli-serve")` —
/// a pure function of its arguments, which is what makes a log replay
/// byte-identical to the live run that wrote it.
pub fn stage_provider(
    config: ServiceConfig,
) -> impl FnMut(u64, u64) -> edge_auction::msoa::MultiRoundInstance {
    move |stage, rounds| {
        let params = PaperParams::default()
            .with_microservices(config.microservices)
            .with_rounds(rounds)
            .with_requests(config.requests);
        let mut rng = derive_rng(config.seed.wrapping_add(stage), "cli-serve");
        integrated_instance(&params, SimConfig::default(), &mut rng)
    }
}

/// Opens `path` for writing and emits the event-log header record.
///
/// # Errors
///
/// I/O failures creating or writing the file.
pub fn new_log_writer(
    path: &str,
    config: &ServiceConfig,
) -> Result<LogWriter<std::io::BufWriter<std::fs::File>>, CliError> {
    let file = std::fs::File::create(path)?;
    Ok(LogWriter::new(std::io::BufWriter::new(file), config)?)
}

/// A hook the drive loop invokes after every completed stage, with the
/// number of stages completed so far. Runs on the drive thread, so a
/// blocking hook *is* a barrier: the next stage cannot start until the
/// hook returns. Tests use this to rendezvous with concurrent scrapers
/// deterministically instead of sleeping and hoping.
pub type StageHook = Box<dyn Fn(u64) + Send>;

/// Shared daemon state the HTTP threads read and the drive loop writes.
#[derive(Default)]
pub struct ServeState {
    status: Mutex<StatusInner>,
    scrapes: Counter,
    shutdown: AtomicBool,
    stage_hook: Mutex<Option<StageHook>>,
}

impl std::fmt::Debug for ServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("status", &self.status)
            .field("scrapes", &self.scrapes)
            .field("shutdown", &self.shutdown)
            .field(
                "stage_hook",
                &self
                    .stage_hook
                    .lock()
                    .map(|h| h.is_some())
                    .unwrap_or_default(),
            )
            .finish()
    }
}

#[derive(Debug, Default, Clone)]
struct StatusInner {
    serving: bool,
    stages: u64,
    rounds: u64,
    events: u64,
    sellers_alive: usize,
    sellers_total: usize,
    last_digest: String,
}

impl ServeState {
    /// Fresh state, not yet serving.
    pub fn new() -> Self {
        ServeState::default()
    }

    /// Installs the inter-stage hook (see [`StageHook`]).
    pub fn set_stage_hook(&self, hook: impl Fn(u64) + Send + 'static) {
        *self.stage_hook.lock().expect("stage hook lock poisoned") = Some(Box::new(hook));
    }

    /// Signals the drive loop and HTTP accept loop to exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The `/status` payload: hand-built JSON from a mutex snapshot.
    pub fn status_json(&self) -> String {
        let inner = self.status.lock().expect("status lock poisoned").clone();
        format!(
            "{{\"serving\":{},\"stages\":{},\"rounds\":{},\"events\":{},\
             \"sellers_alive\":{},\"sellers_total\":{},\"last_digest\":\"{}\",\"scrapes\":{}}}",
            inner.serving,
            inner.stages,
            inner.rounds,
            inner.events,
            inner.sellers_alive,
            inner.sellers_total,
            inner.last_digest,
            self.scrapes.get()
        )
    }
}

/// Summary of a finished drive loop.
#[derive(Debug, Clone)]
pub struct DriveSummary {
    /// Stages completed.
    pub stages: u64,
    /// Auction rounds completed.
    pub rounds: u64,
    /// Events accepted (wire and daemon round-closes alike).
    pub events: u64,
    /// Digest of the final stage's outcome (hex), if any stage ran.
    pub last_digest: Option<String>,
}

/// One wire event in flight from an HTTP thread to the drive loop.
#[derive(Debug)]
pub struct IngressMsg {
    /// The parsed event.
    pub event: ServiceEvent,
    /// Where the drive loop sends the outcome.
    pub reply: SyncSender<IngressReply>,
}

/// The drive loop's answer to one ingress message.
#[derive(Debug, Clone)]
pub enum IngressReply {
    /// The event was applied (and logged when a log is attached).
    Accepted {
        /// Log sequence number (event count when no log is attached).
        seq: u64,
        /// Log record digest (service state digest when no log).
        digest: String,
    },
    /// Admission control refused the event; state untouched.
    Rejected {
        /// Stable error code ([`ServiceError::code`]).
        code: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

/// Registry handles for the wire-ingress families.
#[derive(Debug)]
struct IngressLive {
    queue_depth: Arc<Gauge>,
}

impl IngressLive {
    fn handle() -> Self {
        IngressLive {
            queue_depth: global().gauge(
                "edge_service_queue_depth",
                "Wire events waiting in the bounded ingress queue",
                &[],
            ),
        }
    }

    fn rejected(reason: &str) {
        global()
            .counter(
                "edge_service_rejected_total",
                "Wire events refused by admission control or backpressure",
                &[("reason", reason)],
            )
            .incr();
    }
}

/// Registers the ingress families (at zero) so the first scrape shows
/// them; `serve` calls this alongside the auction/recovery catalogs.
pub fn preregister_ingress() {
    let live = IngressLive::handle();
    live.queue_depth.set(0.0);
    for reason in ["backpressure", "malformed", "oversized_body", "bad_utf8"] {
        let _ = global().counter(
            "edge_service_rejected_total",
            "Wire events refused by admission control or backpressure",
            &[("reason", reason)],
        );
    }
}

/// Drives the event-sourced service until `total_rounds` rounds have
/// closed (or forever when it is 0), updating `state` after every
/// stage. Equivalent to [`drive_service`] with no ingress and no log —
/// the monitoring-only mode of old, byte-identical outcomes included.
pub fn drive(
    config: &ServeConfig,
    state: &ServeState,
    collector: Option<&Collector>,
) -> Result<DriveSummary, CliError> {
    drive_service::<std::io::Sink>(config, state, collector, None, &mut None)
}

/// Drives the event-sourced service: drains `ingress` between round
/// closes, applies every accepted event to the [`AuctionService`],
/// appends it to `log`, and replies to wire callers. The HTTP server
/// never touches service state — it only enqueues — so the accepted
/// event sequence in the log fully determines every outcome.
pub fn drive_service<W: Write>(
    config: &ServeConfig,
    state: &ServeState,
    collector: Option<&Collector>,
    ingress: Option<Receiver<IngressMsg>>,
    log: &mut Option<LogWriter<W>>,
) -> Result<DriveSummary, CliError> {
    {
        let mut inner = state.status.lock().expect("status lock poisoned");
        inner.serving = true;
        inner.sellers_total = config.microservices;
    }
    let ingress_live = IngressLive::handle();
    let mut svc = AuctionService::new(
        config.service_config(),
        stage_provider(config.service_config()),
    );
    let mut last_digest = None;

    'drive: while !state.shutting_down() {
        if config.total_rounds > 0 && svc.rounds_closed() >= config.total_rounds {
            break;
        }
        drain_ingress(&ingress, &mut svc, collector, log, &ingress_live)?;
        if state.shutting_down() {
            break;
        }

        // The daemon's own cadence: close the round. Wire clients may
        // also close rounds; either way the close is just an event.
        let applied = match svc.apply(&ServiceEvent::RoundClosed, collector) {
            Ok(applied) => applied,
            // A wire client closed the last round while we drained.
            Err(ServiceError::HorizonComplete) => break,
            Err(e) => return Err(e.into()),
        };
        if let Some(writer) = log.as_mut() {
            writer.append(&ServiceEvent::RoundClosed)?;
        }

        if let Some(stage) = applied.stage {
            last_digest = Some(stage.outcome_digest.clone());
            {
                let mut inner = state.status.lock().expect("status lock poisoned");
                inner.stages = svc.stages_completed();
                inner.rounds = svc.rounds_closed();
                inner.events = svc.events_applied();
                inner.sellers_alive = stage.sellers_alive;
                inner.last_digest = stage.outcome_digest;
            }
            {
                let hook = state.stage_hook.lock().expect("stage hook lock poisoned");
                if let Some(hook) = hook.as_ref() {
                    hook(svc.stages_completed());
                }
            }
            // Sleep between stages in short slices, draining ingress
            // throughout so wire clients never starve.
            let mut slept = 0u64;
            while slept < config.interval_ms && !state.shutting_down() {
                drain_ingress(&ingress, &mut svc, collector, log, &ingress_live)?;
                if config.total_rounds > 0 && svc.rounds_closed() >= config.total_rounds {
                    break 'drive;
                }
                std::thread::sleep(Duration::from_millis(1));
                slept += 1;
            }
        }
    }

    {
        let mut inner = state.status.lock().expect("status lock poisoned");
        inner.serving = false;
        inner.events = svc.events_applied();
    }
    Ok(DriveSummary {
        stages: svc.stages_completed(),
        rounds: svc.rounds_closed(),
        events: svc.events_applied(),
        last_digest: last_digest.or_else(|| svc.last_outcome_digest_hex()),
    })
}

/// Applies every queued ingress message, logging and replying.
fn drain_ingress<W: Write, P: FnMut(u64, u64) -> edge_auction::msoa::MultiRoundInstance>(
    ingress: &Option<Receiver<IngressMsg>>,
    svc: &mut AuctionService<P>,
    collector: Option<&Collector>,
    log: &mut Option<LogWriter<W>>,
    live: &IngressLive,
) -> Result<(), CliError> {
    let Some(rx) = ingress else { return Ok(()) };
    while let Ok(msg) = rx.try_recv() {
        live.queue_depth.add(-1.0);
        let reply = match svc.apply(&msg.event, collector) {
            Ok(_) => {
                let (seq, digest) = match log.as_mut() {
                    Some(writer) => writer.append(&msg.event)?,
                    None => (svc.events_applied(), svc.state_digest_hex()),
                };
                IngressReply::Accepted { seq, digest }
            }
            Err(ServiceError::Auction(e)) => return Err(e.into()),
            Err(e) => {
                IngressLive::rejected(e.code());
                IngressReply::Rejected {
                    code: e.code(),
                    message: e.to_string(),
                }
            }
        };
        // The HTTP thread may have timed out and gone; that's its loss.
        let _ = msg.reply.try_send(reply);
    }
    Ok(())
}

/// Starts the read-only HTTP server (no wire ingest) on
/// `127.0.0.1:port` (0 = ephemeral). Returns the bound address and the
/// accept-loop join handle; the loop exits once
/// [`ServeState::request_shutdown`] is called.
pub fn start_http(
    state: Arc<ServeState>,
    port: u16,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    start_http_with_ingest(state, port, None)
}

/// Starts the HTTP server with an optional bounded ingress sender for
/// the `POST /v1/*` wire API. Without one, POSTs answer 503.
pub fn start_http_with_ingest(
    state: Arc<ServeState>,
    port: u16,
    ingest: Option<SyncSender<IngressMsg>>,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::spawn(move || {
        while !state.shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => handle_connection(stream, &state, ingest.as_ref()),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Ok((addr, handle))
}

/// Serves one request. GETs are read-only against the daemon state;
/// POSTs enqueue onto the bounded ingress queue and wait for the drive
/// loop's verdict. Any I/O error just drops the connection.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServeState,
    ingest: Option<&SyncSender<IngressMsg>>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let mut head_end = None;
    // Read until the end of the request head.
    while head_end.is_none() && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                head_end = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
            }
            Err(_) => return,
        }
    }
    let Some(head_end) = head_end else { return };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_owned();
    let path = parts.next().unwrap_or("/").to_owned();

    let (status, content_type, body) = match (method.as_str(), path.as_str()) {
        ("GET", "/metrics") => {
            state.scrapes.incr();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                global().render(),
            )
        }
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        ("GET", "/status") => {
            state.scrapes.incr();
            (
                "200 OK",
                "application/json; charset=utf-8",
                state.status_json(),
            )
        }
        ("POST", p) if p.starts_with("/v1/") => {
            let (status, body) = handle_post(&mut stream, &head, head_end, &buf, p, ingest);
            (status, "application/json; charset=utf-8", body)
        }
        ("POST", p) if p.starts_with("/v") => (
            "404 Not Found",
            "application/json; charset=utf-8",
            reject_json("unsupported_version", &format!("no API version at {p}")),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no route for {path}\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// A `{"ok":false,…}` rejection body. The message is JSON-escaped the
/// cheap way: codes and admission errors never contain quotes.
fn reject_json(code: &str, message: &str) -> String {
    let clean: String = message
        .chars()
        .map(|c| {
            if c == '"' || c == '\\' || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect();
    format!("{{\"ok\":false,\"error\":\"{code}\",\"message\":\"{clean}\"}}")
}

/// Reads the body and runs one wire event through ingress. Returns
/// `(HTTP status, JSON body)`.
fn handle_post(
    stream: &mut TcpStream,
    head: &str,
    head_end: usize,
    buf: &[u8],
    path: &str,
    ingest: Option<&SyncSender<IngressMsg>>,
) -> (&'static str, String) {
    let Some(ingest) = ingest else {
        return (
            "503 Service Unavailable",
            reject_json("ingest_disabled", "this daemon does not accept wire events"),
        );
    };
    let content_length = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        IngressLive::rejected("oversized_body");
        return (
            "413 Payload Too Large",
            reject_json(
                "oversized_body",
                &format!("{content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
            ),
        );
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    body.truncate(content_length);
    let Ok(text) = String::from_utf8(body) else {
        IngressLive::rejected("bad_utf8");
        return (
            "400 Bad Request",
            reject_json("bad_utf8", "request body is not valid UTF-8"),
        );
    };
    let event = match parse_wire_event(path, &text) {
        Ok(event) => event,
        Err(detail) => {
            IngressLive::rejected("malformed");
            return ("400 Bad Request", reject_json("malformed", detail));
        }
    };

    let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
    let msg = IngressMsg {
        event,
        reply: reply_tx,
    };
    match ingest.try_send(msg) {
        Ok(()) => IngressLive::handle().queue_depth.add(1.0),
        Err(TrySendError::Full(_)) => {
            IngressLive::rejected("backpressure");
            return (
                "429 Too Many Requests",
                reject_json("backpressure", "the ingress queue is full; retry later"),
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            return (
                "503 Service Unavailable",
                reject_json("shutting_down", "the drive loop has exited"),
            );
        }
    }
    match reply_rx.recv_timeout(Duration::from_secs(10)) {
        Ok(IngressReply::Accepted { seq, digest }) => (
            "200 OK",
            format!("{{\"ok\":true,\"seq\":{seq},\"digest\":\"{digest}\"}}"),
        ),
        Ok(IngressReply::Rejected { code, message }) => {
            ("400 Bad Request", reject_json(code, &message))
        }
        Err(_) => (
            "503 Service Unavailable",
            reject_json("shutting_down", "the drive loop did not answer"),
        ),
    }
}

/// Parses a `POST /v1/*` body into its [`ServiceEvent`].
///
/// # Errors
///
/// A static description of what is malformed or unroutable.
pub fn parse_wire_event(path: &str, body: &str) -> Result<ServiceEvent, &'static str> {
    let trimmed = body.trim();
    let value: serde::Value = if trimmed.is_empty() {
        serde::Value::Object(Vec::new())
    } else {
        serde_json::from_str(trimmed).map_err(|_| "body is not a JSON object")?
    };
    if !matches!(value, serde::Value::Object(_)) {
        return Err("body is not a JSON object");
    }
    let u64_field = |name: &str| -> Result<u64, &'static str> {
        match value.get(name) {
            Some(serde::Value::U64(u)) => Ok(*u),
            _ => Err("missing or non-integer field"),
        }
    };
    let f64_field = |name: &str| -> Result<f64, &'static str> {
        value
            .get(name)
            .and_then(serde::Value::as_f64)
            .ok_or("missing or non-numeric field")
    };
    match path {
        "/v1/bid" => Ok(ServiceEvent::BidSubmitted {
            seller: usize::try_from(u64_field("seller")?).map_err(|_| "seller out of range")?,
            bid: u64_field("bid")?,
            amount: u64_field("amount")?,
            price: f64_field("price")?,
        }),
        "/v1/bid/withdraw" => Ok(ServiceEvent::BidWithdrawn {
            seller: usize::try_from(u64_field("seller")?).map_err(|_| "seller out of range")?,
            bid: u64_field("bid")?,
        }),
        "/v1/demand" => Ok(ServiceEvent::DemandReported {
            units: u64_field("units")?,
        }),
        "/v1/round/close" => Ok(ServiceEvent::RoundClosed),
        "/v1/default" => Ok(ServiceEvent::SellerDefaulted {
            seller: usize::try_from(u64_field("seller")?).map_err(|_| "seller out of range")?,
            delivered_fraction: f64_field("delivered_fraction")?,
        }),
        _ => Err("no such endpoint"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_auction::service::fnv1a64;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn drive_reaches_the_round_target_and_digests() {
        let state = ServeState::new();
        let config = ServeConfig {
            total_rounds: 4,
            stage_rounds: 3,
            microservices: 8,
            ..ServeConfig::default()
        };
        let summary = drive(&config, &state, None).unwrap();
        assert_eq!(summary.rounds, 4, "3-round stage then 1-round stage");
        assert_eq!(summary.stages, 2);
        let digest = summary.last_digest.unwrap();
        assert_eq!(digest.len(), 16);
        let status = state.status_json();
        assert!(status.contains("\"rounds\":4"), "{status}");
        assert!(status.contains(&digest), "{status}");
        assert!(status.contains("\"serving\":false"), "{status}");
    }

    #[test]
    fn drive_is_deterministic_across_runs() {
        let config = ServeConfig {
            total_rounds: 3,
            stage_rounds: 3,
            microservices: 6,
            ..ServeConfig::default()
        };
        let a = drive(&config, &ServeState::new(), None).unwrap();
        let b = drive(&config, &ServeState::new(), None).unwrap();
        assert_eq!(a.last_digest, b.last_digest);
    }

    #[test]
    fn drive_matches_the_legacy_seeded_stage_loop() {
        // The event-sourced drive with no wire events must reproduce
        // the pre-service seeded loop bit for bit: provider instance,
        // empty fault plan, pinned α, same digest formula.
        let config = ServeConfig {
            total_rounds: 4,
            stage_rounds: 3,
            microservices: 8,
            ..ServeConfig::default()
        };
        let summary = drive(&config, &ServeState::new(), None).unwrap();

        use edge_auction::msoa::MsoaConfig;
        use edge_auction::recovery::{run_msoa_with_faults_traced, FaultPlan, RecoveryConfig};
        let mut provider = stage_provider(config.service_config());
        let mut last = None;
        let mut rounds_done = 0u64;
        let mut stage = 0u64;
        while rounds_done < config.total_rounds {
            let rounds = config.stage_rounds.min(config.total_rounds - rounds_done);
            let instance = provider(stage, rounds);
            let outcome = run_msoa_with_faults_traced(
                &instance,
                &MsoaConfig::pinned(2.0),
                &FaultPlan::empty(),
                &RecoveryConfig::default(),
                edge_telemetry::Trace::off(),
            )
            .unwrap();
            let serialized = serde_json::to_string(&outcome).unwrap();
            last = Some(format!("{:016x}", fnv1a64(serialized.as_bytes())));
            rounds_done += rounds;
            stage += 1;
        }
        assert_eq!(summary.last_digest, last);
    }

    #[test]
    fn http_routes_respond_and_shutdown_joins() {
        let state = Arc::new(ServeState::new());
        let (addr, handle) = start_http(Arc::clone(&state), 0).unwrap();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        edge_telemetry::registry::validate_exposition(&body).expect("scrape validates");

        let (head, body) = get(addr, "/status");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with('{') && body.ends_with('}'), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Scrape counter: /metrics + /status counted, /healthz not.
        assert_eq!(state.scrapes.get(), 2);

        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn posts_without_ingest_answer_503() {
        let state = Arc::new(ServeState::new());
        let (addr, handle) = start_http(Arc::clone(&state), 0).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "{\"units\":3}";
        stream
            .write_all(
                format!(
                    "POST /v1/demand HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 503"), "{response}");
        assert!(response.contains("ingest_disabled"), "{response}");
        state.request_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn wire_event_parsing_covers_every_endpoint() {
        assert_eq!(
            parse_wire_event(
                "/v1/bid",
                "{\"seller\":2,\"bid\":1,\"amount\":3,\"price\":9.5}"
            ),
            Ok(ServiceEvent::BidSubmitted {
                seller: 2,
                bid: 1,
                amount: 3,
                price: 9.5
            })
        );
        assert_eq!(
            parse_wire_event("/v1/bid/withdraw", "{\"seller\":2,\"bid\":1}"),
            Ok(ServiceEvent::BidWithdrawn { seller: 2, bid: 1 })
        );
        assert_eq!(
            parse_wire_event("/v1/demand", "{\"units\":4}"),
            Ok(ServiceEvent::DemandReported { units: 4 })
        );
        assert_eq!(
            parse_wire_event("/v1/round/close", ""),
            Ok(ServiceEvent::RoundClosed)
        );
        assert_eq!(
            parse_wire_event("/v1/default", "{\"seller\":0,\"delivered_fraction\":0.25}"),
            Ok(ServiceEvent::SellerDefaulted {
                seller: 0,
                delivered_fraction: 0.25
            })
        );
        assert!(parse_wire_event("/v1/bid", "{\"seller\":2}").is_err());
        assert!(parse_wire_event("/v1/bid", "[1,2]").is_err());
        assert!(parse_wire_event("/v1/nope", "{}").is_err());
    }
}
