//! `edge-market serve` — a long-running monitoring daemon.
//!
//! The daemon drives seeded MSOA stages over a workload-generated
//! arrival stream (the paper's online setting, Alg. 2) and exposes
//! operational state over a dependency-free `std::net` HTTP server:
//!
//! * `/metrics`  — the process-global metric registry in Prometheus
//!   text format ([`edge_telemetry::registry`]);
//! * `/healthz`  — `ok` while the daemon lives;
//! * `/status`   — JSON: stages/rounds completed, sellers alive,
//!   last-round outcome digest, scrape count.
//!
//! **Determinism guarantee.** The HTTP threads only *read*: registry
//! atomics, the status mutex snapshot, and the shutdown flag. They
//! never touch auction state, RNGs, or the trace collector, so auction
//! outcomes and the deterministic trace section are byte-identical
//! with the server on or off — `tests/serve_determinism.rs` asserts
//! exactly that, mid-run scrapes included.
//!
//! Every stage derives its RNG as `derive_rng(seed + stage, "cli-serve")`
//! and runs the recovery pipeline on an empty fault plan (bit-identical
//! to plain MSOA, PR 2), so recovery metric families are live too.

use crate::commands::CliError;
use edge_auction::msoa::MsoaConfig;
use edge_auction::recovery::{run_msoa_with_faults_traced, FaultPlan, RecoveryConfig};
use edge_bench::scenario::integrated_instance;
use edge_common::rng::derive_rng;
use edge_sim::engine::SimConfig;
use edge_telemetry::{Collector, Counter, Scoped, Trace, Value};
use edge_workload::params::PaperParams;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Parsed `serve` configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Base RNG seed; stage `k` derives from `seed + k`.
    pub seed: u64,
    /// Microservices (sellers) per stage.
    pub microservices: usize,
    /// Target request arrivals per simulated round.
    pub requests: u64,
    /// Total auction rounds to drive before exiting (0 = run forever).
    pub total_rounds: u64,
    /// Rounds per generated stage instance.
    pub stage_rounds: u64,
    /// Pause between stages, milliseconds.
    pub interval_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 42,
            microservices: 25,
            requests: 100,
            total_rounds: 0,
            stage_rounds: 5,
            interval_ms: 0,
        }
    }
}

/// Shared daemon state the HTTP threads read and the drive loop writes.
#[derive(Debug, Default)]
pub struct ServeState {
    status: Mutex<StatusInner>,
    scrapes: Counter,
    shutdown: AtomicBool,
}

#[derive(Debug, Default, Clone)]
struct StatusInner {
    serving: bool,
    stages: u64,
    rounds: u64,
    sellers_alive: usize,
    sellers_total: usize,
    last_digest: String,
}

impl ServeState {
    /// Fresh state, not yet serving.
    pub fn new() -> Self {
        ServeState::default()
    }

    /// Signals the drive loop and HTTP accept loop to exit.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// The `/status` payload: hand-built JSON from a mutex snapshot.
    pub fn status_json(&self) -> String {
        let inner = self.status.lock().expect("status lock poisoned").clone();
        format!(
            "{{\"serving\":{},\"stages\":{},\"rounds\":{},\"sellers_alive\":{},\
             \"sellers_total\":{},\"last_digest\":\"{}\",\"scrapes\":{}}}",
            inner.serving,
            inner.stages,
            inner.rounds,
            inner.sellers_alive,
            inner.sellers_total,
            inner.last_digest,
            self.scrapes.get()
        )
    }
}

/// FNV-1a 64 over a byte string — same fingerprint the scale benchmark
/// uses for outcome digests.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Summary of a finished drive loop.
#[derive(Debug, Clone)]
pub struct DriveSummary {
    /// Stages completed.
    pub stages: u64,
    /// Auction rounds completed.
    pub rounds: u64,
    /// Digest of the final stage's outcome (hex), if any stage ran.
    pub last_digest: Option<String>,
}

/// Drives seeded MSOA stages until `total_rounds` is reached (or
/// forever when it is 0), updating `state` after every stage. The HTTP
/// server never calls this — it only reads `state` — so the loop is
/// exactly as deterministic as a plain MSOA run.
pub fn drive(
    config: &ServeConfig,
    state: &ServeState,
    collector: Option<&Collector>,
) -> Result<DriveSummary, CliError> {
    {
        let mut inner = state.status.lock().expect("status lock poisoned");
        inner.serving = true;
        inner.sellers_total = config.microservices;
    }
    let msoa_config = MsoaConfig::pinned(2.0);
    let plan = FaultPlan::empty();
    let recovery = RecoveryConfig::default();
    let mut stages = 0u64;
    let mut rounds_done = 0u64;
    let mut last_digest = None;

    while !state.shutting_down() {
        if config.total_rounds > 0 && rounds_done >= config.total_rounds {
            break;
        }
        let stage_rounds = if config.total_rounds == 0 {
            config.stage_rounds
        } else {
            config.stage_rounds.min(config.total_rounds - rounds_done)
        };
        let params = PaperParams::default()
            .with_microservices(config.microservices)
            .with_rounds(stage_rounds)
            .with_requests(config.requests);
        let mut rng = derive_rng(config.seed.wrapping_add(stages), "cli-serve");
        let instance = integrated_instance(&params, SimConfig::default(), &mut rng);

        // Each stage's events are stamped with the stage index so a
        // multi-stage trace stays explainable round by round.
        let scoped = collector.map(|c| Scoped::new(c, vec![("stage", Value::from(stages))]));
        let trace = match &scoped {
            Some(s) => Trace::new(s),
            None => Trace::off(),
        };
        let outcome =
            run_msoa_with_faults_traced(&instance, &msoa_config, &plan, &recovery, trace)?;

        let serialized = serde_json::to_string(&outcome)?;
        let digest = format!("{:016x}", fnv1a64(serialized.as_bytes()));
        let sellers_alive = instance
            .sellers()
            .iter()
            .zip(&outcome.chi)
            .filter(|(s, &chi)| chi < s.capacity)
            .count();
        stages += 1;
        rounds_done += outcome.rounds.len() as u64;
        last_digest = Some(digest.clone());
        {
            let mut inner = state.status.lock().expect("status lock poisoned");
            inner.stages = stages;
            inner.rounds = rounds_done;
            inner.sellers_alive = sellers_alive;
            inner.last_digest = digest;
        }
        if config.interval_ms > 0 && !state.shutting_down() {
            std::thread::sleep(Duration::from_millis(config.interval_ms));
        }
    }

    {
        let mut inner = state.status.lock().expect("status lock poisoned");
        inner.serving = false;
    }
    Ok(DriveSummary {
        stages,
        rounds: rounds_done,
        last_digest,
    })
}

/// Starts the HTTP server on `127.0.0.1:port` (0 = ephemeral). Returns
/// the bound address and the accept-loop join handle; the loop exits
/// once [`ServeState::request_shutdown`] is called.
pub fn start_http(
    state: Arc<ServeState>,
    port: u16,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::spawn(move || {
        while !state.shutting_down() {
            match listener.accept() {
                Ok((stream, _)) => handle_connection(stream, &state),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    Ok((addr, handle))
}

/// Serves one request. Read-only against the daemon state; any I/O
/// error just drops the connection.
fn handle_connection(mut stream: TcpStream, state: &ServeState) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    // Read until the end of the request head (tiny GETs only).
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => {
            state.scrapes.incr();
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                edge_telemetry::registry::global().render(),
            )
        }
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned()),
        "/status" => {
            state.scrapes.incr();
            (
                "200 OK",
                "application/json; charset=utf-8",
                state.status_json(),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no route for {path}\n"),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn drive_reaches_the_round_target_and_digests() {
        let state = ServeState::new();
        let config = ServeConfig {
            total_rounds: 4,
            stage_rounds: 3,
            microservices: 8,
            ..ServeConfig::default()
        };
        let summary = drive(&config, &state, None).unwrap();
        assert_eq!(summary.rounds, 4, "3-round stage then 1-round stage");
        assert_eq!(summary.stages, 2);
        let digest = summary.last_digest.unwrap();
        assert_eq!(digest.len(), 16);
        let status = state.status_json();
        assert!(status.contains("\"rounds\":4"), "{status}");
        assert!(status.contains(&digest), "{status}");
        assert!(status.contains("\"serving\":false"), "{status}");
    }

    #[test]
    fn drive_is_deterministic_across_runs() {
        let config = ServeConfig {
            total_rounds: 3,
            stage_rounds: 3,
            microservices: 6,
            ..ServeConfig::default()
        };
        let a = drive(&config, &ServeState::new(), None).unwrap();
        let b = drive(&config, &ServeState::new(), None).unwrap();
        assert_eq!(a.last_digest, b.last_digest);
    }

    #[test]
    fn http_routes_respond_and_shutdown_joins() {
        let state = Arc::new(ServeState::new());
        let (addr, handle) = start_http(Arc::clone(&state), 0).unwrap();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        edge_telemetry::registry::validate_exposition(&body).expect("scrape validates");

        let (head, body) = get(addr, "/status");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with('{') && body.ends_with('}'), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Scrape counter: /metrics + /status counted, /healthz not.
        assert_eq!(state.scrapes.get(), 2);

        state.request_shutdown();
        handle.join().unwrap();
    }
}
