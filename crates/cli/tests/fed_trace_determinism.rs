//! Federation observability, end to end through the CLI:
//!
//! 1. `federate --trace` writes a deterministic trace that is
//!    byte-identical at 1 and 4 pricing threads and byte-identical to
//!    the trace `replay` re-derives from the fed log — under an ideal
//!    network AND under an aggressive seeded fault plan (drops,
//!    duplicates, reorders, a partition window);
//! 2. `explain --deal` / `--deals` reconstruct deal timelines from a
//!    fed log and from a trace — with identical output, since the trace
//!    carries `fed_seq` provenance into the log — and re-derive every
//!    committed deal's fill units and resale revenue against the
//!    recorded node counters (`deals verified: N/N`);
//! 3. an aborted deal's timeline names the message the network ate (or
//!    the deadline that expired) — the whole point of causal tracing;
//! 4. `explain` on a fed log without `--deal`/`--deals` is a guided
//!    error, not a silent empty answer.

use edge_auction::bid::{Bid, Seller};
use edge_auction::federation::{
    render_fed_log, FedEvent, FederationConfig, FederationOutcome, FederationSim,
};
use edge_auction::msoa::{MultiRoundInstance, RoundInput};
use edge_auction::service::ServiceConfig;
use edge_common::fnv1a64;
use edge_common::id::{BidId, MicroserviceId};
use edge_market_cli::args::ParsedArgs;
use edge_market_cli::commands::run;
use edge_net::{NetFaultPlan, PartitionWindow};
use edge_telemetry::Collector;
use std::path::PathBuf;

fn parsed(args: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(args.iter().map(|s| (*s).to_owned())).expect("args parse")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edge-fed-obs-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// The aggressive-but-seeded plan from the federation determinism test:
/// lossy, laggy, duplicating, reordering links plus a partition window
/// isolating platform 1 mid-run.
const PLAN: &str = "\
seed = 11

[link]
latency_min = 1
latency_max = 4
drop_probability = 0.25
duplicate_probability = 0.10
reorder_probability = 0.20
reorder_max_extra = 2

[[partitions]]
from = 3
until = 9
isolated = 1
";

// ---------------------------------------------------------------------
// 1. Trace determinism through the CLI.
// ---------------------------------------------------------------------

/// Runs `federate` with a trace + fed log at the given thread count and
/// returns (rendered output, trace bytes, fed log bytes).
fn federate_traced(
    dir: &std::path::Path,
    plan: Option<&str>,
    threads: &str,
) -> (String, String, String) {
    let log = dir.join(format!("fed-{threads}.jsonl"));
    let trace = dir.join(format!("trace-{threads}.jsonl"));
    let mut args = vec![
        "federate".to_owned(),
        "--platforms".to_owned(),
        "3".to_owned(),
        "--seed".to_owned(),
        "11".to_owned(),
        "--microservices".to_owned(),
        "6".to_owned(),
        "--requests".to_owned(),
        "30".to_owned(),
        "--rounds".to_owned(),
        "6".to_owned(),
        "--stage-rounds".to_owned(),
        "2".to_owned(),
        "--fed-log".to_owned(),
        log.to_str().unwrap().to_owned(),
        "--trace".to_owned(),
        trace.to_str().unwrap().to_owned(),
        "--pricing-threads".to_owned(),
        threads.to_owned(),
    ];
    if let Some(plan_path) = plan {
        args.push("--net-faults".to_owned());
        args.push(plan_path.to_owned());
    }
    let out = run(ParsedArgs::parse(args).expect("args")).expect("federate");
    let trace_text = std::fs::read_to_string(&trace).expect("trace written");
    let log_text = std::fs::read_to_string(&log).expect("fed log written");
    (out, trace_text, log_text)
}

fn assert_trace_deterministic(dir: &std::path::Path, plan: Option<&str>, tag: &str) {
    let (out_1, trace_1, log_1) = federate_traced(dir, plan, "1");
    let (out_4, trace_4, log_4) = federate_traced(dir, plan, "4");
    edge_auction::set_pricing_threads(1);
    // The rendered summaries embed the per-thread output paths; every
    // other line must agree.
    let pathless = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| !l.contains('→'))
            .map(ToOwned::to_owned)
            .collect()
    };
    assert_eq!(
        pathless(&out_1),
        pathless(&out_4),
        "[{tag}] federate output diverged across threads"
    );
    assert_eq!(trace_1, trace_4, "[{tag}] trace diverged across threads");
    assert_eq!(log_1, log_4, "[{tag}] fed log diverged across threads");

    // Replay the fed log with its own trace: the deterministic section
    // must reproduce the live trace byte for byte.
    let log_path = dir.join("fed-1.jsonl");
    let replay_trace = dir.join(format!("replay-trace-{tag}.jsonl"));
    let replay_out = run(parsed(&[
        "replay",
        log_path.to_str().unwrap(),
        "--trace",
        replay_trace.to_str().unwrap(),
        "--pricing-threads",
        "4",
    ]))
    .expect("replay");
    edge_auction::set_pricing_threads(1);
    assert!(replay_out.contains("record-for-record"), "{replay_out}");
    let replayed = std::fs::read_to_string(&replay_trace).expect("replay trace written");
    assert_eq!(
        trace_1, replayed,
        "[{tag}] replay trace diverged from the live trace"
    );
}

#[test]
fn fed_trace_is_byte_identical_across_threads_and_replay() {
    let dir = temp_dir("trace");
    let plan_path = dir.join("plan.toml");
    std::fs::write(&plan_path, PLAN).expect("write plan");

    assert_trace_deterministic(&dir, None, "ideal");
    assert_trace_deterministic(&dir, Some(plan_path.to_str().unwrap()), "faulty");

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// 2.–4. Deal reconstruction. The serve-loop stage provider clamps
// demand to sellable supply, so `federate` alone never opens a deal;
// these tests drive the federation through the library with a provider
// whose demand can outrun supply (the same trigger the core tests use),
// then point the `explain` CLI at the files it wrote.
// ---------------------------------------------------------------------

/// Deterministic hash-driven value in `1..=bound` (no RNG state, so the
/// provider is a pure function of its arguments).
fn mix(seed: u64, stage: u64, round: u64, tag: &str, bound: u64) -> u64 {
    1 + fnv1a64(format!("{seed}:{stage}:{round}:{tag}").as_bytes()) % bound.max(1)
}

/// A provider with tight capacity: demand can reach `requests` units a
/// round against at most ~3 units per seller, so stages end short and
/// the nodes re-sell across platforms.
fn tight_provider(config: ServiceConfig) -> impl FnMut(u64, u64) -> MultiRoundInstance {
    move |stage, rounds| {
        let n = config.microservices.max(1);
        let rounds = rounds.max(1);
        let sellers: Vec<Seller> = (0..n)
            .map(|s| Seller::new(MicroserviceId::new(s), 8, (0, rounds - 1)).expect("window"))
            .collect();
        let inputs: Vec<RoundInput> = (0..rounds)
            .map(|r| {
                let bids: Vec<Bid> = (0..n)
                    .map(|s| {
                        let amount = mix(config.seed, stage, r, &format!("amt{s}"), 3);
                        let price =
                            5.0 + mix(config.seed, stage, r, &format!("px{s}"), 150) as f64 / 10.0;
                        Bid::new(MicroserviceId::new(s), BidId::new(0), amount, price)
                            .expect("valid bid")
                    })
                    .collect();
                let demand = mix(config.seed, stage, r, "demand", config.requests);
                RoundInput::new(demand, demand, bids)
            })
            .collect();
        MultiRoundInstance::new(sellers, inputs).expect("valid instance")
    }
}

fn tight_config(seed: u64, platforms: usize) -> FederationConfig {
    let base = ServiceConfig {
        seed,
        microservices: 4,
        requests: 18,
        total_rounds: 8,
        stage_rounds: 2,
        book_cap: 256,
        demand_cap: 10_000,
    };
    FederationConfig::uniform(base, platforms)
}

/// Runs a library federation and writes its fed log and trace into
/// `dir`, returning the outcome and its records.
fn run_federation(
    dir: &std::path::Path,
    config: FederationConfig,
    plan: NetFaultPlan,
    tag: &str,
) -> (FederationOutcome, Vec<FedEvent>, PathBuf, PathBuf) {
    let collector = Collector::new();
    let mut sim =
        FederationSim::new(config, plan, |_, c| tight_provider(c)).expect("federation sim");
    let outcome = sim.run(Some(&collector)).expect("federation run");
    let log_path = dir.join(format!("fed-{tag}.jsonl"));
    let trace_path = dir.join(format!("trace-{tag}.jsonl"));
    std::fs::write(&log_path, render_fed_log(&sim.header(), sim.records())).expect("write log");
    std::fs::write(&trace_path, collector.deterministic_jsonl()).expect("write trace");
    let events = sim.records().iter().map(|r| r.event.clone()).collect();
    (outcome, events, log_path, trace_path)
}

/// The `deals verified: N/N` tally line, parsed as `(verified, total)`.
fn verified_tally(output: &str) -> (u64, u64) {
    let line = output
        .lines()
        .find(|l| l.starts_with("deals verified: "))
        .unwrap_or_else(|| panic!("no tally line in:\n{output}"));
    let (v, t) = line["deals verified: ".len()..]
        .split_once('/')
        .expect("tally shape");
    (v.parse().expect("verified"), t.parse().expect("total"))
}

#[test]
fn explain_reverifies_every_committed_deal_from_log_and_trace() {
    let dir = temp_dir("explain");
    let (outcome, events, log_path, trace_path) =
        run_federation(&dir, tight_config(9, 3), NetFaultPlan::ideal(1), "ideal");

    let applied: u64 = outcome.nodes.iter().map(|n| n.counters.deals_applied).sum();
    assert!(applied > 0, "config must commit deals: {outcome:?}");

    // The all-deals table re-derives and verifies every committed deal.
    let deals_out = run(parsed(&[
        "explain",
        "--trace",
        log_path.to_str().unwrap(),
        "--deals",
    ]))
    .expect("explain --deals");
    let (verified, total) = verified_tally(&deals_out);
    assert_eq!(
        total, applied,
        "every applied deal is audited:\n{deals_out}"
    );
    assert_eq!(verified, total, "all deals must verify:\n{deals_out}");

    // One committed deal's timeline, from the log and from the trace:
    // identical output, because the trace carries fed_seq provenance.
    let deal = events
        .iter()
        .find_map(|e| match e {
            FedEvent::DealApplied { deal, .. } => Some(deal.to_string()),
            _ => None,
        })
        .expect("an applied deal exists");
    let from_log = run(parsed(&[
        "explain",
        "--trace",
        log_path.to_str().unwrap(),
        "--deal",
        &deal,
    ]))
    .expect("explain --deal on fed log");
    let from_trace = run(parsed(&[
        "explain",
        "--trace",
        trace_path.to_str().unwrap(),
        "--deal",
        &deal,
    ]))
    .expect("explain --deal on trace");
    assert_eq!(
        from_log, from_trace,
        "fed-log and trace reconstructions must agree"
    );
    assert!(from_log.contains(&format!("deal {deal}")), "{from_log}");
    assert!(from_log.contains("Offer sent"), "{from_log}");
    assert!(from_log.contains("re-derived:"), "{from_log}");
    assert!(
        from_log.contains("✓ matches recorded counters"),
        "{from_log}"
    );

    // Unknown deal ids list what the input does cover.
    let err = run(parsed(&[
        "explain",
        "--trace",
        log_path.to_str().unwrap(),
        "--deal",
        "platform#7/99",
    ]))
    .expect_err("unknown deal errors");
    let message = err.to_string();
    assert!(
        message.contains("no events for deal platform#7/99"),
        "{message}"
    );
    assert!(message.contains(&deal), "lists known deals: {message}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn aborted_deal_timeline_names_the_fatal_message() {
    // Harsh network, no retries: one lost message kills a deal.
    let mut config = tight_config(9, 3);
    config.retries_enabled = false;
    let mut plan = NetFaultPlan::ideal(11);
    plan.link.drop_probability = 0.45;
    plan.link.latency_max = 3;
    plan.partitions.push(PartitionWindow {
        from: 3,
        until: 9,
        isolated: 1,
    });

    let dir = temp_dir("abort");
    let (outcome, events, log_path, _) = run_federation(&dir, config, plan, "harsh");
    let aborted = events
        .iter()
        .find_map(|e| match e {
            FedEvent::DealAborted { deal, .. } => Some(deal.to_string()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("harsh plan must abort a deal: {outcome:?}"));

    let out = run(parsed(&[
        "explain",
        "--trace",
        log_path.to_str().unwrap(),
        "--deal",
        &aborted,
    ]))
    .expect("explain aborted deal");
    assert!(out.contains("aborted"), "{out}");
    assert!(
        out.contains("DROPPED in flight") || out.contains("deadline expired"),
        "timeline must name the message the network ate or the deadline \
         that fired:\n{out}"
    );
    // The audit still balances: an aborted deal applied nothing, and
    // every deal that DID commit verifies.
    let (verified, total) = verified_tally(&out);
    assert_eq!(verified, total, "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_on_a_fed_log_without_deal_flags_is_a_guided_error() {
    let dir = temp_dir("guide");
    let (_, _, log_path, _) =
        run_federation(&dir, tight_config(9, 2), NetFaultPlan::ideal(1), "guide");
    let log = log_path.to_str().unwrap();

    for args in [
        vec!["explain", "--trace", log],
        vec!["explain", "--trace", log, "--round", "1"],
        vec!["explain", "--trace", log, "--summary"],
    ] {
        let err = run(parsed(&args)).expect_err("fed log needs --deal/--deals");
        let message = err.to_string();
        assert!(message.contains("--deal"), "{message}");
        assert!(message.contains("replay"), "{message}");
    }

    // And a plain auction trace still refuses deal flags with a clear
    // message instead of an empty table.
    let plain = dir.join("plain.jsonl");
    std::fs::write(
        &plain,
        "{\"seq\":0,\"level\":\"info\",\"span\":\"\",\"event\":\"x\",\"fields\":{}}\n",
    )
    .expect("write plain trace");
    let err = run(parsed(&[
        "explain",
        "--trace",
        plain.to_str().unwrap(),
        "--deals",
    ]))
    .expect_err("no fed events");
    assert!(err.to_string().contains("no fed.* events"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
