//! Federation determinism, end to end through the CLI:
//!
//! 1. `federate` under an aggressive seeded net-fault plan produces
//!    byte-identical output at 1 and 4 pricing threads, and `replay` of
//!    its fed log reproduces every digest record-for-record at both
//!    thread counts;
//! 2. a single-platform federation over an ideal network is
//!    bit-identical to the plain `serve` drive loop (PR 6 semantics);
//! 3. config flags on `replay` are assertions: a contradicting flag is
//!    a loud error, a matching one passes.

use edge_auction::federation::{FederationConfig, FederationSim};
use edge_market_cli::args::ParsedArgs;
use edge_market_cli::commands::run;
use edge_market_cli::serve::{drive, stage_provider, ServeConfig, ServeState};
use edge_net::NetFaultPlan;
use std::path::PathBuf;

fn parsed(args: &[&str]) -> ParsedArgs {
    ParsedArgs::parse(args.iter().map(|s| (*s).to_owned())).expect("args parse")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edge-fed-det-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// An aggressive but seeded plan: lossy, laggy, duplicating, reordering
/// links plus a partition window isolating platform 1 mid-run.
const PLAN: &str = "\
seed = 11

[link]
latency_min = 1
latency_max = 4
drop_probability = 0.25
duplicate_probability = 0.10
reorder_probability = 0.20
reorder_max_extra = 2

[[partitions]]
from = 3
until = 9
isolated = 1
";

/// The digest lines of a rendered outcome — state, fed, net, and last
/// outcome digests; equality means the runs agree on everything hashed.
fn digest_lines(output: &str) -> Vec<&str> {
    output.lines().filter(|l| l.contains("digest")).collect()
}

#[test]
fn federate_and_replay_agree_at_one_and_four_threads() {
    let dir = temp_dir("cli");
    let plan_path = dir.join("plan.toml");
    let log_path = dir.join("fed.jsonl");
    std::fs::write(&plan_path, PLAN).expect("write plan");
    let plan = plan_path.to_str().unwrap();
    let log = log_path.to_str().unwrap();

    let federate = |threads: &str| {
        run(parsed(&[
            "federate",
            "--platforms",
            "3",
            "--seed",
            "11",
            "--microservices",
            "6",
            "--requests",
            "30",
            "--rounds",
            "6",
            "--stage-rounds",
            "2",
            "--net-faults",
            plan,
            "--fed-log",
            log,
            "--pricing-threads",
            threads,
        ]))
        .expect("federate")
    };
    let live_1 = federate("1");
    let log_text = std::fs::read_to_string(&log_path).expect("fed log written");
    let live_4 = federate("4");
    edge_auction::set_pricing_threads(1);

    assert_eq!(
        live_1, live_4,
        "federate output diverged across pricing-thread counts"
    );
    assert_eq!(
        log_text,
        std::fs::read_to_string(&log_path).unwrap(),
        "fed log diverged across pricing-thread counts"
    );
    assert!(
        !digest_lines(&live_1).is_empty(),
        "federate printed no digests: {live_1}"
    );

    let replay_1 = run(parsed(&["replay", log, "--pricing-threads", "1"])).expect("replay @1");
    let replay_4 = run(parsed(&["replay", log, "--pricing-threads", "4"])).expect("replay @4");
    edge_auction::set_pricing_threads(1);
    assert_eq!(
        replay_1, replay_4,
        "replay output diverged across pricing-thread counts"
    );
    assert!(replay_1.contains("record-for-record"), "{replay_1}");
    assert_eq!(
        digest_lines(&live_1),
        digest_lines(&replay_1),
        "replay digests diverged from the live run"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_flags_are_assertions_against_the_header() {
    let dir = temp_dir("assert");
    let log_path = dir.join("fed.jsonl");
    let log = log_path.to_str().unwrap();
    run(parsed(&[
        "federate",
        "--platforms",
        "2",
        "--seed",
        "5",
        "--microservices",
        "5",
        "--requests",
        "20",
        "--rounds",
        "4",
        "--stage-rounds",
        "2",
        "--fed-log",
        log,
    ]))
    .expect("federate");

    // Matching assertions pass.
    run(parsed(&["replay", log, "--seed", "5", "--platforms", "2"]))
        .expect("matching assertions must pass");

    // A contradicting flag is a loud, specific error.
    let err = run(parsed(&["replay", log, "--seed", "999"])).expect_err("conflict must error");
    let message = err.to_string();
    assert!(message.contains("--seed 999"), "{message}");
    assert!(message.contains("contradicts"), "{message}");
    assert!(message.contains("5"), "{message}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn single_platform_ideal_network_matches_the_serve_loop() {
    let serve_config = ServeConfig {
        seed: 7,
        microservices: 8,
        requests: 40,
        total_rounds: 6,
        stage_rounds: 3,
        interval_ms: 0,
        ..ServeConfig::default()
    };
    let summary = drive(&serve_config, &ServeState::new(), None).expect("serve drive");

    let config = FederationConfig::uniform(serve_config.service_config(), 1);
    let plan = NetFaultPlan::ideal(serve_config.seed);
    let mut sim =
        FederationSim::new(config, plan, |_, c| stage_provider(c)).expect("federation sim");
    let outcome = sim.run(None).expect("federation run");

    let node = &outcome.nodes[0];
    assert_eq!(node.stages, summary.stages, "stage count diverged");
    assert_eq!(node.rounds, summary.rounds, "round count diverged");
    assert_eq!(
        node.last_outcome_digest, summary.last_digest,
        "K=1 federation over an ideal network must be bit-identical to serve"
    );
    assert_eq!(node.counters.deals_opened, 0, "no peers, no deals");
}
