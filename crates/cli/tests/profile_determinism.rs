//! Span-profiler determinism: the deterministic trace section and the
//! call-weighted folded stacks of `edge-market profile` must be
//! byte-identical at any `--pricing-threads` / `--shards` setting, on a
//! seeded *faulty* instance (so recovery rungs and backfill spans are
//! exercised too) — only the `"section":"profile"` tail may move.
//!
//! A second property locks the serve/replay arm: the span events a
//! `serve --spans on` trace carries must equal the ones `replay --spans
//! on` regenerates from the event log, because spans open only for
//! accepted events and replay applies exactly the accepted sequence.
//!
//! Every run is a subprocess of the built binary, so the process-global
//! pricing-thread / shard knobs never race other tests.

use std::path::PathBuf;
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("edge-market-profile-{}-{name}", std::process::id()));
    p
}

fn run_ok(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_edge-market"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "args {args:?} failed\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The deterministic section: seq-numbered events only, no wall-clock.
fn deterministic_section(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| l.starts_with("{\"seq\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Only the flushed span-structure events.
fn span_events(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| l.starts_with("{\"seq\":") && l.contains("\"event\":\"span\""))
        .collect::<Vec<_>>()
        .join("\n")
}

const FAULT_PLAN: &str = "[[defaults]]\nround = 1\nseller = 0\ndelivered_fraction = 0.25\n\n\
                          [[crashes]]\nseller = 1\nfrom = 0\nuntil = 2\n\n\
                          [[dropouts]]\nindicator = \"rate\"\nfrom = 0\nuntil = 1\n";

#[test]
fn profile_is_knob_invariant_on_a_faulty_instance() {
    let plan = temp_path("plan.toml");
    std::fs::write(&plan, FAULT_PLAN).unwrap();
    let plan_s = plan.to_str().unwrap().to_owned();

    let mut dets = Vec::new();
    let mut folds = Vec::new();
    let mut stdouts = Vec::new();
    for (threads, shards) in [("1", "1"), ("4", "1"), ("1", "4"), ("4", "4")] {
        let trace = temp_path(&format!("t{threads}s{shards}.jsonl"));
        let folded = temp_path(&format!("t{threads}s{shards}.folded"));
        let stdout = run_ok(&[
            "profile",
            "--scale-n",
            "3000",
            "--rounds",
            "2",
            "--seed",
            "7",
            "--faults",
            &plan_s,
            "--pricing-threads",
            threads,
            "--shards",
            shards,
            "--trace",
            trace.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
            "--folded-weight",
            "calls",
        ]);
        let trace_text = std::fs::read_to_string(&trace).expect("trace written");
        assert!(
            trace_text.contains("\"section\":\"profile\""),
            "no profile tail at threads={threads} shards={shards}"
        );
        dets.push(deterministic_section(&trace_text));
        folds.push(std::fs::read_to_string(&folded).expect("folded written"));
        stdouts.push(stdout);
        let _ = std::fs::remove_file(trace);
        let _ = std::fs::remove_file(folded);
    }
    let _ = std::fs::remove_file(plan);

    // The deterministic section carries the span structure, the span
    // counters (including the engine-invariant pop_best scan count),
    // and the recovery/backfill spans of the faulty run.
    assert!(dets[0].contains("\"event\":\"span\""), "{}", dets[0]);
    assert!(dets[0].contains("pop_best_scans"), "{}", dets[0]);
    assert!(dets[0].contains("backfill"), "{}", dets[0]);
    assert!(folds[0].contains("profile;run;msoa"), "{}", folds[0]);
    for (threads, shards) in [("4", "1"), ("1", "4"), ("4", "4")] {
        let i = match (threads, shards) {
            ("4", "1") => 1,
            ("1", "4") => 2,
            _ => 3,
        };
        assert_eq!(
            dets[0], dets[i],
            "deterministic section diverged at threads={threads} shards={shards}"
        );
        assert_eq!(
            folds[0], folds[i],
            "calls-weighted folded stacks diverged at threads={threads} shards={shards}"
        );
    }

    // The waterfall attributes the run to named stages and surfaces the
    // sharded pricing phase's lane-head scan cost per pop_best query.
    for stdout in &stdouts {
        assert!(stdout.contains("attributed:"), "{stdout}");
    }
    assert!(
        stdouts[2].contains("pop_best scans"),
        "no lane-scan note at shards=4:\n{}",
        stdouts[2]
    );
}

#[test]
fn serve_spans_trace_equals_replay_spans_trace() {
    let log = temp_path("serve.log.jsonl");
    let serve_trace = temp_path("serve.trace.jsonl");
    let replay_trace = temp_path("replay.trace.jsonl");
    run_ok(&[
        "serve",
        "--seed",
        "7",
        "--microservices",
        "8",
        "--requests",
        "40",
        "--rounds",
        "4",
        "--stage-rounds",
        "2",
        "--interval-ms",
        "0",
        "--http",
        "off",
        "--event-log",
        log.to_str().unwrap(),
        "--trace",
        serve_trace.to_str().unwrap(),
        "--spans",
        "on",
    ]);
    run_ok(&[
        "replay",
        log.to_str().unwrap(),
        "--trace",
        replay_trace.to_str().unwrap(),
        "--spans",
        "on",
    ]);

    let live = std::fs::read_to_string(&serve_trace).expect("serve trace");
    let replayed = std::fs::read_to_string(&replay_trace).expect("replay trace");
    let live_spans = span_events(&live);
    assert!(
        live_spans.contains("service.apply"),
        "serve recorded no apply spans:\n{live_spans}"
    );
    assert_eq!(
        live_spans,
        span_events(&replayed),
        "replay regenerated different span events than the live run logged"
    );

    let _ = std::fs::remove_file(log);
    let _ = std::fs::remove_file(serve_trace);
    let _ = std::fs::remove_file(replay_trace);
}
