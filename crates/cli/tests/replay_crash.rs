//! Crash-recovery proof: the event log is the source of truth.
//!
//! A recorded run is truncated at **every** record boundary; each
//! prefix is replayed through a fresh service, the remaining events are
//! then ingested live, and the final state digest must always match the
//! uninterrupted run's. Mid-record truncation (the daemon died while a
//! record was half-written) must parse leniently by dropping exactly
//! the partial tail.

use edge_auction::service::{parse_log, AuctionService, LogWriter, ServiceConfig, ServiceEvent};
use edge_market_cli::serve::stage_provider;

fn config() -> ServiceConfig {
    ServiceConfig {
        seed: 11,
        microservices: 6,
        requests: 40,
        total_rounds: 6,
        stage_rounds: 2,
        book_cap: 64,
        demand_cap: 500,
    }
}

/// A wire-heavy recorded run: bids, withdrawals, demand, defaults, and
/// the daemon's round closes, interleaved.
fn recorded_events() -> Vec<ServiceEvent> {
    let mut events = Vec::new();
    for round in 0..6u64 {
        for seller in 0..3usize {
            events.push(ServiceEvent::BidSubmitted {
                seller,
                bid: round,
                amount: 1 + (round % 3),
                price: 4.0 + round as f64 + seller as f64 / 2.0,
            });
        }
        if round % 2 == 0 {
            events.push(ServiceEvent::DemandReported { units: 2 + round });
        }
        if round % 3 == 1 {
            events.push(ServiceEvent::BidWithdrawn {
                seller: 1,
                bid: round,
            });
            events.push(ServiceEvent::SellerDefaulted {
                seller: 2,
                delivered_fraction: 0.5,
            });
        }
        events.push(ServiceEvent::RoundClosed);
    }
    events
}

/// Writes the run to a log and returns (log text, final state digest,
/// final outcome digest).
fn record() -> (String, String, Option<String>) {
    let mut svc = AuctionService::new(config(), stage_provider(config()));
    let mut buf = Vec::new();
    let mut log = LogWriter::new(&mut buf, &config()).expect("header");
    for event in recorded_events() {
        svc.apply(&event, None).expect("recorded events are valid");
        log.append(&event).expect("append");
    }
    (
        String::from_utf8(buf).expect("utf8"),
        svc.state_digest_hex(),
        svc.last_outcome_digest_hex(),
    )
}

#[test]
fn truncation_at_every_record_boundary_recovers_exactly() {
    let (text, final_digest, final_outcome) = record();
    let lines: Vec<&str> = text.lines().collect();
    let records = lines.len() - 1;
    let all_events = recorded_events();
    assert_eq!(records, all_events.len());

    for cut in 0..=records {
        // The crash: only the header + first `cut` records survive.
        let prefix = lines[..=cut].join("\n");
        let parsed = parse_log(&prefix, true)
            .unwrap_or_else(|e| panic!("prefix of {cut} records failed to parse: {e}"));
        assert!(!parsed.truncated_tail, "clean boundary cut {cut}");
        assert_eq!(parsed.records.len(), cut);

        // Recovery: replay the prefix, then resume live ingestion of
        // the events the crash swallowed.
        let mut svc = AuctionService::new(parsed.config, stage_provider(parsed.config));
        svc.apply_all(&parsed.records, None)
            .unwrap_or_else(|e| panic!("prefix replay failed at cut {cut}: {e}"));
        for event in &all_events[cut..] {
            svc.apply(event, None)
                .unwrap_or_else(|e| panic!("resume failed at cut {cut}: {e}"));
        }
        assert_eq!(
            svc.state_digest_hex(),
            final_digest,
            "state digest diverged after crash at record boundary {cut}"
        );
        assert_eq!(
            svc.last_outcome_digest_hex(),
            final_outcome,
            "outcome digest diverged after crash at record boundary {cut}"
        );
    }
}

#[test]
fn mid_record_truncation_drops_exactly_the_partial_tail() {
    let (text, _, _) = record();
    let lines: Vec<&str> = text.lines().collect();
    // Cut the log mid-way through its final record.
    let keep = text.len() - lines.last().expect("nonempty").len() / 2;
    let cut = &text[..keep];
    let parsed = parse_log(cut, true).expect("lenient parse succeeds");
    assert!(parsed.truncated_tail, "the partial record must be noticed");
    assert_eq!(parsed.records.len(), lines.len() - 2);

    // Strict parsing refuses the same bytes.
    assert!(parse_log(cut, false).is_err());
}

#[test]
fn interior_corruption_is_never_silently_recovered() {
    let (text, _, _) = record();
    let lines: Vec<&str> = text.lines().collect();
    // Drop an interior record entirely: the chain must break loudly
    // even in lenient mode — leniency is for the tail only.
    let mut gapped: Vec<&str> = lines.clone();
    gapped.remove(3);
    assert!(
        parse_log(&gapped.join("\n"), true).is_err(),
        "a missing interior record must fail both modes"
    );
}
