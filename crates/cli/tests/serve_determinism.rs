//! Serve determinism: scraping never perturbs auction outcomes.
//!
//! The acceptance criterion for `edge-market serve` is that the HTTP
//! server is a pure observer — with the server enabled and `/metrics`
//! plus `/status` hammered mid-run, MSOA outcomes and the deterministic
//! trace section must be byte-identical to a server-off run, at both 1
//! and 4 pricing threads.
//!
//! The server-on run is timing-independent: instead of sleeping between
//! stages and hoping the scraper lands mid-run, the drive loop blocks in
//! a [`ServeState::set_stage_hook`] barrier after every stage until the
//! scraper has completed at least one *full* `/metrics` + `/status`
//! round trip strictly inside that inter-stage window. Every stage is
//! therefore provably scraped mid-run, with zero sleeps in the test.

use edge_market_cli::serve::{drive, start_http, ServeConfig, ServeState};
use edge_telemetry::Collector;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

fn config() -> ServeConfig {
    ServeConfig {
        seed: 7,
        microservices: 10,
        requests: 60,
        total_rounds: 6,
        stage_rounds: 3,
        // No inter-stage sleep: the server-on run synchronizes with the
        // scraper through a stage-hook barrier instead of wall-clock.
        interval_ms: 0,
        ..ServeConfig::default()
    }
}

/// The deterministic section: seq-numbered events only, no wall-clock.
fn deterministic_section(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.starts_with("{\"seq\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// Runs the drive loop with no HTTP server; returns (digest, trace).
fn run_server_off(threads: usize) -> (String, String) {
    edge_auction::set_pricing_threads(threads);
    let collector = Collector::new();
    let state = ServeState::new();
    let summary = drive(&config(), &state, Some(&collector)).expect("drive");
    (
        summary.last_digest.expect("stages ran"),
        collector.deterministic_jsonl(),
    )
}

/// Counts completed `/metrics` + `/status` round trips; the stage hook
/// waits on the condvar until the count advances far enough.
#[derive(Default)]
struct Rendezvous {
    completed: Mutex<u64>,
    advanced: Condvar,
}

impl Rendezvous {
    /// Marks one full scrape round trip complete and wakes waiters.
    fn scrape_done(&self) {
        *self.completed.lock().unwrap() += 1;
        self.advanced.notify_all();
    }

    /// Blocks until two more round trips complete. A scrape already in
    /// flight at entry accounts for at most the first increment, so the
    /// second is a round trip that started — and finished — strictly
    /// inside this window.
    fn await_fresh_scrape(&self) {
        let mut done = self.completed.lock().unwrap();
        let target = *done + 2;
        while *done < target {
            done = self.advanced.wait(done).unwrap();
        }
    }
}

/// Runs the drive loop with the HTTP server up and a scraper thread
/// hammering `/metrics` and `/status`, with a barrier after every stage
/// guaranteeing at least one full scrape lands inside each inter-stage
/// window. Returns (digest, trace, stages barriered).
fn run_server_on(threads: usize) -> (String, String, u64) {
    edge_auction::set_pricing_threads(threads);
    let collector = Collector::new();
    let state = Arc::new(ServeState::new());
    let (addr, http) = start_http(Arc::clone(&state), 0).expect("bind");

    let rendezvous = Arc::new(Rendezvous::default());
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let rendezvous = Arc::clone(&rendezvous);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let metrics = get(addr, "/metrics");
                assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
                let status = get(addr, "/status");
                assert!(status.starts_with("HTTP/1.1 200"), "{status}");
                rendezvous.scrape_done();
            }
        })
    };

    let barriers = Arc::new(Mutex::new(0u64));
    {
        let rendezvous = Arc::clone(&rendezvous);
        let barriers = Arc::clone(&barriers);
        state.set_stage_hook(move |_stage| {
            rendezvous.await_fresh_scrape();
            *barriers.lock().unwrap() += 1;
        });
    }

    let summary = drive(&config(), &state, Some(&collector)).expect("drive");

    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper joins");
    state.request_shutdown();
    http.join().expect("http joins");
    let barriers = *barriers.lock().unwrap();
    (
        summary.last_digest.expect("stages ran"),
        collector.deterministic_jsonl(),
        barriers,
    )
}

#[test]
fn scraped_serve_is_byte_identical_to_server_off() {
    let expected_stages = config().total_rounds / config().stage_rounds;
    for threads in [1usize, 4] {
        let (digest_off, trace_off) = run_server_off(threads);
        let (digest_on, trace_on, barriers) = run_server_on(threads);
        edge_auction::set_pricing_threads(1);

        assert_eq!(
            barriers, expected_stages,
            "every stage must rendezvous with a mid-run scrape at {threads} threads"
        );
        assert_eq!(
            digest_off, digest_on,
            "outcome digest diverged under scraping at {threads} threads"
        );

        let det_off = deterministic_section(&trace_off);
        let det_on = deterministic_section(&trace_on);
        assert!(
            !det_off.is_empty(),
            "serve recorded no deterministic events"
        );
        assert!(det_off.contains("\"stage\""), "{det_off}");
        assert_eq!(
            det_off, det_on,
            "deterministic trace section diverged under scraping at {threads} threads"
        );
    }

    // And across thread counts the outcomes themselves agree.
    let (digest_1, trace_1) = run_server_off(1);
    let (digest_4, trace_4) = run_server_off(4);
    edge_auction::set_pricing_threads(1);
    assert_eq!(digest_1, digest_4, "digest diverged across thread counts");
    assert_eq!(
        deterministic_section(&trace_1),
        deterministic_section(&trace_4),
        "deterministic section diverged across thread counts"
    );
}
