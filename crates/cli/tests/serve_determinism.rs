//! Serve determinism: scraping never perturbs auction outcomes.
//!
//! The acceptance criterion for `edge-market serve` is that the HTTP
//! server is a pure observer — with the server enabled and `/metrics`
//! plus `/status` hammered mid-run, MSOA outcomes and the deterministic
//! trace section must be byte-identical to a server-off run, at both 1
//! and 4 pricing threads.

use edge_market_cli::serve::{drive, start_http, ServeConfig, ServeState};
use edge_telemetry::Collector;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn config() -> ServeConfig {
    ServeConfig {
        seed: 7,
        microservices: 10,
        requests: 60,
        total_rounds: 6,
        stage_rounds: 3,
        // Long enough that the scraper always lands mid-run; outcomes
        // are a pure function of events, so the pause changes nothing.
        interval_ms: 25,
        ..ServeConfig::default()
    }
}

/// The deterministic section: seq-numbered events only, no wall-clock.
fn deterministic_section(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.starts_with("{\"seq\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

/// Runs the drive loop with no HTTP server; returns (digest, trace).
fn run_server_off(threads: usize) -> (String, String) {
    edge_auction::set_pricing_threads(threads);
    let collector = Collector::new();
    let state = ServeState::new();
    let summary = drive(&config(), &state, Some(&collector)).expect("drive");
    (
        summary.last_digest.expect("stages ran"),
        collector.deterministic_jsonl(),
    )
}

/// Runs the drive loop with the HTTP server up and a scraper thread
/// hammering `/metrics` and `/status` for the whole run.
fn run_server_on(threads: usize) -> (String, String, u64) {
    edge_auction::set_pricing_threads(threads);
    let collector = Collector::new();
    let state = Arc::new(ServeState::new());
    let (addr, http) = start_http(Arc::clone(&state), 0).expect("bind");

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let metrics = get(addr, "/metrics");
                assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
                let status = get(addr, "/status");
                assert!(status.starts_with("HTTP/1.1 200"), "{status}");
                scrapes += 1;
            }
            scrapes
        })
    };

    let summary = drive(&config(), &state, Some(&collector)).expect("drive");

    stop.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper joins");
    state.request_shutdown();
    http.join().expect("http joins");
    (
        summary.last_digest.expect("stages ran"),
        collector.deterministic_jsonl(),
        scrapes,
    )
}

#[test]
fn scraped_serve_is_byte_identical_to_server_off() {
    for threads in [1usize, 4] {
        let (digest_off, trace_off) = run_server_off(threads);
        let (digest_on, trace_on, scrapes) = run_server_on(threads);
        edge_auction::set_pricing_threads(1);

        assert!(
            scrapes > 0,
            "scraper thread never completed a scrape at {threads} threads"
        );
        assert_eq!(
            digest_off, digest_on,
            "outcome digest diverged under scraping at {threads} threads"
        );

        let det_off = deterministic_section(&trace_off);
        let det_on = deterministic_section(&trace_on);
        assert!(
            !det_off.is_empty(),
            "serve recorded no deterministic events"
        );
        assert!(det_off.contains("\"stage\""), "{det_off}");
        assert_eq!(
            det_off, det_on,
            "deterministic trace section diverged under scraping at {threads} threads"
        );
    }

    // And across thread counts the outcomes themselves agree.
    let (digest_1, trace_1) = run_server_off(1);
    let (digest_4, trace_4) = run_server_off(4);
    edge_auction::set_pricing_threads(1);
    assert_eq!(digest_1, digest_4, "digest diverged across thread counts");
    assert_eq!(
        deterministic_section(&trace_1),
        deterministic_section(&trace_4),
        "deterministic section diverged across thread counts"
    );
}
