//! Differential serve-vs-replay suite: for random event sequences, the
//! live service and an offline replay of its event log must agree —
//! outcome digests, payments, winner counts, state digests, and the
//! deterministic JSONL trace section, **byte for byte**, at 1 and 4
//! pricing threads.
//!
//! This is the log-is-source-of-truth property: a live run writes every
//! accepted event to a digest-chained log; replaying that log through a
//! fresh [`AuctionService`] over the same seeded provider is the same
//! pure computation.

use edge_auction::service::{parse_log, AuctionService, LogWriter, ServiceConfig, ServiceEvent};
use edge_market_cli::serve::stage_provider;
use edge_telemetry::Collector;
use proptest::prelude::*;

fn config(seed: u64, total_rounds: u64, stage_rounds: u64) -> ServiceConfig {
    ServiceConfig {
        seed,
        microservices: 6,
        requests: 40,
        total_rounds,
        stage_rounds,
        book_cap: 64,
        demand_cap: 500,
    }
}

/// The deterministic section: seq-numbered events only, no wall-clock.
fn deterministic_section(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.starts_with("{\"seq\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Raw wire events, hostile and benign alike — admission control keeps
/// the accepted subsequence valid, and only that subsequence is logged.
#[allow(clippy::cast_precision_loss)]
fn arb_events() -> impl Strategy<Value = Vec<ServiceEvent>> {
    proptest::collection::vec(
        (0u32..6, 0u64..8, 0u64..4, 0u64..5, 0u32..40, 1u64..9),
        5..40,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(kind, seller, bid, amount, price, units)| match kind {
                0 | 1 => ServiceEvent::BidSubmitted {
                    seller: seller as usize,
                    bid,
                    amount,
                    price: f64::from(price) / 2.0,
                },
                2 => ServiceEvent::BidWithdrawn {
                    seller: seller as usize,
                    bid,
                },
                3 => ServiceEvent::DemandReported { units },
                4 => ServiceEvent::SellerDefaulted {
                    seller: seller as usize,
                    delivered_fraction: f64::from(price % 5) / 4.0,
                },
                _ => ServiceEvent::RoundClosed,
            })
            .collect()
    })
}

/// (state digest, last outcome digest, winners, total payment).
type Fingerprint = (String, Option<String>, u64, f64);

/// Applies `events` live (logging the accepted ones), then replays the
/// log at `threads` pricing threads; returns the live fingerprint, the
/// replayed fingerprint, and the two deterministic trace sections.
fn live_then_replay(
    config: ServiceConfig,
    events: &[ServiceEvent],
    threads: usize,
) -> (Fingerprint, Fingerprint, String, String) {
    edge_auction::set_pricing_threads(1);
    let live_trace = Collector::new();
    let mut live = AuctionService::new(config, stage_provider(config));
    let mut buf = Vec::new();
    let mut log = LogWriter::new(&mut buf, &config).expect("header");
    for event in events {
        if live.apply(event, Some(&live_trace)).is_ok() {
            log.append(event).expect("append");
        }
    }
    // Close out the horizon so every case exercises stage auctions.
    while !live.horizon_complete() {
        live.apply(&ServiceEvent::RoundClosed, Some(&live_trace))
            .expect("close");
        log.append(&ServiceEvent::RoundClosed).expect("append");
    }
    let live_fp = (
        live.state_digest_hex(),
        live.last_outcome_digest_hex(),
        live.winners(),
        live.total_payment(),
    );

    edge_auction::set_pricing_threads(threads);
    let text = String::from_utf8(buf).expect("utf8 log");
    let parsed = parse_log(&text, false).expect("log verifies");
    assert_eq!(parsed.config, config);
    let replay_trace = Collector::new();
    let mut replayed = AuctionService::new(parsed.config, stage_provider(parsed.config));
    replayed
        .apply_all(&parsed.records, Some(&replay_trace))
        .expect("every logged event replays");
    let replay_fp = (
        replayed.state_digest_hex(),
        replayed.last_outcome_digest_hex(),
        replayed.winners(),
        replayed.total_payment(),
    );
    edge_auction::set_pricing_threads(1);
    (
        live_fp,
        replay_fp,
        deterministic_section(&live_trace.deterministic_jsonl()),
        deterministic_section(&replay_trace.deterministic_jsonl()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // A single property (not one per thread count) so the global
    // pricing-thread setting is never raced by parallel test threads.
    #[test]
    fn random_event_sequences_replay_byte_identically(
        events in arb_events(),
        seed in 0u64..1_000,
        total_rounds in 2u64..7,
        stage_rounds in 1u64..4,
    ) {
        let config = config(seed, total_rounds, stage_rounds);
        for threads in [1usize, 4] {
            let (live, replayed, trace_live, trace_replay) =
                live_then_replay(config, &events, threads);
            prop_assert_eq!(
                &live, &replayed,
                "live/replay fingerprints diverged at {} threads", threads
            );
            prop_assert!(
                !trace_live.is_empty(),
                "no deterministic trace events were recorded"
            );
            prop_assert_eq!(
                &trace_live, &trace_replay,
                "deterministic trace section diverged at {} threads", threads
            );
        }
    }
}
