//! Trace determinism across thread counts.
//!
//! The deterministic section of a trace — every `{"seq":...}` line —
//! must be byte-identical whether the sweep ran on 1 worker or 4; only
//! the trailing profile section (wall-clock timings) may differ. The
//! tables on stdout must also stay byte-identical with tracing on,
//! locking in that observability never perturbs results.

use std::path::PathBuf;
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("edge-market-trace-{}-{name}", std::process::id()));
    p
}

fn reproduce(parallel: &str, trace: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_edge-market"))
        .args([
            "reproduce",
            "--figure",
            "fig3a",
            "--seeds",
            "2",
            "--parallel",
            parallel,
            "--trace",
            trace,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The deterministic section: seq-numbered events, no wall-clock.
fn deterministic_section(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| l.starts_with("{\"seq\":"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Stdout minus the `trace: ...` note (which names the output path).
fn tables_only(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| !l.starts_with("trace:"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn deterministic_trace_section_is_identical_across_thread_counts() {
    let t1 = temp_path("p1.jsonl");
    let t4 = temp_path("p4.jsonl");
    let out1 = reproduce("1", t1.to_str().unwrap());
    let out4 = reproduce("4", t4.to_str().unwrap());

    let trace1 = std::fs::read_to_string(&t1).expect("trace written");
    let trace4 = std::fs::read_to_string(&t4).expect("trace written");
    let det1 = deterministic_section(&trace1);
    let det4 = deterministic_section(&trace4);

    assert!(!det1.is_empty(), "sweep recorded no deterministic events");
    assert!(det1.contains("\"event\":\"sweep\""), "{det1}");
    assert!(det1.contains("fig3a"), "{det1}");
    assert_eq!(det1, det4, "deterministic sections diverged");

    // The wall-clock profile section exists but stays out of the
    // deterministic lines.
    assert!(trace1.contains("\"section\":\"profile\""), "{trace1}");
    for line in trace1
        .lines()
        .filter(|l| l.contains("\"section\":\"profile\""))
    {
        assert!(!line.starts_with("{\"seq\":"), "{line}");
    }

    // Tracing on, any thread count: the summary tables are unchanged.
    assert_eq!(tables_only(&out1), tables_only(&out4));

    let _ = std::fs::remove_file(t1);
    let _ = std::fs::remove_file(t4);
}
