//! Wire-protocol hardening: hostile inputs get structured rejections,
//! never panics, and never perturb the auction book; a full ingress
//! queue answers 429; and a drive loop fed over the wire writes a log
//! whose replay reproduces its outcome digest.

use edge_auction::service::{parse_log, AuctionService, ServiceEvent};
use edge_market_cli::serve::{
    drive_service, new_log_writer, stage_provider, IngressMsg, IngressReply, ServeConfig,
    ServeState, MAX_BODY_BYTES,
};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::time::Duration;

/// Connects and writes one POST, overriding the Content-Length header
/// when `claimed_len` is given; returns the open stream (response not
/// yet read, so the caller can drain ingress before the server blocks).
fn post_raw(addr: SocketAddr, path: &str, body: &[u8], claimed_len: Option<usize>) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let len = claimed_len.unwrap_or(body.len());
    stream
        .write_all(
            format!("POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {len}\r\n\r\n").as_bytes(),
        )
        .unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
    stream
}

/// Reads the response off `stream`; returns (status line, body).
fn read_response(mut stream: TcpStream) -> (String, String) {
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("full response");
    (
        head.lines().next().unwrap_or("").to_owned(),
        body.to_owned(),
    )
}

/// A POST the HTTP layer rejects before anything reaches the queue.
fn post_rejected_at_http(
    addr: SocketAddr,
    path: &str,
    body: &[u8],
    claimed: Option<usize>,
) -> (String, String) {
    read_response(post_raw(addr, path, body, claimed))
}

/// A POST that reaches the queue: the test plays the drive loop's part,
/// applying the event to `svc` and replying, then reads the response.
fn post_through_service<P: FnMut(u64, u64) -> edge_auction::msoa::MultiRoundInstance>(
    addr: SocketAddr,
    path: &str,
    body: &str,
    rx: &Receiver<IngressMsg>,
    svc: &mut AuctionService<P>,
) -> (String, String) {
    let stream = post_raw(addr, path, body.as_bytes(), None);
    let msg = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("event reaches the ingress queue");
    let reply = match svc.apply(&msg.event, None) {
        Ok(_) => IngressReply::Accepted {
            seq: svc.events_applied(),
            digest: svc.state_digest_hex(),
        },
        Err(e) => IngressReply::Rejected {
            code: e.code(),
            message: e.to_string(),
        },
    };
    msg.reply.try_send(reply).expect("http thread is waiting");
    read_response(stream)
}

#[test]
fn hostile_wire_inputs_are_rejected_structurally_and_leave_the_book_alone() {
    let state = Arc::new(ServeState::new());
    let (tx, rx) = sync_channel::<IngressMsg>(8);
    let (addr, http) =
        edge_market_cli::serve::start_http_with_ingest(Arc::clone(&state), 0, Some(tx))
            .expect("bind");
    let config = ServeConfig {
        seed: 5,
        microservices: 6,
        requests: 40,
        ..ServeConfig::default()
    };
    let mut svc = AuctionService::new(
        config.service_config(),
        stage_provider(config.service_config()),
    );

    // A benign bid is accepted and lands in the book.
    let (status, body) = post_through_service(
        addr,
        "/v1/bid",
        r#"{"seller":0,"bid":0,"amount":2,"price":5.5}"#,
        &rx,
        &mut svc,
    );
    assert!(status.contains("200"), "{status} {body}");
    assert!(body.contains("\"ok\":true"), "{body}");
    assert_eq!(svc.book_len(), 1);
    let book_before = svc.book_digest_hex();
    let state_before = svc.state_digest_hex();

    // HTTP-layer rejections: none of these may reach the queue.
    // (path, raw body, claimed Content-Length, wanted status, code)
    type HttpCase<'a> = (&'a str, &'a [u8], Option<usize>, &'a str, &'a str);
    let cases: Vec<HttpCase> = vec![
        (
            "/v1/bid",
            b"{}".as_slice(),
            Some(MAX_BODY_BYTES + 1),
            "413",
            "oversized_body",
        ),
        ("/v1/bid", &[0xff, 0xfe, 0x90], None, "400", "bad_utf8"),
        ("/v1/bid", b"not json at all", None, "400", "malformed"),
        ("/v1/bid", b"[1,2,3]", None, "400", "malformed"),
        ("/v1/bid", br#"{"seller":0}"#, None, "400", "malformed"),
        ("/v1/nonsense", b"{}", None, "400", "malformed"),
        ("/v2/bid", b"{}", None, "404", "unsupported_version"),
        (
            "/v999/round/close",
            b"{}",
            None,
            "404",
            "unsupported_version",
        ),
    ];
    for (path, body, claimed, want_status, want_code) in cases {
        let (status, reply) = post_rejected_at_http(addr, path, body, claimed);
        assert!(
            status.contains(want_status),
            "POST {path}: wanted {want_status}, got {status} {reply}"
        );
        assert!(
            reply.contains(&format!("\"ok\":false,\"error\":\"{want_code}\"")),
            "POST {path}: {reply}"
        );
        assert!(
            rx.try_recv().is_err(),
            "POST {path} leaked past the HTTP layer into the queue"
        );
    }

    // Admission-control rejections: they reach the service, which must
    // refuse them without touching the book or the state digest.
    let admission: Vec<(&str, &str, &str)> = vec![
        // Same (seller, bid) as the accepted entry above.
        (
            "/v1/bid",
            r#"{"seller":0,"bid":0,"amount":1,"price":2.0}"#,
            "duplicate_bid",
        ),
        (
            "/v1/bid",
            r#"{"seller":1,"bid":0,"amount":1,"price":-3.5}"#,
            "invalid_price",
        ),
        (
            "/v1/bid",
            r#"{"seller":999,"bid":0,"amount":1,"price":2.0}"#,
            "unknown_seller",
        ),
        (
            "/v1/bid",
            r#"{"seller":1,"bid":1,"amount":0,"price":2.0}"#,
            "zero_amount",
        ),
        ("/v1/demand", r#"{"units":0}"#, "zero_demand"),
        (
            "/v1/default",
            r#"{"seller":0,"delivered_fraction":1.5}"#,
            "invalid_fraction",
        ),
        (
            "/v1/bid/withdraw",
            r#"{"seller":0,"bid":77}"#,
            "unknown_bid",
        ),
    ];
    for (path, body, want_code) in admission {
        let (status, reply) = post_through_service(addr, path, body, &rx, &mut svc);
        assert!(status.contains("400"), "POST {path}: {status} {reply}");
        assert!(
            reply.contains(&format!("\"ok\":false,\"error\":\"{want_code}\"")),
            "POST {path}: {reply}"
        );
        assert_eq!(
            svc.book_digest_hex(),
            book_before,
            "POST {path} perturbed the book"
        );
        assert_eq!(
            svc.state_digest_hex(),
            state_before,
            "POST {path} perturbed the state digest"
        );
    }

    state.request_shutdown();
    http.join().expect("http joins");
}

#[test]
fn full_ingress_queue_answers_429_backpressure() {
    let state = Arc::new(ServeState::new());
    let (tx, rx) = sync_channel::<IngressMsg>(2);

    // Fill the queue to capacity before the server sees any traffic.
    let mut parked = Vec::new();
    for _ in 0..2 {
        let (reply, reply_rx) = sync_channel(1);
        tx.try_send(IngressMsg {
            event: ServiceEvent::RoundClosed,
            reply,
        })
        .expect("queue has room");
        parked.push(reply_rx);
    }

    let (addr, http) =
        edge_market_cli::serve::start_http_with_ingest(Arc::clone(&state), 0, Some(tx))
            .expect("bind");

    // With nobody draining, the next wire event must bounce immediately.
    let (status, body) = read_response(post_raw(addr, "/v1/demand", br#"{"units":3}"#, None));
    assert!(status.contains("429"), "{status} {body}");
    assert!(body.contains("\"error\":\"backpressure\""), "{body}");

    // Draining the queue restores service.
    while let Ok(msg) = rx.try_recv() {
        let _ = msg.reply.try_send(IngressReply::Rejected {
            code: "test_drain",
            message: "drained by the test".to_owned(),
        });
    }
    drop(parked);
    let config = ServeConfig {
        seed: 5,
        microservices: 6,
        requests: 40,
        ..ServeConfig::default()
    };
    let mut svc = AuctionService::new(
        config.service_config(),
        stage_provider(config.service_config()),
    );
    let (status, body) = post_through_service(addr, "/v1/demand", r#"{"units":3}"#, &rx, &mut svc);
    assert!(status.contains("200"), "{status} {body}");

    state.request_shutdown();
    http.join().expect("http joins");
}

#[test]
fn wire_fed_drive_loop_writes_a_log_that_replays_to_the_same_digest() {
    let config = ServeConfig {
        seed: 33,
        microservices: 6,
        requests: 40,
        total_rounds: 0, // run until shutdown
        stage_rounds: 1,
        interval_ms: 25,
        ..ServeConfig::default()
    };
    let path = std::env::temp_dir().join(format!(
        "edge-market-hardening-{}.jsonl",
        std::process::id()
    ));
    let path_str = path.to_str().expect("utf8 temp path").to_owned();

    let state = Arc::new(ServeState::new());
    let (tx, rx) = sync_channel::<IngressMsg>(16);
    let (addr, http) =
        edge_market_cli::serve::start_http_with_ingest(Arc::clone(&state), 0, Some(tx))
            .expect("bind");
    let drive = {
        let config = config.clone();
        let state = Arc::clone(&state);
        let path_str = path_str.clone();
        std::thread::spawn(move || {
            let mut log = Some(new_log_writer(&path_str, &config.service_config()).expect("log"));
            drive_service(&config, &state, None, Some(rx), &mut log).expect("drive")
        })
    };

    // Feed real bids over the wire while rounds close underneath.
    for (seller, price) in [(0u32, 4.0f64), (1, 6.5), (2, 3.25)] {
        let (status, body) = read_response(post_raw(
            addr,
            "/v1/bid",
            format!("{{\"seller\":{seller},\"bid\":9,\"amount\":2,\"price\":{price:?}}}")
                .as_bytes(),
            None,
        ));
        assert!(status.contains("200"), "{status} {body}");
        assert!(body.contains("\"ok\":true"), "{body}");
    }

    state.request_shutdown();
    let summary = drive.join().expect("drive joins");
    http.join().expect("http joins");

    // The log replays to the same outcome digest the live loop reported.
    let text = std::fs::read_to_string(&path).expect("log file");
    let parsed = parse_log(&text, false).expect("digest chain verifies");
    let wire_bids = parsed
        .records
        .iter()
        .filter(|r| matches!(r.event, ServiceEvent::BidSubmitted { .. }))
        .count();
    assert_eq!(wire_bids, 3, "all accepted wire bids were logged");

    let mut replayed = AuctionService::new(parsed.config, stage_provider(parsed.config));
    replayed.apply_all(&parsed.records, None).expect("replay");
    assert_eq!(replayed.events_applied(), summary.events);
    assert_eq!(replayed.rounds_closed(), summary.rounds);
    assert_eq!(replayed.last_outcome_digest_hex(), summary.last_digest);

    let _ = std::fs::remove_file(&path);
}
