//! Shared error types for validated constructors.

use std::error::Error;
use std::fmt;

/// Error returned when constructing a quantity newtype from an invalid
/// floating-point value.
///
/// Both [`Price`](crate::units::Price) and
/// [`Resource`](crate::units::Resource) require finite, non-negative
/// values; anything else produces one of these variants.
///
/// # Examples
///
/// ```
/// use edge_common::units::Price;
/// use edge_common::error::QuantityError;
///
/// assert_eq!(Price::new(-1.0), Err(QuantityError::Negative(-1.0)));
/// assert_eq!(Price::new(f64::NAN), Err(QuantityError::NotFinite));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantityError {
    /// The value was NaN or infinite.
    NotFinite,
    /// The value was strictly negative.
    Negative(f64),
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantityError::NotFinite => write!(f, "quantity must be a finite number"),
            QuantityError::Negative(v) => write!(f, "quantity must be non-negative, got {v}"),
        }
    }
}

impl Error for QuantityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let not_finite = QuantityError::NotFinite.to_string();
        let negative = QuantityError::Negative(-2.5).to_string();
        assert!(not_finite.starts_with("quantity"));
        assert!(!not_finite.ends_with('.'));
        assert!(negative.contains("-2.5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<QuantityError>();
    }
}
