//! Strongly-typed identifiers.
//!
//! Each entity in the edge-market system gets its own id newtype so the
//! compiler rejects, for example, indexing a microservice table with a
//! [`UserId`]. All ids are thin wrappers around `usize` (entities are
//! dense, array-indexed populations in the simulator) except [`Round`],
//! which wraps a `u64` round counter.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use edge_common::id::", stringify!($name), ";")]
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.index(), 7);
            /// ```
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this id.
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "#{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                Self(index)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a microservice (seller or buyer in the auction).
    MicroserviceId,
    "ms"
);
define_id!(
    /// Identifier of an edge cloud (a capacity-bounded server cluster).
    EdgeCloudId,
    "edge"
);
define_id!(
    /// Identifier of an end user generating requests.
    UserId,
    "user"
);
define_id!(
    /// Identifier of a bid within one seller's bid list for one round.
    BidId,
    "bid"
);
define_id!(
    /// Identifier of a platform node in a multi-platform federation
    /// (one event-sourced auction service per platform).
    PlatformId,
    "platform"
);

/// A round index in the time-slotted system of the paper (§II).
///
/// A time slot `T` is divided into rounds `1..=t`; [`Round`] is the global
/// round counter. Rounds are ordered and support `next()` for advancing
/// the simulation clock.
///
/// # Examples
///
/// ```
/// use edge_common::id::Round;
/// let r = Round::new(4);
/// assert_eq!(r.next(), Round::new(5));
/// assert!(r < r.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Round(u64);

impl Round {
    /// The first round.
    pub const ZERO: Round = Round(0);

    /// Creates a round from its index.
    pub const fn new(index: u64) -> Self {
        Round(index)
    }

    /// Returns the round index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the round after this one.
    #[must_use]
    pub const fn next(self) -> Self {
        Round(self.0 + 1)
    }

    /// Returns `true` if this round lies in the inclusive window
    /// `[start, end]` — the paper's availability window `[t_i^-, t_i^+]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use edge_common::id::Round;
    /// let r = Round::new(3);
    /// assert!(r.within(Round::new(1), Round::new(5)));
    /// assert!(!r.within(Round::new(4), Round::new(5)));
    /// ```
    pub fn within(self, start: Round, end: Round) -> bool {
        start <= self && self <= end
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

impl From<u64> for Round {
    fn from(index: u64) -> Self {
        Round(index)
    }
}

impl From<Round> for u64 {
    fn from(round: Round) -> u64 {
        round.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_usize() {
        let id = MicroserviceId::new(42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(MicroserviceId::from(42usize), id);
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we only spot-check Display,
        // which is how the distinction surfaces in logs.
        assert_eq!(MicroserviceId::new(1).to_string(), "ms#1");
        assert_eq!(EdgeCloudId::new(1).to_string(), "edge#1");
        assert_eq!(UserId::new(1).to_string(), "user#1");
        assert_eq!(BidId::new(1).to_string(), "bid#1");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(MicroserviceId::new(1) < MicroserviceId::new(2));
        let mut v = vec![BidId::new(3), BidId::new(1), BidId::new(2)];
        v.sort();
        assert_eq!(v, vec![BidId::new(1), BidId::new(2), BidId::new(3)]);
    }

    #[test]
    fn round_advances_and_windows() {
        let r = Round::ZERO;
        assert_eq!(r.next().index(), 1);
        assert!(Round::new(5).within(Round::new(5), Round::new(5)));
        assert!(!Round::new(6).within(Round::new(1), Round::new(5)));
    }

    #[test]
    fn ids_serialize_transparently() {
        let id = MicroserviceId::new(9);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "9");
        let back: MicroserviceId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn round_serializes_transparently() {
        let r = Round::new(11);
        assert_eq!(serde_json::to_string(&r).unwrap(), "11");
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(MicroserviceId::new(0), "a");
        m.insert(MicroserviceId::new(1), "b");
        assert_eq!(m[&MicroserviceId::new(1)], "b");
    }
}
