//! The three demand indicators of §III and observability masks over
//! them.
//!
//! Demand estimation combines a waiting-time factor `γ`, a
//! processing-rate factor `ℝ`, and a request-rate factor `𝕋`. Real
//! telemetry pipelines lose individual indicators (a metrics exporter
//! crashes, a probe times out), so the workspace models *which* of the
//! three are currently observable with [`ObservedIndicators`]: the
//! simulator's sensor-dropout events clear bits, and the estimator
//! renormalizes its weights over whatever survives.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the three demand indicators of Eq. (1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Indicator {
    /// The waiting-time factor `γ` (completion progress).
    #[default]
    Waiting,
    /// The processing-rate factor `ℝ` (backlog rate).
    Processing,
    /// The request-rate factor `𝕋` (allocation share × utilization).
    Rate,
}

impl Indicator {
    /// All three indicators, in Eq. (1) order.
    pub const ALL: [Indicator; 3] = [Indicator::Waiting, Indicator::Processing, Indicator::Rate];
}

impl fmt::Display for Indicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Indicator::Waiting => "waiting",
            Indicator::Processing => "processing",
            Indicator::Rate => "rate",
        };
        write!(f, "{name}")
    }
}

/// Error from parsing an [`Indicator`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIndicatorError(String);

impl fmt::Display for ParseIndicatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown indicator '{}' (expected waiting|processing|rate)",
            self.0
        )
    }
}

impl std::error::Error for ParseIndicatorError {}

impl FromStr for Indicator {
    type Err = ParseIndicatorError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "waiting" => Ok(Indicator::Waiting),
            "processing" => Ok(Indicator::Processing),
            "rate" => Ok(Indicator::Rate),
            other => Err(ParseIndicatorError(other.to_owned())),
        }
    }
}

/// Which demand indicators are currently observable.
///
/// Defaults to all three. The mask is a plain value type so a snapshot
/// taken at round `t` stays valid however the live mask evolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedIndicators {
    waiting: bool,
    processing: bool,
    rate: bool,
}

impl ObservedIndicators {
    /// All three indicators observable (the healthy state).
    pub const fn all() -> Self {
        ObservedIndicators {
            waiting: true,
            processing: true,
            rate: true,
        }
    }

    /// No indicator observable (total sensor blackout).
    pub const fn none() -> Self {
        ObservedIndicators {
            waiting: false,
            processing: false,
            rate: false,
        }
    }

    /// Whether an indicator is observable under this mask.
    pub const fn contains(self, indicator: Indicator) -> bool {
        match indicator {
            Indicator::Waiting => self.waiting,
            Indicator::Processing => self.processing,
            Indicator::Rate => self.rate,
        }
    }

    /// This mask with one indicator dropped.
    #[must_use]
    pub const fn without(self, indicator: Indicator) -> Self {
        let mut m = self;
        match indicator {
            Indicator::Waiting => m.waiting = false,
            Indicator::Processing => m.processing = false,
            Indicator::Rate => m.rate = false,
        }
        m
    }

    /// This mask with one indicator restored.
    #[must_use]
    pub const fn with(self, indicator: Indicator) -> Self {
        let mut m = self;
        match indicator {
            Indicator::Waiting => m.waiting = true,
            Indicator::Processing => m.processing = true,
            Indicator::Rate => m.rate = true,
        }
        m
    }

    /// Number of observable indicators (0–3).
    pub const fn count(self) -> usize {
        self.waiting as usize + self.processing as usize + self.rate as usize
    }

    /// `true` when every indicator is observable.
    pub const fn is_complete(self) -> bool {
        self.waiting && self.processing && self.rate
    }
}

impl Default for ObservedIndicators {
    fn default() -> Self {
        ObservedIndicators::all()
    }
}

impl fmt::Display for ObservedIndicators {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for ind in Indicator::ALL {
            if self.contains(ind) {
                if !first {
                    write!(f, "+")?;
                }
                write!(f, "{ind}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        for ind in Indicator::ALL {
            assert_eq!(ind.to_string().parse::<Indicator>().unwrap(), ind);
        }
        assert!("bogus".parse::<Indicator>().is_err());
        assert!("bogus"
            .parse::<Indicator>()
            .unwrap_err()
            .to_string()
            .contains("bogus"));
    }

    #[test]
    fn mask_set_operations() {
        let m = ObservedIndicators::all();
        assert!(m.is_complete());
        assert_eq!(m.count(), 3);
        let m = m.without(Indicator::Rate);
        assert!(!m.contains(Indicator::Rate));
        assert!(m.contains(Indicator::Waiting));
        assert_eq!(m.count(), 2);
        assert!(!m.is_complete());
        let m = m.with(Indicator::Rate);
        assert!(m.is_complete());
        assert_eq!(ObservedIndicators::none().count(), 0);
    }

    #[test]
    fn dropping_twice_is_idempotent() {
        let once = ObservedIndicators::all().without(Indicator::Waiting);
        let twice = once.without(Indicator::Waiting);
        assert_eq!(once, twice);
    }

    #[test]
    fn display_names_the_observed_subset() {
        let m = ObservedIndicators::all().without(Indicator::Processing);
        assert_eq!(m.to_string(), "waiting+rate");
        assert_eq!(ObservedIndicators::none().to_string(), "(none)");
    }

    #[test]
    fn serde_round_trip() {
        let m = ObservedIndicators::all().without(Indicator::Rate);
        let json = serde_json::to_string(&m).unwrap();
        let back: ObservedIndicators = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let ind: Indicator = serde_json::from_str("\"Processing\"").unwrap();
        assert_eq!(ind, Indicator::Processing);
    }
}
