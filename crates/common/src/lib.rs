//! Shared foundation types for the `edge-market` workspace.
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! * [`id`] — strongly-typed identifiers for microservices, edge clouds,
//!   users, bids, and rounds, so a `MicroserviceId` can never be confused
//!   with a `UserId` at compile time.
//! * [`units`] — [`units::Price`] and [`units::Resource`]
//!   newtypes over `f64` with validated constructors and total-order
//!   helpers, so monetary and capacity quantities never mix silently.
//! * [`indicator`] — the three demand indicators of §III and
//!   [`indicator::ObservedIndicators`] masks over them, shared by the
//!   simulator's sensor-dropout events and the estimator's degraded
//!   mode.
//! * [`rng`] — seeded, stream-splittable random number generation so that
//!   every experiment in the repository is reproducible bit-for-bit.
//! * [`error`] — the small shared error type used by validated
//!   constructors.
//!
//! # Examples
//!
//! ```
//! use edge_common::id::MicroserviceId;
//! use edge_common::units::{Price, Resource};
//!
//! # fn main() -> Result<(), edge_common::error::QuantityError> {
//! let seller = MicroserviceId::new(3);
//! let offer = Resource::new(12.5)?;
//! let ask = Price::new(21.0)?;
//! assert_eq!(format!("{seller} offers {offer} for {ask}"),
//!            "ms#3 offers 12.5u for $21.00");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod error;
pub mod id;
pub mod indicator;
pub mod rng;
pub mod units;

pub use error::QuantityError;
pub use id::{BidId, EdgeCloudId, MicroserviceId, PlatformId, Round, UserId};
pub use indicator::{Indicator, ObservedIndicators};
pub use rng::{derive_rng, fnv1a64, seeded_rng, DeterministicRng};
pub use units::{Price, Resource};
