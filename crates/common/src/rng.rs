//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (workload arrivals, bid
//! prices, demand draws) takes a [`DeterministicRng`] so that a single
//! top-level seed reproduces an entire experiment. [`derive_rng`] splits
//! independent named streams off a root seed, so adding a new consumer
//! never perturbs the draws seen by existing ones — figures stay stable
//! as the codebase grows.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG used throughout the workspace.
///
/// ChaCha8 is seedable, portable across platforms, and fast enough that it
/// never shows up in the auction's profile.
pub type DeterministicRng = ChaCha8Rng;

/// Creates the root RNG for an experiment from a single seed.
///
/// # Examples
///
/// ```
/// use edge_common::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> DeterministicRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent named stream from a root seed.
///
/// The stream label is hashed (FNV-1a) into the seed so that
/// `derive_rng(s, "arrivals")` and `derive_rng(s, "prices")` are
/// decorrelated, and each is stable under changes to the other.
///
/// # Examples
///
/// ```
/// use edge_common::rng::derive_rng;
/// use rand::Rng;
///
/// let mut arrivals = derive_rng(7, "arrivals");
/// let mut prices = derive_rng(7, "prices");
/// // Independent streams from the same root seed.
/// assert_ne!(arrivals.gen::<u64>(), prices.gen::<u64>());
/// ```
pub fn derive_rng(root_seed: u64, stream: &str) -> DeterministicRng {
    ChaCha8Rng::seed_from_u64(root_seed ^ fnv1a(stream.as_bytes()))
}

/// FNV-1a 64-bit hash of a byte string.
///
/// The workspace's digest primitive: stream-label mixing here, event-log
/// and network-tape digest chains downstream all fold through this.
/// Tiny, dependency-free, and stable across releases — never change the
/// constants, or every recorded log digest breaks.
///
/// # Examples
///
/// ```
/// use edge_common::rng::fnv1a64;
///
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// FNV-1a 64-bit hash — tiny, dependency-free, and stable across releases.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_reproducible() {
        let mut a = derive_rng(99, "arrivals");
        let mut b = derive_rng(99, "arrivals");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_are_independent_per_label() {
        let mut a = derive_rng(99, "arrivals");
        let mut b = derive_rng(99, "prices");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // And of "a" — standard published vector.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
