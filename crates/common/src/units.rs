//! Quantity newtypes: [`Price`] (money) and [`Resource`] (capacity units).
//!
//! Both wrap `f64` but are deliberately *not* interconvertible: a bid price
//! and a resource amount live in different dimensions. Division of a
//! [`Price`] by a [`Resource`] yields a bare `f64` unit price, which is the
//! quantity SSAM's greedy rule ranks bids by.
//!
//! Values are validated at the boundary ([`Price::new`] /
//! [`Resource::new`] reject NaN, infinities, and negatives) so the rest of
//! the workspace can rely on totals being well-ordered.

use crate::error::QuantityError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

fn validate(value: f64) -> Result<f64, QuantityError> {
    if !value.is_finite() {
        Err(QuantityError::NotFinite)
    } else if value < 0.0 {
        Err(QuantityError::Negative(value))
    } else {
        Ok(value)
    }
}

macro_rules! quantity_impls {
    ($name:ident, $unit_fmt:expr) => {
        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a validated quantity.
            ///
            /// # Errors
            ///
            /// Returns [`QuantityError::NotFinite`] for NaN/infinite input
            /// and [`QuantityError::Negative`] for negative input.
            pub fn new(value: f64) -> Result<Self, QuantityError> {
                validate(value).map(Self)
            }

            /// Creates a quantity without validation.
            ///
            /// Prefer [`new`](Self::new); this exists for arithmetic-heavy
            /// inner loops where inputs are already validated. Negative or
            /// non-finite values will still be *stored* and can poison
            /// comparisons downstream.
            pub const fn new_unchecked(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if this quantity is exactly zero.
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns the larger of two quantities (total order, NaN-free
            /// by construction).
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                if self.0 >= other.0 {
                    self
                } else {
                    other
                }
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                if self.0 <= other.0 {
                    self
                } else {
                    other
                }
            }

            /// Saturating subtraction: returns zero instead of going
            /// negative.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use edge_common::units::", stringify!($name), ";")]
            #[doc = concat!("let a = ", stringify!($name), "::new(1.0).unwrap();")]
            #[doc = concat!("let b = ", stringify!($name), "::new(3.0).unwrap();")]
            #[doc = concat!("assert_eq!(a.saturating_sub(b), ", stringify!($name), "::ZERO);")]
            /// ```
            #[must_use]
            pub fn saturating_sub(self, other: Self) -> Self {
                Self((self.0 - other.0).max(0.0))
            }

            /// Total-order comparison suitable for `sort_by` /
            /// `min_by`.
            pub fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::ZERO
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, $unit_fmt, self.0)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a $name>>(iter: I) -> $name {
                iter.copied().sum()
            }
        }
    };
}

/// A monetary amount (bid price, payment, cost) in abstract credits.
///
/// The paper draws bid prices from U\[10, 35\]; we keep the same abstract
/// unit. Display renders as dollars for readability.
///
/// # Examples
///
/// ```
/// use edge_common::units::Price;
/// # fn main() -> Result<(), edge_common::QuantityError> {
/// let a = Price::new(10.0)?;
/// let b = Price::new(2.5)?;
/// assert_eq!((a + b).value(), 12.5);
/// assert_eq!((a - b).value(), 7.5);
/// assert_eq!(format!("{a}"), "$10.00");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Price(f64);

quantity_impls!(Price, "${:.2}");

/// An amount of edge-cloud resources (abstract capacity units).
///
/// One unit corresponds to the paper's unit of `a_ij^t` — the amount of
/// resource a seller offers in one bid — and of `X^t`, the demand target.
///
/// # Examples
///
/// ```
/// use edge_common::units::Resource;
/// # fn main() -> Result<(), edge_common::QuantityError> {
/// let offered = Resource::new(7.0)?;
/// let demand = Resource::new(10.0)?;
/// assert_eq!(demand.saturating_sub(offered).value(), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Resource(f64);

quantity_impls!(Resource, "{}u");

impl Div<Resource> for Price {
    type Output = f64;

    /// Unit price: credits per resource unit. This is the key ranking
    /// quantity in SSAM's greedy rule (`∇_ij / U_ij(E)`).
    fn div(self, rhs: Resource) -> f64 {
        self.0 / rhs.0
    }
}

/// Absolute tolerance used by [`assert_money_eq!`](crate::assert_money_eq).
///
/// Payments and costs are sums of a handful of `f64` products drawn from
/// the paper's U\[10, 35\] price band, so any genuine difference dwarfs
/// this; it only absorbs association-order noise.
pub const MONEY_EPSILON: f64 = 1e-9;

/// Types [`assert_money_eq!`](crate::assert_money_eq) can compare: raw
/// `f64` values and the quantity newtypes.
pub trait MoneyValue {
    /// The raw `f64` behind the quantity.
    fn money_value(&self) -> f64;
}

impl MoneyValue for f64 {
    fn money_value(&self) -> f64 {
        *self
    }
}

impl MoneyValue for Price {
    fn money_value(&self) -> f64 {
        self.0
    }
}

impl MoneyValue for Resource {
    fn money_value(&self) -> f64 {
        self.0
    }
}

/// Asserts two monetary (or resource) quantities are equal up to
/// [`units::MONEY_EPSILON`](crate::units::MONEY_EPSILON).
///
/// Accepts any mix of `f64`, [`Price`], and [`Resource`] on either side.
/// Exact `==` on computed `f64` payments is a refactoring trap — any
/// re-association of the same sum can flip the last bit — so tests
/// assert through this instead.
///
/// # Examples
///
/// ```
/// use edge_common::assert_money_eq;
/// use edge_common::units::Price;
///
/// assert_money_eq!(Price::new(0.1).unwrap() + Price::new(0.2).unwrap(), 0.3);
/// assert_money_eq!(1.5f64, 1.5f64, "context {}", 42);
/// ```
#[macro_export]
macro_rules! assert_money_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $crate::units::MoneyValue::money_value(&$left);
        let r = $crate::units::MoneyValue::money_value(&$right);
        assert!(
            (l - r).abs() <= $crate::units::MONEY_EPSILON,
            "money assertion failed: `{}` = {l} vs `{}` = {r} (|Δ| = {:e})",
            stringify!($left),
            stringify!($right),
            (l - r).abs(),
        );
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let l = $crate::units::MoneyValue::money_value(&$left);
        let r = $crate::units::MoneyValue::money_value(&$right);
        assert!(
            (l - r).abs() <= $crate::units::MONEY_EPSILON,
            "money assertion failed: {l} vs {r} (|Δ| = {:e}): {}",
            (l - r).abs(),
            format_args!($($arg)+),
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_validate() {
        assert!(Price::new(0.0).is_ok());
        assert!(Price::new(10.5).is_ok());
        assert_eq!(Price::new(-0.1), Err(QuantityError::Negative(-0.1)));
        assert_eq!(Price::new(f64::INFINITY), Err(QuantityError::NotFinite));
        assert_eq!(Resource::new(f64::NAN), Err(QuantityError::NotFinite));
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Price::new(3.0).unwrap();
        let b = Price::new(1.5).unwrap();
        assert_eq!((a + b).value(), 4.5);
        assert_eq!((a - b).value(), 1.5);
        assert_eq!((a * 2.0).value(), 6.0);
        assert_eq!((a / 2.0).value(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 4.5);
        c -= b;
        assert_eq!(c.value(), 3.0);
    }

    #[test]
    fn unit_price_division() {
        let p = Price::new(12.0).unwrap();
        let r = Resource::new(4.0).unwrap();
        assert_eq!(p / r, 3.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Price = (1..=4).map(|i| Price::new(i as f64).unwrap()).sum();
        assert_eq!(total.value(), 10.0);
        let refs = [Resource::new(1.0).unwrap(), Resource::new(2.0).unwrap()];
        let total: Resource = refs.iter().sum();
        assert_eq!(total.value(), 3.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Price::new(21.0).unwrap().to_string(), "$21.00");
        assert_eq!(Resource::new(2.5).unwrap().to_string(), "2.5u");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Price::default(), Price::ZERO);
        assert_eq!(Resource::default(), Resource::ZERO);
        assert!(Resource::default().is_zero());
    }

    #[test]
    fn money_eq_tolerates_floating_point_noise() {
        // 0.1 + 0.2 != 0.3 exactly; the helper absorbs the ulp noise.
        assert_money_eq!(0.1f64 + 0.2, 0.3f64);
        assert_money_eq!(Price::new(0.1).unwrap() + Price::new(0.2).unwrap(), 0.3);
        assert_money_eq!(
            Resource::new(1.5).unwrap(),
            Resource::new(1.5).unwrap(),
            "with context {}",
            7
        );
    }

    #[test]
    #[should_panic(expected = "money assertion failed")]
    fn money_eq_rejects_real_differences() {
        assert_money_eq!(Price::new(10.0).unwrap(), 10.001f64);
    }

    #[test]
    fn serde_is_transparent() {
        let p = Price::new(10.25).unwrap();
        assert_eq!(serde_json::to_string(&p).unwrap(), "10.25");
        let back: Price = serde_json::from_str("10.25").unwrap();
        assert_eq!(back, p);
    }

    proptest! {
        #[test]
        fn saturating_sub_never_negative(a in 0.0f64..1e9, b in 0.0f64..1e9) {
            let a = Resource::new(a).unwrap();
            let b = Resource::new(b).unwrap();
            prop_assert!(a.saturating_sub(b).value() >= 0.0);
        }

        #[test]
        fn max_min_are_consistent(a in 0.0f64..1e9, b in 0.0f64..1e9) {
            let pa = Price::new(a).unwrap();
            let pb = Price::new(b).unwrap();
            prop_assert_eq!(pa.max(pb).value(), a.max(b));
            prop_assert_eq!(pa.min(pb).value(), a.min(b));
        }

        #[test]
        fn total_cmp_orders_like_f64(a in 0.0f64..1e9, b in 0.0f64..1e9) {
            let pa = Price::new(a).unwrap();
            let pb = Price::new(b).unwrap();
            prop_assert_eq!(pa.total_cmp(&pb), a.total_cmp(&b));
        }
    }
}
