//! Welfare accounting (Definition 4) and payment-overhead analysis.
//!
//! Definition 4: the social welfare is the aggregate utility of the
//! platform and the microservices; since payments cancel between them,
//! maximizing welfare is minimizing the social cost `Σ G·x`. This module
//! turns an outcome into an explicit ledger — per-seller utilities, the
//! platform's outlay, the welfare — and quantifies against [`crate::vcg`]
//! what SSAM's polynomial running time costs in efficiency and
//! overpayment.

use crate::error::AuctionError;
use crate::ssam::{run_ssam, SsamConfig, SsamOutcome};
use crate::vcg::run_vcg;
use crate::wsp::WspInstance;
use edge_common::id::MicroserviceId;
use serde::{Deserialize, Serialize};

/// The Definition 4 ledger of one single-stage outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WelfareReport {
    /// `Σ G·x` — the social cost the ILP minimizes.
    pub social_cost: f64,
    /// The platform's total outlay to sellers.
    pub total_payment: f64,
    /// Per-seller utilities `p_i − G_i` (always ≥ 0 by Theorem 5).
    pub seller_utilities: Vec<(MicroserviceId, f64)>,
    /// Aggregate seller surplus.
    pub seller_surplus: f64,
    /// Social welfare `−Σ G·x` (payments cancel, Definition 4).
    pub social_welfare: f64,
}

/// Builds the welfare ledger of an SSAM outcome.
pub fn welfare_report(outcome: &SsamOutcome) -> WelfareReport {
    let seller_utilities: Vec<(MicroserviceId, f64)> = outcome
        .winners
        .iter()
        .map(|w| (w.seller, w.payment.value() - w.price.value()))
        .collect();
    let seller_surplus = seller_utilities.iter().map(|(_, u)| u).sum();
    let social_cost = outcome.social_cost.value();
    WelfareReport {
        social_cost,
        total_payment: outcome.total_payment.value(),
        seller_utilities,
        seller_surplus,
        social_welfare: -social_cost,
    }
}

/// SSAM vs VCG on one instance: the price of polynomial time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverpaymentReport {
    /// SSAM's (greedy) social cost.
    pub ssam_cost: f64,
    /// VCG's (optimal) social cost.
    pub vcg_cost: f64,
    /// `ssam_cost / vcg_cost` — the realized approximation ratio.
    pub efficiency_ratio: f64,
    /// SSAM's total payments.
    pub ssam_payment: f64,
    /// VCG's total externality payments.
    pub vcg_payment: f64,
    /// `ssam_payment / vcg_payment` (∞ if VCG pays nothing).
    pub payment_ratio: f64,
}

/// Runs both mechanisms on the instance and compares.
///
/// # Errors
///
/// Propagates mechanism errors.
pub fn compare_with_vcg(
    instance: &WspInstance,
    config: &SsamConfig,
) -> Result<OverpaymentReport, AuctionError> {
    let ssam = run_ssam(instance, config)?;
    let vcg = run_vcg(instance)?;
    let vcg_cost = vcg.social_cost.value();
    let vcg_payment = vcg.total_payment.value();
    Ok(OverpaymentReport {
        ssam_cost: ssam.social_cost.value(),
        vcg_cost,
        efficiency_ratio: if vcg_cost > 0.0 {
            ssam.social_cost.value() / vcg_cost
        } else {
            1.0
        },
        ssam_payment: ssam.total_payment.value(),
        vcg_payment,
        payment_ratio: if vcg_payment > 0.0 {
            ssam.total_payment.value() / vcg_payment
        } else {
            f64::INFINITY
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Bid;
    use edge_common::id::BidId;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn instance() -> WspInstance {
        WspInstance::new(
            5,
            vec![
                bid(0, 0, 3, 6.0),
                bid(1, 0, 2, 3.0),
                bid(2, 0, 4, 10.0),
                bid(3, 0, 2, 8.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ledger_is_internally_consistent() {
        let outcome = run_ssam(&instance(), &SsamConfig::default()).unwrap();
        let report = welfare_report(&outcome);
        assert_eq!(report.social_welfare, -report.social_cost);
        let surplus: f64 = report.seller_utilities.iter().map(|(_, u)| u).sum();
        assert!((surplus - report.seller_surplus).abs() < 1e-9);
        assert!(
            (report.total_payment - report.social_cost - report.seller_surplus).abs() < 1e-9,
            "payments must equal cost plus surplus"
        );
        // Theorem 5 ⇒ non-negative utilities.
        assert!(report.seller_utilities.iter().all(|(_, u)| *u >= -1e-9));
    }

    #[test]
    fn vcg_comparison_bounds() {
        let report = compare_with_vcg(&instance(), &SsamConfig::default()).unwrap();
        assert!(report.efficiency_ratio >= 1.0 - 1e-9, "{report:?}");
        assert!(report.ssam_cost >= report.vcg_cost - 1e-9);
        assert!(report.vcg_payment >= report.vcg_cost - 1e-9, "VCG is IR");
        assert!(report.payment_ratio.is_finite());
    }

    #[test]
    fn randomized_comparison_keeps_efficiency_within_certificate() {
        use rand::{Rng, SeedableRng};
        for seed in 0..15u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(3..9);
            let bids: Vec<Bid> = (0..n)
                .map(|s| bid(s, 0, rng.gen_range(1..5), rng.gen_range(2..30) as f64))
                .collect();
            let supply: u64 = bids.iter().map(|b| b.amount).sum();
            let inst = WspInstance::new(rng.gen_range(1..=supply), bids).unwrap();
            let outcome = run_ssam(&inst, &SsamConfig::default()).unwrap();
            let report = compare_with_vcg(&inst, &SsamConfig::default()).unwrap();
            assert!(
                report.efficiency_ratio <= outcome.certificate.pi + 1e-9,
                "seed {seed}: ratio {} beyond certificate {}",
                report.efficiency_ratio,
                outcome.certificate.pi
            );
        }
    }
}
