//! The cloud-sharded, cache-friendly SoA bid arena behind SSAM's greedy.
//!
//! [`crate::ssam`]'s lazy-deletion heap is *semantically* an argmin: each
//! iteration it returns the unsold, safe bid minimizing the greedy key
//! `(∇/U, seller, id)` with `∇/U = price / min(amount, remaining)`
//! (DESIGN.md §5 — lazy deletion and permanent unsafe-discards are pure
//! optimizations over that functional contract). This module implements
//! the same argmin over a **structure-of-arrays arena** partitioned into
//! *lanes*:
//!
//! * Bids are grouped by `(shard, amount class)`. Sellers map to shards
//!   in contiguous blocks of the (sorted) seller table — the stand-in
//!   for "edge cloud / resource region" locality. Every lane is sorted
//!   once by `(price, seller, id)` under the total order of
//!   `f64::total_cmp`.
//! * Within a lane all bids share one `amount`, so they share the
//!   denominator `min(amount, remaining)` at every state — price order
//!   **is** key order, for any `remaining`. The lane head (first entry
//!   past the cursor) is therefore the lane's minimum, and the global
//!   argmin is the minimum over lane heads with the heap's exact
//!   `(key, seller, id)` tie-break.
//! * Cursors only move forward: a head entry whose seller already sold
//!   is dead forever, and an *unsafe* head is dead forever by the
//!   "once unsafe, always unsafe" monotonicity the heap already relies
//!   on — so a skip is a permanent cursor advance, never a re-scan.
//!
//! One pedantic wrinkle keeps bit-exactness airtight: two *different*
//! prices can divide to the *same* f64 key (rounding). The heap would
//! then tie-break on `(seller, id)` across those prices, while a lane
//! orders them by price. [`BidArena::pop_best`] detects the case (a
//! binary search to the next price run, almost never taken) and scans
//! the colliding runs for the true `(seller, id)` minimum.
//!
//! Sharding never changes results: shards only partition lanes, and the
//! merge compares **all** lane heads under the global tie-break, so any
//! shard count — including 1 — pops the identical sequence. What shards
//! buy is parallel arena *construction* (each shard's lanes sort
//! independently) and cache locality at scale; what lanes buy is O(L)
//! replay *forking* — a payment replay clones the cursor vector instead
//! of rebuilding an O(n) heap (see `ssam.rs`'s batched replays).
//!
//! The arena is an internal engine: `ssam.rs` falls back to the heap
//! when an instance is not lane-friendly (more distinct amounts than
//! [`crate::pricing`]'s lane-class cap, or ids beyond `u32`), and the
//! differential suite pins both engines to the scan oracle bit-for-bit.

use crate::bid::Bid;
use crate::ssam::HeapStats;
use edge_common::id::MicroserviceId;
use std::collections::BTreeMap;

/// Sellers of one auction, sorted ascending, with their best offers —
/// the slot-indexed (dense) mirror of the `per_seller_best` map.
#[derive(Debug)]
pub(crate) struct SellerTable {
    ids: Vec<MicroserviceId>,
    max: Vec<u64>,
}

impl SellerTable {
    /// Builds the table from the feasibility pass's per-seller best map
    /// (already sorted — `BTreeMap` iterates in seller order).
    pub(crate) fn new(per_seller_best: &BTreeMap<MicroserviceId, u64>) -> Self {
        let mut ids = Vec::with_capacity(per_seller_best.len());
        let mut max = Vec::with_capacity(per_seller_best.len());
        for (&s, &m) in per_seller_best {
            ids.push(s);
            max.push(m);
        }
        SellerTable { ids, max }
    }

    /// Number of sellers (slots).
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// The slot of a seller known to be in the table.
    pub(crate) fn slot_of(&self, seller: MicroserviceId) -> u32 {
        self.ids
            .binary_search(&seller)
            .expect("seller is in the table") as u32
    }

    /// The seller occupying `slot`.
    pub(crate) fn id_of(&self, slot: u32) -> MicroserviceId {
        self.ids[slot as usize]
    }

    /// The best (max-amount) offer of the seller in `slot`.
    pub(crate) fn max_of(&self, slot: u32) -> u64 {
        self.max[slot as usize]
    }

    /// Σ best offers — the initial `total_max` of a greedy run.
    pub(crate) fn total_max(&self) -> u64 {
        self.max.iter().sum()
    }
}

/// Maps an `f64`'s bits so unsigned order equals `f64::total_cmp` order.
fn total_order_key(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// One candidate bid the argmin returned: enough to reconstruct the bid
/// (`cand` indexes the caller's candidate list) and to sell it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pick {
    /// Lane the entry lives in.
    pub lane: u32,
    /// Position within the lane's column range (absolute column index).
    pub pos: u32,
    /// The greedy key `price / min(amount, remaining)` — exactly the
    /// `r_k` the heap path computes, same arithmetic, same bits.
    pub key: f64,
    /// Seller slot.
    pub slot: u32,
    /// Bid id (raw index).
    pub bid: u32,
    /// Index into the candidate list the arena was built from.
    pub cand: u32,
    /// The lane's amount class (= the bid's amount).
    pub amount: u64,
}

/// The SoA lane arena. Columns are contiguous across lanes;
/// `lane_start` delimits each lane's range. Lanes are shard-major,
/// class-minor: `lane = shard * classes.len() + class_index`.
#[derive(Debug)]
pub(crate) struct BidArena {
    classes: Vec<u64>,
    lane_start: Vec<u32>,
    price: Vec<f64>,
    slot: Vec<u32>,
    bid: Vec<u32>,
    cand: Vec<u32>,
}

/// Scatter entry used during construction: sort key is
/// `(total-order price bits, slot, bid)` — unique per entry because a
/// seller cannot reuse a bid id.
type BuildEntry = (u64, u32, u32, u32);

impl BidArena {
    /// Builds the arena over `candidates`, or `None` when the instance
    /// is not lane-friendly: more distinct amounts than `class_cap`
    /// (each class costs a lane per shard, and the merge is O(lanes)
    /// per pop), or ids/positions beyond `u32`.
    pub(crate) fn build(
        candidates: &[&Bid],
        table: &SellerTable,
        shards: usize,
        class_cap: usize,
    ) -> Option<BidArena> {
        if candidates.len() >= u32::MAX as usize || table.len() >= u32::MAX as usize {
            return None;
        }
        let mut classes: Vec<u64> = candidates.iter().map(|b| b.amount).collect();
        classes.sort_unstable();
        classes.dedup();
        if classes.is_empty() || classes.len() > class_cap {
            return (classes.is_empty()).then(|| BidArena {
                classes,
                lane_start: vec![0],
                price: Vec::new(),
                slot: Vec::new(),
                bid: Vec::new(),
                cand: Vec::new(),
            });
        }
        if candidates.iter().any(|b| b.id.index() >= u32::MAX as usize) {
            return None;
        }

        let n_classes = classes.len();
        let n_slots = table.len();
        let shards = shards.clamp(1, n_slots.max(1));
        let lanes = shards * n_classes;

        // Slot → shard in contiguous blocks over the sorted seller
        // table; class by binary search. One counting pass, one scatter.
        let lane_of = |slot: u32, amount: u64| -> usize {
            let shard = (slot as usize * shards) / n_slots;
            let class = classes.binary_search(&amount).expect("amount is a class");
            shard * n_classes + class
        };
        let mut counts = vec![0u32; lanes];
        let mut entry_lane = Vec::with_capacity(candidates.len());
        for b in candidates {
            let lane = lane_of(table.slot_of(b.seller), b.amount);
            counts[lane] += 1;
            entry_lane.push(lane as u32);
        }
        let mut lane_start = Vec::with_capacity(lanes + 1);
        let mut acc = 0u32;
        for &c in &counts {
            lane_start.push(acc);
            acc += c;
        }
        lane_start.push(acc);

        let mut entries: Vec<BuildEntry> = vec![(0, 0, 0, 0); candidates.len()];
        let mut fill = lane_start[..lanes].to_vec();
        for (i, b) in candidates.iter().enumerate() {
            let lane = entry_lane[i] as usize;
            let at = fill[lane] as usize;
            fill[lane] += 1;
            entries[at] = (
                total_order_key(b.price.value()),
                table.slot_of(b.seller),
                b.id.index() as u32,
                i as u32,
            );
        }

        sort_shards(&mut entries, &lane_start, shards, n_classes);

        let mut price = Vec::with_capacity(entries.len());
        let mut slot = Vec::with_capacity(entries.len());
        let mut bid = Vec::with_capacity(entries.len());
        let mut cand = Vec::with_capacity(entries.len());
        for &(_, s, b, c) in &entries {
            price.push(candidates[c as usize].price.value());
            slot.push(s);
            bid.push(b);
            cand.push(c);
        }
        Some(BidArena {
            classes,
            lane_start,
            price,
            slot,
            bid,
            cand,
        })
    }

    /// Number of lanes (shards × amount classes).
    pub(crate) fn lanes(&self) -> usize {
        self.lane_start.len() - 1
    }

    /// A fresh cursor vector: every lane at its own start offset
    /// (cursors are absolute column indices).
    pub(crate) fn initial_cursors(&self) -> Vec<u32> {
        self.lane_start[..self.lanes()].to_vec()
    }

    /// Marks a picked entry consumed when it sits exactly at the lane
    /// head (its seller just sold, so the skip is permanent). A deeper
    /// pick — possible only through the key-collision path — stays and
    /// dies lazily instead.
    pub(crate) fn consume(&self, cursors: &mut [u32], pick: &Pick) {
        if cursors[pick.lane as usize] == pick.pos {
            cursors[pick.lane as usize] = pick.pos + 1;
        }
    }

    /// The unsold, safe bid minimizing `(key, seller, id)` — the exact
    /// functional contract of the heap's `pop_best_safe`, over lane
    /// cursors. `sold` must answer per-slot liveness (including
    /// excluded-seller and replay-epoch rules); `safe` is the
    /// feasibility filter for `(amount, slot)`. Skipped heads advance
    /// `cursors` permanently; counters land in `stats` (`pops` counts
    /// examined entries, discards as in the heap, `repushes` stays 0 —
    /// lane keys are computed fresh each pop and cannot go stale).
    pub(crate) fn pop_best(
        &self,
        cursors: &mut [u32],
        remaining: u64,
        stats: &mut HeapStats,
        sold: impl Fn(u32) -> bool,
        safe: impl Fn(u64, u32) -> bool,
    ) -> Option<Pick> {
        stats.scans += 1;
        stats.head_reads += cursors.len() as u64;
        let n_classes = self.classes.len();
        let mut best: Option<Pick> = None;
        for (lane, cursor) in cursors.iter_mut().enumerate() {
            let amount = self.classes[lane % n_classes];
            let end = self.lane_start[lane + 1];
            let mut pos = *cursor;
            // Permanent skips: sold sellers and unsafe entries.
            while pos < end {
                let s = self.slot[pos as usize];
                if sold(s) {
                    stats.pops += 1;
                    stats.sold_discards += 1;
                    pos += 1;
                    continue;
                }
                if !safe(amount, s) {
                    stats.pops += 1;
                    stats.unsafe_discards += 1;
                    pos += 1;
                    continue;
                }
                break;
            }
            *cursor = pos;
            if pos >= end {
                continue;
            }
            let denom = amount.min(remaining) as f64;
            let key = self.price[pos as usize] / denom;
            let mut lane_best = Pick {
                lane: lane as u32,
                pos,
                key,
                slot: self.slot[pos as usize],
                bid: self.bid[pos as usize],
                cand: self.cand[pos as usize],
                amount,
            };
            self.resolve_key_collisions(&mut lane_best, end, denom, &sold, |s| safe(amount, s));
            let better = match &best {
                None => true,
                Some(b) => lane_best
                    .key
                    .total_cmp(&b.key)
                    .then_with(|| lane_best.slot.cmp(&b.slot))
                    .then_with(|| lane_best.bid.cmp(&b.bid))
                    .is_lt(),
            };
            if better {
                best = Some(lane_best);
            }
        }
        if best.is_some() {
            stats.pops += 1;
        }
        best
    }

    /// Rare-path exactness: if a *different* price later in the lane
    /// divides to the same f64 key, the heap would tie-break on
    /// `(seller, id)` across the colliding prices — scan those runs for
    /// the true minimum. The first binary search + one division decide
    /// "no collision" (the overwhelmingly common case) in O(log n).
    fn resolve_key_collisions(
        &self,
        lane_best: &mut Pick,
        end: u32,
        denom: f64,
        sold: &impl Fn(u32) -> bool,
        safe: impl Fn(u32) -> bool,
    ) {
        let mut run_start = lane_best.pos;
        loop {
            let run_bits = self.price[run_start as usize].to_bits();
            let range = &self.price[run_start as usize..end as usize];
            let next = run_start + range.partition_point(|p| p.to_bits() == run_bits) as u32;
            if next >= end {
                return;
            }
            let key2 = self.price[next as usize] / denom;
            if key2.total_cmp(&lane_best.key).is_ne() {
                return;
            }
            // Colliding run: its first *valid* entry is its (seller, id)
            // minimum among valid entries only if we walk in order.
            let next_bits = self.price[next as usize].to_bits();
            let mut t = next;
            while t < end && self.price[t as usize].to_bits() == next_bits {
                let s = self.slot[t as usize];
                if !sold(s) && safe(s) {
                    if (self.slot[t as usize], self.bid[t as usize])
                        < (lane_best.slot, lane_best.bid)
                    {
                        lane_best.pos = t;
                        lane_best.slot = self.slot[t as usize];
                        lane_best.bid = self.bid[t as usize];
                        lane_best.cand = self.cand[t as usize];
                    }
                    break;
                }
                t += 1;
            }
            run_start = next;
        }
    }
}

/// Sorts every lane's range by `(price, seller, id)`; shards sort in
/// parallel when the pool allows (the comparator is total and keys are
/// unique, so thread count cannot change the result).
fn sort_shards(entries: &mut [BuildEntry], lane_start: &[u32], shards: usize, n_classes: usize) {
    let sort_shard = |chunk: &mut [BuildEntry], shard: usize, base: u32| {
        for class in 0..n_classes {
            let lane = shard * n_classes + class;
            let lo = (lane_start[lane] - base) as usize;
            let hi = (lane_start[lane + 1] - base) as usize;
            chunk[lo..hi].sort_unstable();
        }
    };
    if shards <= 1 || crate::pricing::current_pricing_threads() <= 1 {
        for shard in 0..shards {
            let base = 0;
            sort_shard(entries, shard, base);
        }
        return;
    }
    // Split the columns at shard boundaries; each chunk is one shard's
    // contiguous lane block.
    let mut chunks: Vec<(usize, u32, &mut [BuildEntry])> = Vec::with_capacity(shards);
    let mut rest = entries;
    let mut consumed = 0u32;
    for shard in 0..shards {
        let shard_end = lane_start[(shard + 1) * n_classes];
        let take = (shard_end - consumed) as usize;
        let (chunk, tail) = rest.split_at_mut(take);
        chunks.push((shard, consumed, chunk));
        consumed = shard_end;
        rest = tail;
    }
    crossbeam::scope(|scope| {
        for (shard, base, chunk) in chunks {
            scope.spawn(move |_| sort_shard(chunk, shard, base));
        }
    })
    .expect("shard sort scope panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::BidId;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn table_of(bids: &[Bid]) -> SellerTable {
        let mut best = BTreeMap::new();
        for b in bids {
            let e = best.entry(b.seller).or_insert(0u64);
            *e = (*e).max(b.amount);
        }
        SellerTable::new(&best)
    }

    #[test]
    fn total_order_key_matches_total_cmp() {
        let values = [-1.5, -0.0, 0.0, 0.5, 1.0, f64::MAX];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    total_order_key(a).cmp(&total_order_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn arena_pops_in_key_order() {
        let bids = vec![
            bid(0, 0, 2, 6.0), // $3/u
            bid(1, 0, 2, 4.0), // $2/u  ← first
            bid(2, 0, 3, 9.0), // $3/u, bigger class
        ];
        let refs: Vec<&Bid> = bids.iter().collect();
        let table = table_of(&bids);
        let arena = BidArena::build(&refs, &table, 1, 64).unwrap();
        let mut cursors = arena.initial_cursors();
        let mut stats = HeapStats::default();
        let pick = arena
            .pop_best(&mut cursors, 7, &mut stats, |_| false, |_, _| true)
            .unwrap();
        assert_eq!(table.id_of(pick.slot), MicroserviceId::new(1));
        assert_eq!(pick.key, 2.0);
        assert!(stats.pops > 0);
    }

    #[test]
    fn sharding_does_not_change_pop_order() {
        let bids: Vec<Bid> = (0..40)
            .map(|s| bid(s, 0, 1 + (s as u64 % 3), 1.0 + (s as f64 * 7.0) % 13.0))
            .collect();
        let refs: Vec<&Bid> = bids.iter().collect();
        let table = table_of(&bids);
        let pops_at = |shards: usize| {
            let arena = BidArena::build(&refs, &table, shards, 64).unwrap();
            let mut cursors = arena.initial_cursors();
            let mut stats = HeapStats::default();
            let mut sold = vec![false; table.len()];
            let mut order = Vec::new();
            while let Some(p) = arena.pop_best(
                &mut cursors,
                100,
                &mut stats,
                |s| sold[s as usize],
                |_, _| true,
            ) {
                sold[p.slot as usize] = true;
                arena.consume(&mut cursors, &p);
                order.push((p.slot, p.bid));
            }
            order
        };
        assert_eq!(pops_at(1), pops_at(4));
        assert_eq!(pops_at(1).len(), 40);
    }

    #[test]
    fn class_cap_refuses_wide_instances() {
        let bids: Vec<Bid> = (0..10).map(|s| bid(s, 0, 1 + s as u64, 5.0)).collect();
        let refs: Vec<&Bid> = bids.iter().collect();
        let table = table_of(&bids);
        assert!(BidArena::build(&refs, &table, 1, 4).is_none());
        assert!(BidArena::build(&refs, &table, 1, 64).is_some());
    }
}
