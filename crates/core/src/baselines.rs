//! Baseline mechanisms the paper's introduction argues against, plus an
//! ablation of SSAM's greedy rule.
//!
//! * [`run_fixed_price`] — the "pricing" alternative of §I: the platform
//!   posts a flat unit price; sellers accept iff their unit cost is at or
//!   below it; the platform buys in seller-id order (no optimization).
//!   Under-pricing fails to cover; over-pricing overpays — exactly the
//!   trial-and-error pathology the auction avoids.
//! * [`run_random_selection`] — accepts random bids until covered; the
//!   floor any reasonable mechanism must beat.
//! * [`run_price_greedy`] — greedy on *total* price instead of price per
//!   marginal unit: the ablation showing SSAM's ranking rule matters.

use crate::bid::Bid;
use crate::error::AuctionError;
use crate::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of a baseline mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// Accepted `(seller, bid, contribution)` triples in acceptance
    /// order.
    pub accepted: Vec<(MicroserviceId, BidId, u64)>,
    /// Units covered (may fall short of the demand for fixed pricing).
    pub covered: u64,
    /// The demand that was targeted.
    pub demand: u64,
    /// Σ true prices of accepted bids.
    pub social_cost: Price,
    /// Σ payments made by the platform.
    pub total_payment: Price,
    /// `true` iff the demand was fully covered.
    pub satisfied: bool,
}

fn finish(
    accepted: Vec<(MicroserviceId, BidId, u64)>,
    covered: u64,
    demand: u64,
    social_cost: Price,
    total_payment: Price,
) -> BaselineOutcome {
    BaselineOutcome {
        accepted,
        covered,
        demand,
        social_cost,
        total_payment,
        satisfied: covered >= demand,
    }
}

/// The posted-price baseline. Sellers whose cheapest-per-unit bid asks at
/// most `unit_price` accept; the platform walks them in seller-id order
/// and pays the *posted* price per contributed unit.
///
/// # Panics
///
/// Panics if `unit_price` is negative or not finite.
pub fn run_fixed_price(instance: &WspInstance, unit_price: f64) -> BaselineOutcome {
    assert!(
        unit_price.is_finite() && unit_price >= 0.0,
        "posted price must be a valid price"
    );
    let demand = instance.demand();
    let mut covered = 0u64;
    let mut accepted = Vec::new();
    let mut social_cost = Price::ZERO;
    let mut total_payment = Price::ZERO;

    for group in instance.groups() {
        if covered >= demand {
            break;
        }
        // The seller accepts with its best (cheapest-per-unit) bid that
        // clears the posted price.
        let best: Option<&Bid> = group
            .iter()
            .filter(|b| b.unit_price() <= unit_price)
            .min_by(|a, b| a.unit_price().total_cmp(&b.unit_price()));
        if let Some(bid) = best {
            let contribution = bid.amount.min(demand - covered);
            covered += contribution;
            social_cost += bid.price * (contribution as f64 / bid.amount as f64);
            total_payment += Price::new_unchecked(unit_price * contribution as f64);
            accepted.push((bid.seller, bid.id, contribution));
        }
    }
    finish(accepted, covered, demand, social_cost, total_payment)
}

/// Random acceptance: shuffles all bids, accepts each bid whose seller
/// has not sold yet, until the demand is covered. Pays each accepted bid
/// its asking price.
pub fn run_random_selection<R: Rng + ?Sized>(
    instance: &WspInstance,
    rng: &mut R,
) -> Result<BaselineOutcome, AuctionError> {
    let demand = instance.demand();
    let mut bids: Vec<&Bid> = instance.bids().collect();
    bids.shuffle(rng);
    let mut used: Vec<MicroserviceId> = Vec::new();
    let mut covered = 0u64;
    let mut accepted = Vec::new();
    let mut social_cost = Price::ZERO;
    for bid in bids {
        if covered >= demand {
            break;
        }
        if used.contains(&bid.seller) {
            continue;
        }
        used.push(bid.seller);
        let contribution = bid.amount.min(demand - covered);
        covered += contribution;
        social_cost += bid.price;
        accepted.push((bid.seller, bid.id, contribution));
    }
    if covered < demand {
        return Err(AuctionError::InfeasibleDemand {
            demand,
            supply: covered,
        });
    }
    Ok(finish(accepted, covered, demand, social_cost, social_cost))
}

/// Ablation: greedy on total price, ignoring how much each bid actually
/// contributes. Pays asking prices.
pub fn run_price_greedy(instance: &WspInstance) -> Result<BaselineOutcome, AuctionError> {
    let demand = instance.demand();
    let mut bids: Vec<&Bid> = instance.bids().collect();
    bids.sort_by(|a, b| {
        a.price
            .total_cmp(&b.price)
            .then(a.seller.cmp(&b.seller))
            .then(a.id.cmp(&b.id))
    });
    let mut used: Vec<MicroserviceId> = Vec::new();
    let mut covered = 0u64;
    let mut accepted = Vec::new();
    let mut social_cost = Price::ZERO;
    for bid in bids {
        if covered >= demand {
            break;
        }
        if used.contains(&bid.seller) {
            continue;
        }
        used.push(bid.seller);
        let contribution = bid.amount.min(demand - covered);
        covered += contribution;
        social_cost += bid.price;
        accepted.push((bid.seller, bid.id, contribution));
    }
    if covered < demand {
        return Err(AuctionError::InfeasibleDemand {
            demand,
            supply: covered,
        });
    }
    Ok(finish(accepted, covered, demand, social_cost, social_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssam::{run_ssam, SsamConfig};
    use edge_common::rng::seeded_rng;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn instance() -> WspInstance {
        WspInstance::new(
            5,
            vec![
                bid(0, 0, 2, 8.0),  // $4/u
                bid(0, 1, 3, 6.0),  // $2/u
                bid(1, 0, 2, 3.0),  // $1.5/u
                bid(2, 0, 4, 10.0), // $2.5/u
            ],
        )
        .unwrap()
    }

    #[test]
    fn fixed_price_underpricing_fails_to_cover() {
        let out = run_fixed_price(&instance(), 1.0);
        assert!(!out.satisfied);
        assert_eq!(out.covered, 0);
    }

    #[test]
    fn fixed_price_overpricing_overpays() {
        let out = run_fixed_price(&instance(), 10.0);
        assert!(out.satisfied);
        // Pays $10/unit for 5 units = $50 — far above the auction.
        assert!((out.total_payment.value() - 50.0).abs() < 1e-9);
        let ssam = run_ssam(&instance(), &SsamConfig::default()).unwrap();
        assert!(ssam.total_payment < out.total_payment);
    }

    #[test]
    fn fixed_price_moderate_covers_at_posted_price() {
        let out = run_fixed_price(&instance(), 2.0);
        // Accepting sellers: 0 (bid1 @$2/u) and 1 (@$1.5/u): 3 + 2 = 5.
        assert!(out.satisfied);
        assert_eq!(out.covered, 5);
        assert!((out.total_payment.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn random_selection_covers_or_errors() {
        let mut rng = seeded_rng(55);
        for _ in 0..20 {
            let out = run_random_selection(&instance(), &mut rng).unwrap();
            assert!(out.satisfied);
            assert_eq!(out.covered, 5);
            // At most one bid per seller.
            let mut sellers: Vec<_> = out.accepted.iter().map(|(s, _, _)| *s).collect();
            sellers.sort();
            sellers.dedup();
            assert_eq!(sellers.len(), out.accepted.len());
        }
    }

    #[test]
    fn random_is_no_cheaper_than_ssam_on_average() {
        let mut rng = seeded_rng(56);
        let ssam = run_ssam(&instance(), &SsamConfig::default()).unwrap();
        let n = 200;
        let avg: f64 = (0..n)
            .map(|_| {
                run_random_selection(&instance(), &mut rng)
                    .unwrap()
                    .social_cost
                    .value()
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            ssam.social_cost.value() <= avg + 1e-9,
            "ssam {} vs random avg {avg}",
            ssam.social_cost.value()
        );
    }

    #[test]
    fn price_greedy_is_fooled_by_small_cheap_bids() {
        // A tiny $1 bid looks attractive to total-price greedy but
        // contributes little; SSAM ranks by unit price instead.
        let inst = WspInstance::new(
            4,
            vec![
                bid(0, 0, 1, 1.0), // cheapest total, worst leverage
                bid(1, 0, 4, 6.0), // $1.5/u, covers everything
                bid(2, 0, 2, 5.0),
            ],
        )
        .unwrap();
        let greedy = run_price_greedy(&inst).unwrap();
        let ssam = run_ssam(&inst, &SsamConfig::default()).unwrap();
        assert!(ssam.social_cost <= greedy.social_cost);
        // SSAM: $1 bid (1u at $1/u) then the $6 bid covering the rest.
        assert_eq!(ssam.social_cost.value(), 7.0);
        assert_eq!(greedy.social_cost.value(), 12.0);
    }

    #[test]
    fn price_greedy_respects_one_bid_per_seller() {
        let out = run_price_greedy(&instance()).unwrap();
        let mut sellers: Vec<_> = out.accepted.iter().map(|(s, _, _)| *s).collect();
        sellers.sort();
        sellers.dedup();
        assert_eq!(sellers.len(), out.accepted.len());
    }

    #[test]
    #[should_panic(expected = "posted price")]
    fn fixed_price_rejects_nan() {
        run_fixed_price(&instance(), f64::NAN);
    }
}
