//! Bids and sellers — the market's vocabulary.
//!
//! In the paper's reverse auction a *seller* is a microservice willing to
//! yield occupied resources; at each round it may submit up to `J`
//! alternative [`Bid`]s, each an (amount, price) pair: "I will give up
//! `amount` resource units for `price` credits this round". At most one
//! bid per seller can win per round (constraint (9)); a seller's total
//! yielded units across rounds are capped by its capacity `Θ_i`
//! (constraint (11)); and it only participates inside its availability
//! window `[t⁻, t⁺]`.

use crate::error::AuctionError;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use serde::{Deserialize, Serialize};

/// One alternative bid of one seller for one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bid {
    /// The selling microservice.
    pub seller: MicroserviceId,
    /// Index of this bid within the seller's alternatives (`j`).
    pub id: BidId,
    /// Resource units offered (`a_ij^t`), on the integer grid.
    pub amount: u64,
    /// Asking price for the full amount (`J_ij^t`).
    pub price: Price,
}

impl Bid {
    /// Creates a validated bid.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::ZeroAmountBid`] if `amount == 0`.
    /// * [`AuctionError::InvalidPrice`] if `price` is negative or not
    ///   finite.
    pub fn new(
        seller: MicroserviceId,
        id: BidId,
        amount: u64,
        price: f64,
    ) -> Result<Self, AuctionError> {
        if amount == 0 {
            return Err(AuctionError::ZeroAmountBid);
        }
        let price = Price::new(price).map_err(|_| AuctionError::InvalidPrice(price))?;
        Ok(Bid {
            seller,
            id,
            amount,
            price,
        })
    }

    /// Price per resource unit — the quantity SSAM ranks by when the
    /// whole amount contributes.
    pub fn unit_price(&self) -> f64 {
        self.price.value() / self.amount as f64
    }
}

/// A seller's standing parameters across the whole horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Seller {
    /// The microservice acting as seller.
    pub id: MicroserviceId,
    /// Long-run capacity `Θ_i`: total units this seller may yield across
    /// all rounds (constraint (11)).
    pub capacity: u64,
    /// Availability window `[t⁻, t⁺]` (inclusive round indices).
    pub window: (u64, u64),
}

impl Seller {
    /// Creates a validated seller profile.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidWindow`] if the window is inverted.
    pub fn new(
        id: MicroserviceId,
        capacity: u64,
        window: (u64, u64),
    ) -> Result<Self, AuctionError> {
        if window.0 > window.1 {
            return Err(AuctionError::InvalidWindow {
                start: window.0,
                end: window.1,
            });
        }
        Ok(Seller {
            id,
            capacity,
            window,
        })
    }

    /// Whether the seller participates in round `t`.
    pub fn available_at(&self, t: u64) -> bool {
        self.window.0 <= t && t <= self.window.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bid_validation() {
        assert_eq!(
            Bid::new(MicroserviceId::new(0), BidId::new(0), 0, 5.0),
            Err(AuctionError::ZeroAmountBid)
        );
        assert_eq!(
            Bid::new(MicroserviceId::new(0), BidId::new(0), 2, -1.0),
            Err(AuctionError::InvalidPrice(-1.0))
        );
        assert!(Bid::new(MicroserviceId::new(0), BidId::new(0), 2, f64::NAN).is_err());
        let b = Bid::new(MicroserviceId::new(0), BidId::new(1), 4, 10.0).unwrap();
        assert_eq!(b.unit_price(), 2.5);
    }

    #[test]
    fn seller_window() {
        let s = Seller::new(MicroserviceId::new(1), 20, (2, 5)).unwrap();
        assert!(!s.available_at(1));
        assert!(s.available_at(2));
        assert!(s.available_at(5));
        assert!(!s.available_at(6));
        assert_eq!(
            Seller::new(MicroserviceId::new(1), 20, (5, 2)),
            Err(AuctionError::InvalidWindow { start: 5, end: 2 })
        );
    }

    #[test]
    fn bid_serde_round_trip() {
        let b = Bid::new(MicroserviceId::new(3), BidId::new(1), 7, 21.5).unwrap();
        let json = serde_json::to_string(&b).unwrap();
        let back: Bid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }
}
