//! Budget-limited auctions.
//!
//! §IV of the paper: "This process continues until either the total
//! budget 𝒲 is depleted or the last microservice has been processed."
//! This module wraps SSAM with that depletion rule: winners are accepted
//! in greedy order while the *cumulative payment* fits the platform's
//! budget; the first winner that would overshoot is dropped along with
//! everything after it.
//!
//! Budget-feasibility interacts with incentives: with a hard budget the
//! exact-threshold payments of [`crate::ssam`] are no longer fully
//! truthful (a classic result — budget-feasible reverse auctions need
//! proportional-share payment rules, cf. Singer 2010). We implement the
//! paper's simple depletion semantics and expose how much demand was
//! left uncovered so callers can reason about the trade-off; the
//! property suite documents (rather than hides) the truthfulness caveat.
//!
//! # Examples
//!
//! ```
//! use edge_auction::bid::Bid;
//! use edge_auction::budget::{run_budgeted_ssam, BudgetedOutcome};
//! use edge_auction::ssam::SsamConfig;
//! use edge_auction::wsp::WspInstance;
//! use edge_common::id::{BidId, MicroserviceId};
//! use edge_common::units::Price;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bids = vec![
//!     Bid::new(MicroserviceId::new(0), BidId::new(0), 2, 4.0)?,
//!     Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 6.0)?,
//! ];
//! let inst = WspInstance::new(4, bids)?;
//! // A budget of $7 affords the first winner's payment but not both.
//! let out = run_budgeted_ssam(&inst, &SsamConfig::default(), Price::new(7.0)?)?;
//! assert!(out.budget_exhausted);
//! assert!(out.covered < 4);
//! # Ok(())
//! # }
//! ```

use crate::error::AuctionError;
use crate::ssam::{run_ssam, SsamConfig, WinningBid};
use crate::wsp::WspInstance;
use edge_common::units::Price;
use serde::{Deserialize, Serialize};

/// Outcome of a budget-limited single-stage auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetedOutcome {
    /// Winners accepted within the budget, in greedy order.
    pub winners: Vec<WinningBid>,
    /// Units covered by the accepted winners.
    pub covered: u64,
    /// The demand that was targeted.
    pub demand: u64,
    /// Σ accepted prices.
    pub social_cost: Price,
    /// Σ accepted payments (≤ budget).
    pub total_payment: Price,
    /// The budget that was available.
    pub budget: Price,
    /// `true` iff at least one would-be winner was dropped for budget
    /// reasons.
    pub budget_exhausted: bool,
}

impl BudgetedOutcome {
    /// `true` iff the full demand was covered within the budget.
    pub fn satisfied(&self) -> bool {
        self.covered >= self.demand
    }

    /// Budget remaining after payments.
    pub fn remaining_budget(&self) -> Price {
        self.budget.saturating_sub(self.total_payment)
    }
}

/// Runs SSAM, then applies §IV's budget-depletion rule: accept winners
/// in selection order while the cumulative payment fits `budget`.
///
/// # Errors
///
/// Propagates [`run_ssam`] errors (infeasible demand under the reserve
/// filter).
pub fn run_budgeted_ssam(
    instance: &WspInstance,
    config: &SsamConfig,
    budget: Price,
) -> Result<BudgetedOutcome, AuctionError> {
    let unlimited = run_ssam(instance, config)?;
    let mut winners = Vec::new();
    let mut total_payment = Price::ZERO;
    let mut covered = 0u64;
    let mut budget_exhausted = false;
    for w in unlimited.winners {
        if (total_payment + w.payment).value() > budget.value() + 1e-9 {
            budget_exhausted = true;
            break;
        }
        total_payment += w.payment;
        covered += w.contribution;
        winners.push(w);
    }
    let social_cost: Price = winners.iter().map(|w| w.price).sum();
    Ok(BudgetedOutcome {
        winners,
        covered,
        demand: instance.demand(),
        social_cost,
        total_payment,
        budget,
        budget_exhausted,
    })
}

/// The smallest budget that covers the full demand under the current
/// payment rule — useful for provisioning the platform's §IV budget 𝒲.
///
/// # Errors
///
/// Propagates [`run_ssam`] errors.
pub fn required_budget(instance: &WspInstance, config: &SsamConfig) -> Result<Price, AuctionError> {
    Ok(run_ssam(instance, config)?.total_payment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Bid;
    use edge_common::id::{BidId, MicroserviceId};

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn instance() -> WspInstance {
        WspInstance::new(
            6,
            vec![
                bid(0, 0, 2, 4.0),
                bid(1, 0, 2, 6.0),
                bid(2, 0, 2, 8.0),
                bid(3, 0, 2, 10.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ample_budget_changes_nothing() {
        let need = required_budget(&instance(), &SsamConfig::default()).unwrap();
        let out = run_budgeted_ssam(&instance(), &SsamConfig::default(), need).unwrap();
        assert!(out.satisfied());
        assert!(!out.budget_exhausted);
        assert_eq!(out.total_payment, need);
        assert_eq!(out.remaining_budget(), edge_common::units::Price::ZERO);
    }

    #[test]
    fn tight_budget_truncates_in_greedy_order() {
        let need = required_budget(&instance(), &SsamConfig::default()).unwrap();
        let out = run_budgeted_ssam(
            &instance(),
            &SsamConfig::default(),
            Price::new(need.value() * 0.5).unwrap(),
        )
        .unwrap();
        assert!(out.budget_exhausted);
        assert!(!out.satisfied());
        assert!(out.total_payment.value() <= need.value() * 0.5 + 1e-9);
        // The cheapest (first-selected) winners survive.
        if let Some(first) = out.winners.first() {
            assert_eq!(first.seller, MicroserviceId::new(0));
        }
    }

    #[test]
    fn zero_budget_buys_nothing() {
        let out = run_budgeted_ssam(&instance(), &SsamConfig::default(), Price::ZERO).unwrap();
        assert!(out.winners.is_empty());
        assert_eq!(out.covered, 0);
        assert!(out.budget_exhausted);
    }

    #[test]
    fn payments_never_exceed_budget() {
        for cents in [0u64, 5, 10, 20, 40, 80] {
            let budget = Price::new(cents as f64).unwrap();
            let out = run_budgeted_ssam(&instance(), &SsamConfig::default(), budget).unwrap();
            assert!(
                out.total_payment.value() <= budget.value() + 1e-9,
                "budget {budget} exceeded: {}",
                out.total_payment
            );
        }
    }

    #[test]
    fn coverage_is_monotone_in_budget() {
        let mut last = 0;
        for b in [0.0, 5.0, 10.0, 20.0, 40.0, 100.0] {
            let out =
                run_budgeted_ssam(&instance(), &SsamConfig::default(), Price::new(b).unwrap())
                    .unwrap();
            assert!(out.covered >= last, "coverage dropped as budget rose");
            last = out.covered;
        }
    }
}
