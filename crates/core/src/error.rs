//! Auction error types.

use std::error::Error;
use std::fmt;

/// Errors raised while validating or running an auction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuctionError {
    /// The submitted bids cannot cover the round's demand even if every
    /// seller's best offer wins.
    InfeasibleDemand {
        /// Units demanded.
        demand: u64,
        /// Maximum units coverable (best bid per seller).
        supply: u64,
    },
    /// A bid offered zero resource units — it can never contribute.
    ZeroAmountBid,
    /// A bid price was negative or not finite.
    InvalidPrice(f64),
    /// A seller referenced in a round's bids is not declared in the
    /// instance's seller table.
    UnknownSeller(usize),
    /// A multi-round instance declared zero rounds.
    EmptyInstance,
    /// A seller's availability window is inverted (`t⁻ > t⁺`).
    InvalidWindow {
        /// Window start.
        start: u64,
        /// Window end.
        end: u64,
    },
    /// A seller submitted two bids with the same bid id in one round.
    DuplicateBidId {
        /// The offending seller's index.
        seller: usize,
        /// The duplicated bid id.
        bid: usize,
    },
}

impl fmt::Display for AuctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuctionError::InfeasibleDemand { demand, supply } => {
                write!(
                    f,
                    "demand of {demand} units exceeds coverable supply of {supply}"
                )
            }
            AuctionError::ZeroAmountBid => write!(f, "bid offers zero resource units"),
            AuctionError::InvalidPrice(p) => write!(f, "bid price {p} is not a valid price"),
            AuctionError::UnknownSeller(i) => write!(f, "bid references undeclared seller {i}"),
            AuctionError::EmptyInstance => write!(f, "instance has no rounds"),
            AuctionError::InvalidWindow { start, end } => {
                write!(f, "availability window [{start}, {end}] is inverted")
            }
            AuctionError::DuplicateBidId { seller, bid } => {
                write!(
                    f,
                    "seller {seller} submitted bid id {bid} twice in one round"
                )
            }
        }
    }
}

impl Error for AuctionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_detail() {
        let e = AuctionError::InfeasibleDemand {
            demand: 40,
            supply: 12,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("12"));
        assert!(AuctionError::InvalidPrice(-2.0).to_string().contains("-2"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_bounds<E: Error + Send + Sync + 'static>() {}
        assert_bounds::<AuctionError>();
    }
}
