//! Multi-platform federation with partition-tolerant re-selling.
//!
//! The paper's MSOA assumes one trusted platform; real edge deployments
//! are *federations* of platforms that re-sell surplus capacity to one
//! another over unreliable links (the MEC re-selling framework of
//! PAPERS.md). This module layers that on the PR 6 event-sourced
//! service, deterministically:
//!
//! * each platform is a [`FederationNode`]: an [`AuctionService`] plus
//!   protocol state (peer quotes, open deals, reservations);
//! * nodes exchange [`FedMsg`]s over an [`edge_net::Network`] — a
//!   seeded, logical-clock substrate, so every drop, delay, and
//!   partition is reproducible;
//! * after each completed stage a node **gossips** its surplus capacity
//!   and mean unit price, and a node whose stage ended with unmet
//!   demand opens a **two-phase re-sell deal** against the cheapest
//!   known peer: `Offer → Accept (reserve) → Commit → Ack (apply)`.
//!   Deadlines are logical ticks, retries back off exponentially, and
//!   deal ids are idempotent — a duplicate `Commit` re-sends the `Ack`
//!   but never applies the capacity twice;
//! * a partitioned node simply hears nothing: it degrades to local-only
//!   clearing (its service sees exactly the events a standalone run
//!   would), and reconciliation is the protocol itself — commit retries
//!   cross the healed link, a live reservation completes the deal, an
//!   expired one answers with a definitive reject;
//! * every network and protocol event folds into an FNV-1a digest chain
//!   ([`FederationSim`] records), so a run is replayed byte-identically
//!   from its log header at any `--pricing-threads` setting;
//! * every wire payload travels inside a [`FedPacket`] span envelope
//!   (`"{deal}#{hop}"` causal ids derived from driver order and logical
//!   ticks), and a `federate --trace` run mirrors each deal's full
//!   lifecycle — sends, drops, duplicate deliveries, timeouts, expiries,
//!   late fills — onto the deterministic trace with `fed_seq` provenance
//!   back to the chained log records.
//!
//! See DESIGN.md §14 for the full protocol walkthrough and §15 for the
//! observability contract.

use crate::msoa::MultiRoundInstance;
use crate::service::{
    fnv1a64, AuctionService, ServiceConfig, ServiceError, ServiceEvent, StageSummary,
};
use edge_common::id::PlatformId;
use edge_net::{Delivery, NetConfigError, NetEvent, NetFaultPlan, NetStats, Network};
use edge_telemetry::registry::global;
use edge_telemetry::{Collector, Counter, Gauge, Level, Sink, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Domain separator for the federation log digest chain.
pub const FED_GENESIS: &str = "edge-market-fed-log";
/// Federation log format version. v2 added the [`FedPacket`] span
/// envelope on every wire payload and the end-of-run
/// [`FedEvent::NodeSummary`] records; v1 logs are rejected with
/// [`FedLogError::UnknownVersion`].
pub const FED_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Static configuration of one federation run. Serialized into the fed
/// log header; replay rebuilds the entire run from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// One service configuration per platform (node k wraps `nodes[k]`).
    pub nodes: Vec<ServiceConfig>,
    /// Ticks between round closes (every node closes on the cadence).
    pub round_ticks: u64,
    /// Base deadline, in ticks, for each deal phase; retry `n` waits
    /// `offer_timeout << n`.
    pub offer_timeout: u64,
    /// Retries per deal phase before giving up.
    pub max_retries: u32,
    /// Whether timed-out phases retry at all (the bench's recovery
    /// on/off axis).
    pub retries_enabled: bool,
    /// Ticks a seller holds a reservation before releasing the surplus.
    pub reserve_ttl: u64,
    /// Cap on units per deal.
    pub max_deal_units: u64,
    /// Extra ticks after every horizon completes for in-flight deals to
    /// settle before the run is cut off.
    pub drain_ticks: u64,
}

impl FederationConfig {
    /// A federation of `k` platforms over per-node service configs
    /// derived from `base`: node 0 keeps `base` verbatim (so `k = 1`
    /// reproduces the single-platform serve loop bit-for-bit) and node
    /// `i` reseeds with a fixed stride so platforms see decorrelated
    /// workloads.
    pub fn uniform(base: ServiceConfig, k: usize) -> Self {
        let nodes = (0..k)
            .map(|i| ServiceConfig {
                seed: base.seed.wrapping_add(i as u64 * 7919),
                ..base
            })
            .collect();
        FederationConfig {
            nodes,
            round_ticks: 2,
            offer_timeout: 8,
            max_retries: 3,
            retries_enabled: true,
            reserve_ttl: 64,
            max_deal_units: 64,
            drain_ticks: 128,
        }
    }

    /// Checks the run is well-formed and finite.
    ///
    /// # Errors
    ///
    /// [`FederationError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), FederationError> {
        if self.nodes.is_empty() {
            return Err(FederationError::Config("at least one platform".into()));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.total_rounds == 0 {
                return Err(FederationError::Config(format!(
                    "platform {i} has an unbounded horizon (total_rounds 0); \
                     federation runs must be finite"
                )));
            }
        }
        for (name, v) in [
            ("round_ticks", self.round_ticks),
            ("offer_timeout", self.offer_timeout),
            ("reserve_ttl", self.reserve_ttl),
            ("max_deal_units", self.max_deal_units),
        ] {
            if v == 0 {
                return Err(FederationError::Config(format!("{name} must be ≥ 1")));
            }
        }
        if self.max_retries > 16 {
            return Err(FederationError::Config(
                "max_retries > 16 overflows the backoff schedule".into(),
            ));
        }
        Ok(())
    }

    /// The tick the run is cut off even if deals never settle.
    fn max_ticks(&self) -> u64 {
        let longest = self.nodes.iter().map(|n| n.total_rounds).max().unwrap_or(0);
        longest
            .saturating_mul(self.round_ticks)
            .saturating_add(self.drain_ticks)
    }
}

/// A federation run that could not be built or driven.
#[derive(Debug)]
pub enum FederationError {
    /// Bad [`FederationConfig`].
    Config(String),
    /// Bad [`NetFaultPlan`].
    Net(NetConfigError),
    /// A platform's service rejected an event the driver generated —
    /// always a bug, never an input condition.
    Service(ServiceError),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::Config(m) => write!(f, "invalid federation config: {m}"),
            FederationError::Net(e) => write!(f, "invalid net-fault plan: {e}"),
            FederationError::Service(e) => write!(f, "federation drive error: {e}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl From<NetConfigError> for FederationError {
    fn from(e: NetConfigError) -> Self {
        FederationError::Net(e)
    }
}

impl From<ServiceError> for FederationError {
    fn from(e: ServiceError) -> Self {
        FederationError::Service(e)
    }
}

// ---------------------------------------------------------------------
// Protocol vocabulary.
// ---------------------------------------------------------------------

/// An idempotent deal identifier: the buyer (originating platform) plus
/// its private sequence number. Retransmits carry the same id, so every
/// receiver can dedupe by id alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DealId {
    /// The buying platform that opened the deal.
    pub origin: PlatformId,
    /// The buyer's deal counter.
    pub seq: u64,
}

impl fmt::Display for DealId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.origin, self.seq)
    }
}

/// The federation wire vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FedMsg {
    /// Post-stage broadcast of a platform's re-sellable surplus and
    /// mean clearing price.
    Gossip {
        /// The advertising platform's completed stage index.
        stage: u64,
        /// Unsold capacity available for re-sale.
        surplus: u64,
        /// Mean clearing price per unit in the completed stage.
        unit_price: f64,
    },
    /// Phase 1: buyer asks seller to reserve `units`.
    Offer {
        /// The deal.
        deal: DealId,
        /// Units requested.
        units: u64,
        /// Highest unit price the buyer will pay (the quoted price).
        max_unit_price: f64,
        /// Retransmit counter (0 = first send).
        attempt: u32,
    },
    /// Seller reserved the units at `unit_price` (TTL-bounded).
    Accept {
        /// The deal.
        deal: DealId,
        /// Units reserved.
        units: u64,
        /// Price per unit the seller will charge.
        unit_price: f64,
    },
    /// Seller declined (or a late commit found no live reservation).
    Reject {
        /// The deal.
        deal: DealId,
        /// Machine-readable reason.
        code: String,
    },
    /// Phase 2: buyer converts the reservation into a binding deal.
    Commit {
        /// The deal.
        deal: DealId,
        /// Retransmit counter (0 = first send).
        attempt: u32,
    },
    /// Seller applied the deal (idempotently) and confirms the terms.
    Ack {
        /// The deal.
        deal: DealId,
        /// Units sold.
        units: u64,
        /// Price per unit charged.
        unit_price: f64,
    },
}

/// One wire packet: a protocol message plus its causal span stamp.
///
/// The span id of a deal-bearing packet renders as `"{deal}#{hop}"`.
/// `hop` is a per-deal causal counter maintained by the driver: it is
/// incremented on every send for the deal and max-merged on every
/// delivery, so a message sent *because of* another always carries a
/// strictly larger hop (a clean exchange is `Offer#1 → Accept#2 →
/// Commit#3 → Ack#4`; retransmits get fresh hops). Gossip packets reuse
/// the advertised stage index as their hop. Everything derives from
/// logical ticks and driver order — no wall clock — so spans replay
/// byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedPacket {
    /// Causal hop counter (for gossip: the advertised stage index).
    pub hop: u64,
    /// The protocol message.
    pub msg: FedMsg,
}

/// The deal a message belongs to (`None` for gossip).
pub fn msg_deal(msg: &FedMsg) -> Option<DealId> {
    match msg {
        FedMsg::Gossip { .. } => None,
        FedMsg::Offer { deal, .. }
        | FedMsg::Accept { deal, .. }
        | FedMsg::Reject { deal, .. }
        | FedMsg::Commit { deal, .. }
        | FedMsg::Ack { deal, .. } => Some(*deal),
    }
}

/// The wire vocabulary name of a message.
pub fn msg_kind(msg: &FedMsg) -> &'static str {
    match msg {
        FedMsg::Gossip { .. } => "Gossip",
        FedMsg::Offer { .. } => "Offer",
        FedMsg::Accept { .. } => "Accept",
        FedMsg::Reject { .. } => "Reject",
        FedMsg::Commit { .. } => "Commit",
        FedMsg::Ack { .. } => "Ack",
    }
}

// ---------------------------------------------------------------------
// Log events.
// ---------------------------------------------------------------------

/// One entry on the federation's digest-chained tape: every network
/// event plus every protocol state transition, in driver order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FedEvent {
    /// A substrate event (send / drop / duplicate / delivery).
    Net(NetEvent),
    /// A deal phase passed its deadline on the buyer.
    Timeout {
        /// Tick of the timeout.
        tick: u64,
        /// The buyer node.
        node: usize,
        /// The deal.
        deal: DealId,
        /// `"offer"` or `"commit"`.
        phase: String,
        /// The attempt that timed out.
        attempt: u32,
        /// Whether a retry was scheduled.
        retrying: bool,
    },
    /// A buyer opened a deal against a peer quote.
    DealOpened {
        /// Tick of the open.
        tick: u64,
        /// The buyer node.
        buyer: usize,
        /// The seller node the offer targets.
        seller: usize,
        /// The deal.
        deal: DealId,
        /// Units requested.
        units: u64,
        /// The quoted price cap.
        max_unit_price: f64,
    },
    /// A seller reserved units for a deal.
    DealReserved {
        /// Tick of the reservation.
        tick: u64,
        /// The seller node.
        seller: usize,
        /// The deal.
        deal: DealId,
        /// Units reserved.
        units: u64,
        /// Price per unit.
        unit_price: f64,
        /// Tick the reservation self-releases.
        expires: u64,
    },
    /// A seller declined an offer or a late commit.
    DealRejected {
        /// Tick of the rejection.
        tick: u64,
        /// The seller node.
        seller: usize,
        /// The deal.
        deal: DealId,
        /// Machine-readable reason.
        code: String,
    },
    /// A seller converted a reservation into applied demand
    /// (`DemandReported` on its local service) — happens at most once
    /// per deal id.
    DealApplied {
        /// Tick of the application.
        tick: u64,
        /// The seller node.
        seller: usize,
        /// The deal.
        deal: DealId,
        /// Units applied.
        units: u64,
        /// Price per unit charged.
        unit_price: f64,
    },
    /// A buyer received the ack and booked the fill.
    DealFilled {
        /// Tick of the fill.
        tick: u64,
        /// The buyer node.
        buyer: usize,
        /// The deal.
        deal: DealId,
        /// Units filled.
        units: u64,
        /// Price per unit paid.
        unit_price: f64,
        /// True when the ack arrived after the buyer had given the deal
        /// up (partition-heal reconciliation).
        late: bool,
    },
    /// A buyer abandoned a deal (reject received or retries exhausted
    /// in the offer phase).
    DealAborted {
        /// Tick of the abort.
        tick: u64,
        /// The abandoning node.
        node: usize,
        /// The deal.
        deal: DealId,
        /// The phase the deal died in.
        phase: String,
    },
    /// A buyer exhausted commit retries without an ack — the deal's
    /// fate is unknown until (and unless) a late ack reconciles it.
    DealUnresolved {
        /// Tick retries ran out.
        tick: u64,
        /// The buyer node.
        node: usize,
        /// The deal.
        deal: DealId,
    },
    /// A seller's reservation TTL lapsed; the surplus is released.
    ReservationExpired {
        /// Tick of the expiry.
        tick: u64,
        /// The seller node.
        seller: usize,
        /// The deal.
        deal: DealId,
        /// Units released.
        units: u64,
    },
    /// A platform finished a stage auction.
    StageCompleted {
        /// Tick of the close.
        tick: u64,
        /// The platform.
        node: usize,
        /// Stage index.
        stage: u64,
        /// The stage outcome digest (hex).
        outcome_digest: String,
        /// The platform's rolling state digest (hex).
        state_digest: String,
        /// Unmet demand in the stage.
        shortfall_units: u64,
        /// Re-sellable surplus after the stage.
        surplus: u64,
    },
    /// A platform had unmet demand but no reachable quote — local-only
    /// (degraded) clearing for this stage.
    LocalOnly {
        /// Tick of the stage close.
        tick: u64,
        /// The platform.
        node: usize,
        /// Stage index.
        stage: u64,
        /// Unmet demand it could not shop out.
        shortfall_units: u64,
    },
    /// End-of-run snapshot of one platform's protocol counters, folded
    /// into the chain (one per node, in node order) so offline tools
    /// (`explain --deal`) can verify re-derived totals against what the
    /// run actually booked.
    NodeSummary {
        /// Tick the run settled.
        tick: u64,
        /// The platform.
        node: usize,
        /// The counters.
        counters: NodeCounters,
    },
}

/// One chained federation log record.
#[derive(Debug, Clone, PartialEq)]
pub struct FedRecord {
    /// Sequence number (1-based; 0 is the header).
    pub seq: u64,
    /// The chain digest after folding this event (hex, 16 chars).
    pub digest: String,
    /// The event.
    pub event: FedEvent,
}

// ---------------------------------------------------------------------
// Per-node protocol state.
// ---------------------------------------------------------------------

/// A peer's latest gossip, kept newest-stage-wins so reordered gossip
/// can never roll a quote backwards.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PeerQuote {
    stage: u64,
    surplus: u64,
    unit_price: f64,
}

/// Which phase an outgoing (buyer-side) deal is in.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DealPhase {
    /// Offer sent, waiting for accept/reject.
    Offering,
    /// Accept received; commit sent, waiting for ack.
    Committing {
        /// Units the seller reserved.
        units: u64,
        /// Price per unit the seller quoted.
        unit_price: f64,
    },
}

impl DealPhase {
    fn name(&self) -> &'static str {
        match self {
            DealPhase::Offering => "offer",
            DealPhase::Committing { .. } => "commit",
        }
    }
}

/// Buyer-side record of one open deal.
#[derive(Debug, Clone)]
struct OutgoingDeal {
    seller: PlatformId,
    units: u64,
    max_unit_price: f64,
    phase: DealPhase,
    attempt: u32,
    deadline: u64,
}

/// Seller-side TTL-bounded hold on surplus units.
#[derive(Debug, Clone, Copy)]
struct Reservation {
    units: u64,
    unit_price: f64,
    expires: u64,
}

/// Per-node protocol counters, reported in the outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeCounters {
    /// Deals opened (offers for distinct deal ids).
    pub deals_opened: u64,
    /// Retransmits across both phases.
    pub retries: u64,
    /// Phase deadlines missed.
    pub timeouts: u64,
    /// Buyer-side completed deals (acks booked).
    pub deals_filled: u64,
    /// Seller-side applied deals.
    pub deals_applied: u64,
    /// Deals abandoned before commit.
    pub deals_aborted: u64,
    /// Commits whose fate stayed unknown.
    pub deals_unresolved: u64,
    /// Fills that arrived after the buyer had given up.
    pub late_fills: u64,
    /// Reservations that lapsed.
    pub reservations_expired: u64,
    /// Stages with unmet demand and no reachable quote.
    pub local_only_stages: u64,
    /// Σ unmet demand across stages (what the node wanted to buy).
    pub deficit_units: u64,
    /// Σ units bought from peers.
    pub filled_units: u64,
    /// Σ units sold to peers (applied on the local service).
    pub resold_units: u64,
    /// Σ cost of cross-platform fills.
    pub cross_cost: f64,
    /// Σ revenue from re-selling to peers.
    pub resale_revenue: f64,
}

/// Messages to send and events to log, produced by one node step.
///
/// Nodes never touch the network directly — the driver routes these, so
/// a test (or proptest) can drive a node's handlers message-by-message.
#[derive(Debug, Default)]
pub struct Effects {
    /// `(to, msg)` sends, in decision order.
    pub sends: Vec<(PlatformId, FedMsg)>,
    /// Protocol events, in decision order.
    pub events: Vec<FedEvent>,
}

impl Effects {
    fn send(&mut self, to: PlatformId, msg: FedMsg) {
        self.sends.push((to, msg));
    }

    fn log(&mut self, event: FedEvent) {
        self.events.push(event);
    }
}

/// One platform: an event-sourced auction service plus federation
/// protocol state. All methods are driven by logical time (`now`) —
/// the node itself never consults a clock.
pub struct FederationNode<P> {
    id: PlatformId,
    platforms: usize,
    svc: AuctionService<P>,
    timeouts_cfg: (u64, u32, bool), // (offer_timeout, max_retries, retries_enabled)
    reserve_ttl: u64,
    max_deal_units: u64,
    peers: BTreeMap<PlatformId, PeerQuote>,
    surplus: u64,
    unit_price: Option<f64>,
    next_deal_seq: u64,
    outgoing: BTreeMap<DealId, OutgoingDeal>,
    reservations: BTreeMap<DealId, Reservation>,
    /// Seller-side applied deals with their terms — presence is the
    /// idempotency guard, the terms feed ack retransmits.
    applied: BTreeMap<DealId, (u64, f64)>,
    /// Buyer-side booked fills — the matching guard for duplicate acks.
    filled: BTreeMap<DealId, (u64, f64)>,
    counters: NodeCounters,
}

impl<P> fmt::Debug for FederationNode<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FederationNode")
            .field("id", &self.id)
            .field("surplus", &self.surplus)
            .field("outgoing", &self.outgoing.len())
            .field("reservations", &self.reservations.len())
            .finish_non_exhaustive()
    }
}

impl<P: FnMut(u64, u64) -> MultiRoundInstance> FederationNode<P> {
    /// A fresh node wrapping `provider`'s stage instances under
    /// `config`, tagged `id` of `platforms`.
    pub fn new(
        id: PlatformId,
        platforms: usize,
        fed: &FederationConfig,
        config: ServiceConfig,
        provider: P,
    ) -> Self {
        let mut svc = AuctionService::new(config, provider);
        svc.set_trace_scope(vec![("platform", Value::from(id.index()))]);
        FederationNode {
            id,
            platforms,
            svc,
            timeouts_cfg: (fed.offer_timeout, fed.max_retries, fed.retries_enabled),
            reserve_ttl: fed.reserve_ttl,
            max_deal_units: fed.max_deal_units,
            peers: BTreeMap::new(),
            surplus: 0,
            unit_price: None,
            next_deal_seq: 0,
            outgoing: BTreeMap::new(),
            reservations: BTreeMap::new(),
            applied: BTreeMap::new(),
            filled: BTreeMap::new(),
            counters: NodeCounters::default(),
        }
    }

    /// The wrapped service (digests, counters, config).
    pub fn service(&self) -> &AuctionService<P> {
        &self.svc
    }

    /// This node's protocol counters.
    pub fn counters(&self) -> &NodeCounters {
        &self.counters
    }

    /// True when nothing is pending on this node (no open deals, no
    /// live reservations).
    pub fn settled(&self) -> bool {
        self.outgoing.is_empty() && self.reservations.is_empty()
    }

    /// Test/bootstrap hook: pretend a stage left `units` of surplus at
    /// `unit_price`, as the seller-side handlers would see after a real
    /// stage close. Used by the protocol proptests to drive a node
    /// without running auctions.
    pub fn seed_surplus(&mut self, units: u64, unit_price: f64) {
        self.surplus = units;
        self.unit_price = Some(unit_price);
    }

    /// Closes one auction round on the local service. When that
    /// completes a stage, updates the node's quote, gossips it, and —
    /// if the stage left unmet demand — opens a re-sell deal against
    /// the cheapest known peer.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceError`] from the stage auction (a driver
    /// bug: the cadence never closes past the horizon).
    pub fn close_round(
        &mut self,
        now: u64,
        collector: Option<&Collector>,
        effects: &mut Effects,
    ) -> Result<(), ServiceError> {
        let applied = self.svc.apply(&ServiceEvent::RoundClosed, collector)?;
        let Some(stage) = applied.stage else {
            return Ok(());
        };
        self.after_stage(&stage, applied.state_digest, now, effects);
        Ok(())
    }

    /// Post-stage bookkeeping: quote refresh, gossip, deal opening.
    fn after_stage(
        &mut self,
        stage: &StageSummary,
        state_digest: String,
        now: u64,
        effects: &mut Effects,
    ) {
        // Reserved-but-unapplied units stay off the books: the quote
        // only advertises what a new deal could actually take.
        let reserved: u64 = self.reservations.values().map(|r| r.units).sum();
        self.surplus = stage.unsold_capacity.saturating_sub(reserved);
        if let Some(price) = stage.unit_price() {
            self.unit_price = Some(price);
        }
        effects.log(FedEvent::StageCompleted {
            tick: now,
            node: self.id.index(),
            stage: stage.stage,
            outcome_digest: stage.outcome_digest.clone(),
            state_digest,
            shortfall_units: stage.shortfall_units,
            surplus: self.surplus,
        });
        if let Some(price) = self.unit_price {
            for peer in (0..self.platforms).map(PlatformId::new) {
                if peer != self.id {
                    effects.send(
                        peer,
                        FedMsg::Gossip {
                            stage: stage.stage,
                            surplus: self.surplus,
                            unit_price: price,
                        },
                    );
                }
            }
        }
        if stage.shortfall_units > 0 {
            self.counters.deficit_units += stage.shortfall_units;
            self.open_deal(stage, now, effects);
        }
    }

    /// Opens a deal for the stage's shortfall against the cheapest
    /// quoted peer, or records a degraded (local-only) stage when no
    /// peer is reachable.
    fn open_deal(&mut self, stage: &StageSummary, now: u64, effects: &mut Effects) {
        let pick = self
            .peers
            .iter()
            .filter(|(_, q)| q.surplus > 0 && q.unit_price.is_finite())
            .min_by(|(ida, qa), (idb, qb)| {
                qa.unit_price
                    .partial_cmp(&qb.unit_price)
                    .expect("finite prices compare")
                    .then(ida.cmp(idb))
            })
            .map(|(&id, &q)| (id, q));
        let Some((seller, quote)) = pick else {
            self.counters.local_only_stages += 1;
            effects.log(FedEvent::LocalOnly {
                tick: now,
                node: self.id.index(),
                stage: stage.stage,
                shortfall_units: stage.shortfall_units,
            });
            return;
        };
        let units = stage
            .shortfall_units
            .min(quote.surplus)
            .min(self.max_deal_units);
        let deal = DealId {
            origin: self.id,
            seq: self.next_deal_seq,
        };
        self.next_deal_seq += 1;
        // Optimistically debit the cached quote so back-to-back stages
        // don't dogpile one peer before its next gossip arrives.
        if let Some(q) = self.peers.get_mut(&seller) {
            q.surplus = q.surplus.saturating_sub(units);
        }
        self.outgoing.insert(
            deal,
            OutgoingDeal {
                seller,
                units,
                max_unit_price: quote.unit_price,
                phase: DealPhase::Offering,
                attempt: 0,
                deadline: now + self.timeouts_cfg.0,
            },
        );
        self.counters.deals_opened += 1;
        effects.log(FedEvent::DealOpened {
            tick: now,
            buyer: self.id.index(),
            seller: seller.index(),
            deal,
            units,
            max_unit_price: quote.unit_price,
        });
        effects.send(
            seller,
            FedMsg::Offer {
                deal,
                units,
                max_unit_price: quote.unit_price,
                attempt: 0,
            },
        );
    }

    /// Handles one delivered message. Duplicate and late deliveries are
    /// answered idempotently: state transitions happen at most once per
    /// deal id, retransmitted replies are byte-identical.
    pub fn handle(
        &mut self,
        from: PlatformId,
        msg: FedMsg,
        now: u64,
        collector: Option<&Collector>,
        effects: &mut Effects,
    ) {
        match msg {
            FedMsg::Gossip {
                stage,
                surplus,
                unit_price,
            } => {
                let entry = self.peers.entry(from).or_insert(PeerQuote {
                    stage,
                    surplus,
                    unit_price,
                });
                // Newest stage wins; a reordered older quote is stale.
                if stage >= entry.stage {
                    *entry = PeerQuote {
                        stage,
                        surplus,
                        unit_price,
                    };
                }
            }
            FedMsg::Offer {
                deal,
                units,
                max_unit_price,
                ..
            } => self.on_offer(from, deal, units, max_unit_price, now, effects),
            FedMsg::Accept {
                deal,
                units,
                unit_price,
            } => self.on_accept(deal, units, unit_price, now, effects),
            FedMsg::Reject { deal, code } => self.on_reject(deal, &code, now, effects),
            FedMsg::Commit { deal, .. } => self.on_commit(from, deal, now, collector, effects),
            FedMsg::Ack {
                deal,
                units,
                unit_price,
            } => self.on_ack(deal, units, unit_price, now, effects),
        }
    }

    /// Seller side of phase 1.
    fn on_offer(
        &mut self,
        from: PlatformId,
        deal: DealId,
        units: u64,
        max_unit_price: f64,
        now: u64,
        effects: &mut Effects,
    ) {
        if let Some(&(units, unit_price)) = self.applied.get(&deal) {
            // The commit already landed; the buyer just never heard the
            // ack. Retransmit it.
            effects.send(
                from,
                FedMsg::Ack {
                    deal,
                    units,
                    unit_price,
                },
            );
            return;
        }
        if let Some(r) = self.reservations.get(&deal) {
            // Duplicate offer: re-send the identical accept.
            effects.send(
                from,
                FedMsg::Accept {
                    deal,
                    units: r.units,
                    unit_price: r.unit_price,
                },
            );
            return;
        }
        let price = self.unit_price;
        let verdict = if units == 0 {
            Err("zero-units")
        } else if self.surplus < units {
            Err("insufficient-surplus")
        } else {
            match price {
                None => Err("no-price"),
                Some(p) if p > max_unit_price => Err("price-above-cap"),
                Some(_)
                    if self
                        .svc
                        .check(&ServiceEvent::DemandReported { units })
                        .is_err() =>
                {
                    Err("demand-cap")
                }
                Some(p) => Ok(p),
            }
        };
        match verdict {
            Ok(unit_price) => {
                self.surplus -= units;
                let expires = now + self.reserve_ttl;
                self.reservations.insert(
                    deal,
                    Reservation {
                        units,
                        unit_price,
                        expires,
                    },
                );
                effects.log(FedEvent::DealReserved {
                    tick: now,
                    seller: self.id.index(),
                    deal,
                    units,
                    unit_price,
                    expires,
                });
                effects.send(
                    from,
                    FedMsg::Accept {
                        deal,
                        units,
                        unit_price,
                    },
                );
            }
            Err(code) => {
                effects.log(FedEvent::DealRejected {
                    tick: now,
                    seller: self.id.index(),
                    deal,
                    code: code.to_owned(),
                });
                effects.send(
                    from,
                    FedMsg::Reject {
                        deal,
                        code: code.to_owned(),
                    },
                );
            }
        }
    }

    /// Buyer side: the seller reserved — move to phase 2.
    fn on_accept(
        &mut self,
        deal: DealId,
        units: u64,
        unit_price: f64,
        now: u64,
        effects: &mut Effects,
    ) {
        let Some(open) = self.outgoing.get_mut(&deal) else {
            return; // already filled or abandoned; the duplicate is late
        };
        if let DealPhase::Committing { .. } = open.phase {
            return; // duplicate accept; the commit is already out
        }
        open.phase = DealPhase::Committing { units, unit_price };
        open.attempt = 0;
        open.deadline = now + self.timeouts_cfg.0;
        effects.send(open.seller, FedMsg::Commit { deal, attempt: 0 });
    }

    /// Buyer side: the seller said no (or a late commit found nothing).
    fn on_reject(&mut self, deal: DealId, code: &str, now: u64, effects: &mut Effects) {
        let Some(open) = self.outgoing.remove(&deal) else {
            return;
        };
        self.counters.deals_aborted += 1;
        effects.log(FedEvent::DealAborted {
            tick: now,
            node: self.id.index(),
            deal,
            phase: format!("{}:{code}", open.phase.name()),
        });
    }

    /// Seller side of phase 2: apply at most once, ack every time.
    fn on_commit(
        &mut self,
        from: PlatformId,
        deal: DealId,
        now: u64,
        collector: Option<&Collector>,
        effects: &mut Effects,
    ) {
        if let Some(&(units, unit_price)) = self.applied.get(&deal) {
            // Duplicate commit: the deal is already on the books; the
            // ack is retransmitted, the demand is NOT re-applied.
            effects.send(
                from,
                FedMsg::Ack {
                    deal,
                    units,
                    unit_price,
                },
            );
            return;
        }
        let Some(reservation) = self.reservations.remove(&deal) else {
            // Expired or never existed — a late commit gets a
            // definitive answer so the buyer can reconcile.
            effects.send(
                from,
                FedMsg::Reject {
                    deal,
                    code: "no-reservation".to_owned(),
                },
            );
            return;
        };
        // The buyer's demand enters this platform's next round as
        // reported demand. A cap race (local wire demand filled the
        // round since the reservation) turns into a definitive reject.
        let event = ServiceEvent::DemandReported {
            units: reservation.units,
        };
        if self.svc.apply(&event, collector).is_err() {
            self.surplus += reservation.units;
            effects.log(FedEvent::DealRejected {
                tick: now,
                seller: self.id.index(),
                deal,
                code: "demand-cap".to_owned(),
            });
            effects.send(
                from,
                FedMsg::Reject {
                    deal,
                    code: "demand-cap".to_owned(),
                },
            );
            return;
        }
        self.applied
            .insert(deal, (reservation.units, reservation.unit_price));
        self.counters.deals_applied += 1;
        self.counters.resold_units += reservation.units;
        self.counters.resale_revenue += reservation.units as f64 * reservation.unit_price;
        effects.log(FedEvent::DealApplied {
            tick: now,
            seller: self.id.index(),
            deal,
            units: reservation.units,
            unit_price: reservation.unit_price,
        });
        effects.send(
            from,
            FedMsg::Ack {
                deal,
                units: reservation.units,
                unit_price: reservation.unit_price,
            },
        );
    }

    /// Buyer side: the deal is done. Duplicates are ignored; a late ack
    /// (after the buyer gave up) still books the fill — the seller
    /// applied it, so the buyer owes it.
    fn on_ack(
        &mut self,
        deal: DealId,
        units: u64,
        unit_price: f64,
        now: u64,
        effects: &mut Effects,
    ) {
        if self.filled.contains_key(&deal) {
            return;
        }
        let late = self.outgoing.remove(&deal).is_none();
        if late {
            self.counters.late_fills += 1;
        }
        self.filled.insert(deal, (units, unit_price));
        self.counters.deals_filled += 1;
        self.counters.filled_units += units;
        self.counters.cross_cost += units as f64 * unit_price;
        effects.log(FedEvent::DealFilled {
            tick: now,
            buyer: self.id.index(),
            deal,
            units,
            unit_price,
            late,
        });
    }

    /// Fires deadlines: deal-phase timeouts (with bounded exponential
    /// backoff) and reservation TTLs.
    pub fn on_timers(&mut self, now: u64, effects: &mut Effects) {
        let (timeout, max_retries, retries_enabled) = self.timeouts_cfg;
        let due: Vec<DealId> = self
            .outgoing
            .iter()
            .filter(|(_, d)| d.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for deal in due {
            let open = self.outgoing.get_mut(&deal).expect("deal is present");
            let retrying = retries_enabled && open.attempt < max_retries;
            self.counters.timeouts += 1;
            effects.log(FedEvent::Timeout {
                tick: now,
                node: self.id.index(),
                deal,
                phase: open.phase.name().to_owned(),
                attempt: open.attempt,
                retrying,
            });
            if retrying {
                open.attempt += 1;
                open.deadline = now + (timeout << open.attempt.min(16));
                self.counters.retries += 1;
                let msg = match open.phase {
                    DealPhase::Offering => FedMsg::Offer {
                        deal,
                        units: open.units,
                        max_unit_price: open.max_unit_price,
                        attempt: open.attempt,
                    },
                    DealPhase::Committing { .. } => FedMsg::Commit {
                        deal,
                        attempt: open.attempt,
                    },
                };
                effects.send(open.seller, msg);
            } else {
                let open = self.outgoing.remove(&deal).expect("deal is present");
                match open.phase {
                    DealPhase::Offering => {
                        self.counters.deals_aborted += 1;
                        effects.log(FedEvent::DealAborted {
                            tick: now,
                            node: self.id.index(),
                            deal,
                            phase: "offer:timeout".to_owned(),
                        });
                    }
                    DealPhase::Committing { .. } => {
                        // The commit may or may not have landed — only a
                        // late ack (or reject) can tell us after a heal.
                        self.counters.deals_unresolved += 1;
                        effects.log(FedEvent::DealUnresolved {
                            tick: now,
                            node: self.id.index(),
                            deal,
                        });
                    }
                }
            }
        }
        let expired: Vec<DealId> = self
            .reservations
            .iter()
            .filter(|(_, r)| r.expires <= now)
            .map(|(&id, _)| id)
            .collect();
        for deal in expired {
            let r = self
                .reservations
                .remove(&deal)
                .expect("reservation present");
            self.surplus += r.units;
            self.counters.reservations_expired += 1;
            effects.log(FedEvent::ReservationExpired {
                tick: now,
                seller: self.id.index(),
                deal,
                units: r.units,
            });
        }
    }
}

// ---------------------------------------------------------------------
// The deterministic federation driver.
// ---------------------------------------------------------------------

/// Registry handles for the `edge_fed_*` families.
#[derive(Debug)]
struct FedLive {
    deals_opened: Arc<Counter>,
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
    deals_filled: Arc<Counter>,
    deals_applied: Arc<Counter>,
    deals_aborted: Arc<Counter>,
    deals_unresolved: Arc<Counter>,
    late_fills: Arc<Counter>,
    gossip: Arc<Counter>,
    resold_units: Arc<Counter>,
    resale_revenue: Arc<Gauge>,
    deficit_units: Arc<Counter>,
    local_only: Arc<Counter>,
    reservations_expired: Arc<Counter>,
    open_deals: Arc<Gauge>,
}

impl FedLive {
    fn handle() -> Self {
        let r = global();
        FedLive {
            deals_opened: r.counter(
                "edge_fed_deals_opened_total",
                "Cross-platform re-sell deals opened",
                &[],
            ),
            retries: r.counter("edge_fed_retries_total", "Deal-phase retransmits", &[]),
            timeouts: r.counter(
                "edge_fed_timeouts_total",
                "Deal-phase deadlines missed",
                &[],
            ),
            deals_filled: r.counter(
                "edge_fed_deals_filled_total",
                "Deals completed on the buyer (acks booked)",
                &[],
            ),
            deals_applied: r.counter(
                "edge_fed_deals_applied_total",
                "Deals applied on the seller (demand booked)",
                &[],
            ),
            deals_aborted: r.counter(
                "edge_fed_deals_aborted_total",
                "Deals abandoned before commit",
                &[],
            ),
            deals_unresolved: r.counter(
                "edge_fed_deals_unresolved_total",
                "Commits whose fate stayed unknown after retries",
                &[],
            ),
            late_fills: r.counter(
                "edge_fed_late_fills_total",
                "Fills that arrived after the buyer had given up",
                &[],
            ),
            gossip: r.counter(
                "edge_fed_gossip_total",
                "Surplus/price gossip messages sent",
                &[],
            ),
            resold_units: r.counter(
                "edge_fed_resold_units_total",
                "Capacity units re-sold across platforms",
                &[],
            ),
            resale_revenue: r.float_counter(
                "edge_fed_resale_revenue_total",
                "Revenue from re-selling capacity across platforms",
                &[],
            ),
            deficit_units: r.counter(
                "edge_fed_deficit_units_total",
                "Unmet stage demand platforms tried to shop out",
                &[],
            ),
            local_only: r.counter(
                "edge_fed_local_only_stages_total",
                "Stages cleared degraded (shortfall but no reachable quote)",
                &[],
            ),
            reservations_expired: r.counter(
                "edge_fed_reservations_expired_total",
                "Seller reservations that lapsed before a commit",
                &[],
            ),
            open_deals: r.gauge(
                "edge_fed_open_deals",
                "Deals currently awaiting accept or ack",
                &[],
            ),
        }
    }
}

/// Registers every `edge_fed_*` family up front (see
/// `edge_net::live::preregister`).
pub fn preregister_federation_metrics() {
    let _ = FedLive::handle();
}

/// Outcome of one federation run.
#[derive(Debug, Clone, Serialize)]
pub struct FederationOutcome {
    /// Logical ticks the run took.
    pub ticks: u64,
    /// Head of the federation event chain (hex, 16 chars) — commits to
    /// every network and protocol event of the run.
    pub fed_digest: String,
    /// Head of the substrate's own tape chain (hex, 16 chars).
    pub net_digest: String,
    /// Substrate totals.
    pub net: NetStats,
    /// Per-platform reports, in node order.
    pub nodes: Vec<NodeReport>,
}

/// One platform's slice of the outcome.
#[derive(Debug, Clone, Serialize)]
pub struct NodeReport {
    /// The platform index.
    pub node: usize,
    /// Stages its service completed.
    pub stages: u64,
    /// Rounds its service closed.
    pub rounds: u64,
    /// The service's rolling state digest (hex, 16 chars).
    pub state_digest: String,
    /// The last stage outcome digest, if any.
    pub last_outcome_digest: Option<String>,
    /// Σ payments in the platform's local auctions.
    pub local_cost: f64,
    /// Protocol counters.
    pub counters: NodeCounters,
}

impl FederationOutcome {
    /// Cross-platform fill rate: units bought over units wanted
    /// (`1.0` when nothing was wanted).
    pub fn fill_rate(&self) -> f64 {
        let deficit: u64 = self.nodes.iter().map(|n| n.counters.deficit_units).sum();
        let filled: u64 = self.nodes.iter().map(|n| n.counters.filled_units).sum();
        if deficit == 0 {
            1.0
        } else {
            filled as f64 / deficit as f64
        }
    }

    /// Total platform cost: every local auction payment plus every
    /// cross-platform fill.
    pub fn platform_cost(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.local_cost + n.counters.cross_cost)
            .sum()
    }

    /// FNV-1a digest of the serialized outcome (hex, 16 chars).
    pub fn digest_hex(&self) -> String {
        let json = serde_json::to_string(self).expect("outcome serialization is infallible");
        format!("{:016x}", fnv1a64(json.as_bytes()))
    }
}

/// The single-threaded deterministic driver: advances the substrate one
/// tick at a time, routes deliveries to node handlers in delivery
/// order, fires timers and the round cadence in node order, and folds
/// every event into the federation chain. Pricing inside each stage
/// auction may fan out across threads; nothing here depends on it.
pub struct FederationSim<P> {
    config: FederationConfig,
    net: Network<FedPacket>,
    nodes: Vec<FederationNode<P>>,
    records: Vec<FedRecord>,
    digest: u64,
    next_seq: u64,
    /// Per-`(node, deal)` causal hop counters (see [`FedPacket`]):
    /// bumped on every send, max-merged on every delivery.
    hops: BTreeMap<(usize, DealId), u64>,
    /// Span metadata per net send seq, so substrate events (which carry
    /// only the seq) can be traced with deal provenance. Gossip sends
    /// are not tracked — they stay off the trace.
    sent_meta: BTreeMap<u64, SendMeta>,
    live: FedLive,
}

/// What the driver remembers about one deal-bearing net send.
#[derive(Debug, Clone, Copy)]
struct SendMeta {
    deal: DealId,
    hop: u64,
    kind: &'static str,
    /// Retransmit counter for Offer/Commit sends.
    attempt: Option<u32>,
}

impl<P> fmt::Debug for FederationSim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FederationSim")
            .field("platforms", &self.nodes.len())
            .field("clock", &self.net.clock())
            .field("records", &self.records.len())
            .finish_non_exhaustive()
    }
}

impl<P: FnMut(u64, u64) -> MultiRoundInstance> FederationSim<P> {
    /// Builds a federation of `config.nodes.len()` platforms over
    /// `plan`, drawing each platform's stage provider from
    /// `make_provider(id, service_config)`.
    ///
    /// # Errors
    ///
    /// [`FederationError`] when either configuration fails validation.
    pub fn new(
        config: FederationConfig,
        plan: NetFaultPlan,
        mut make_provider: impl FnMut(PlatformId, ServiceConfig) -> P,
    ) -> Result<Self, FederationError> {
        config.validate()?;
        let platforms = config.nodes.len();
        let net = Network::new(platforms, plan)?;
        let header = FedHeader {
            config: config.clone(),
            plan: net.plan().clone(),
        };
        let digest = fed_header_digest(&header);
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &svc_config)| {
                let id = PlatformId::new(i);
                FederationNode::new(
                    id,
                    platforms,
                    &config,
                    svc_config,
                    make_provider(id, svc_config),
                )
            })
            .collect();
        Ok(FederationSim {
            config,
            net,
            nodes,
            records: Vec::new(),
            digest,
            next_seq: 0,
            hops: BTreeMap::new(),
            sent_meta: BTreeMap::new(),
            live: FedLive::handle(),
        })
    }

    /// The log header this run writes/replays under.
    pub fn header(&self) -> FedHeader {
        FedHeader {
            config: self.config.clone(),
            plan: self.net.plan().clone(),
        }
    }

    /// The recorded chain so far.
    pub fn records(&self) -> &[FedRecord] {
        &self.records
    }

    /// Drives the federation to completion: every horizon closed, every
    /// message delivered or dropped, every deal settled (or the drain
    /// window exhausted). Returns the outcome; the full event chain is
    /// left in [`FederationSim::records`].
    ///
    /// # Errors
    ///
    /// [`FederationError::Service`] if a platform's stage auction
    /// failed structurally (never an input condition).
    pub fn run(
        &mut self,
        collector: Option<&Collector>,
    ) -> Result<FederationOutcome, FederationError> {
        let max_ticks = self.config.max_ticks();
        while self.net.clock() < max_ticks {
            let deliveries = self.net.tick();
            let now = self.net.clock();
            self.absorb_net(collector);
            for delivery in deliveries {
                self.route(delivery, now, collector);
            }
            for i in 0..self.nodes.len() {
                let mut effects = Effects::default();
                self.nodes[i].on_timers(now, &mut effects);
                self.flush(PlatformId::new(i), effects, collector);
            }
            if now.is_multiple_of(self.config.round_ticks) {
                for i in 0..self.nodes.len() {
                    if self.nodes[i].service().horizon_complete() {
                        continue;
                    }
                    let mut effects = Effects::default();
                    self.nodes[i]
                        .close_round(now, collector, &mut effects)
                        .map_err(FederationError::Service)?;
                    self.flush(PlatformId::new(i), effects, collector);
                }
            }
            if self.done() {
                break;
            }
        }
        // Fold each platform's final counters into the chain so offline
        // tools can verify re-derived totals without the outcome struct.
        let settled = self.net.clock();
        for i in 0..self.nodes.len() {
            let counters = *self.nodes[i].counters();
            self.fold(
                FedEvent::NodeSummary {
                    tick: settled,
                    node: i,
                    counters,
                },
                collector,
            );
        }
        Ok(self.outcome())
    }

    /// One delivered message → the receiving node's handler.
    fn route(&mut self, delivery: Delivery<FedPacket>, now: u64, collector: Option<&Collector>) {
        let to = PlatformId::new(delivery.to);
        let from = PlatformId::new(delivery.from);
        let FedPacket { hop, msg } = delivery.payload;
        let _deliver_span = edge_telemetry::spans::enter("fed.deliver");
        // Receive-side causal merge: the receiver's hop counter for the
        // deal catches up to the incoming span, so whatever it sends
        // next is stamped causally after everything it has seen.
        if let Some(deal) = msg_deal(&msg) {
            if edge_telemetry::spans::is_enabled() {
                edge_telemetry::spans::ctr("deal_hops", hop);
                edge_telemetry::spans::ctr("deal_messages", 1);
            }
            let h = self.hops.entry((delivery.to, deal)).or_insert(0);
            *h = (*h).max(hop);
        }
        if matches!(msg, FedMsg::Gossip { .. }) {
            self.live.gossip.incr();
        }
        let mut effects = Effects::default();
        self.nodes[delivery.to].handle(from, msg, now, collector, &mut effects);
        self.flush(to, effects, collector);
    }

    /// Folds a node step's events, stamps and routes its sends, and
    /// folds the network events those sends produced — one canonical
    /// order.
    fn flush(&mut self, from: PlatformId, effects: Effects, collector: Option<&Collector>) {
        for event in effects.events {
            self.fold(event, collector);
        }
        for (to, msg) in effects.sends {
            let hop = match msg_deal(&msg) {
                Some(deal) => {
                    let h = self.hops.entry((from.index(), deal)).or_insert(0);
                    *h += 1;
                    *h
                }
                None => match &msg {
                    FedMsg::Gossip { stage, .. } => *stage,
                    _ => 0,
                },
            };
            let meta = msg_deal(&msg).map(|deal| SendMeta {
                deal,
                hop,
                kind: msg_kind(&msg),
                attempt: match &msg {
                    FedMsg::Offer { attempt, .. } | FedMsg::Commit { attempt, .. } => {
                        Some(*attempt)
                    }
                    _ => None,
                },
            });
            let seq = self
                .net
                .send(from.index(), to.index(), FedPacket { hop, msg });
            if let Some(meta) = meta {
                self.sent_meta.insert(seq, meta);
            }
        }
        self.absorb_net(collector);
        let open: usize = self.nodes.iter().map(|n| n.outgoing.len()).sum();
        self.live.open_deals.set(open as f64);
    }

    /// Drains the substrate's tape into the federation chain.
    fn absorb_net(&mut self, collector: Option<&Collector>) {
        for event in self.net.drain_events() {
            self.fold(FedEvent::Net(event), collector);
        }
    }

    /// Appends one event to the chain, bumps the live counters, and
    /// mirrors deal provenance onto the trace.
    fn fold(&mut self, event: FedEvent, collector: Option<&Collector>) {
        match &event {
            FedEvent::DealOpened { .. } => self.live.deals_opened.incr(),
            FedEvent::Timeout { retrying, .. } => {
                self.live.timeouts.incr();
                if *retrying {
                    self.live.retries.incr();
                }
            }
            FedEvent::DealFilled { late, .. } => {
                self.live.deals_filled.incr();
                if *late {
                    self.live.late_fills.incr();
                }
            }
            FedEvent::DealAborted { .. } => self.live.deals_aborted.incr(),
            FedEvent::DealUnresolved { .. } => self.live.deals_unresolved.incr(),
            FedEvent::DealApplied {
                units, unit_price, ..
            } => {
                self.live.deals_applied.incr();
                self.live.resold_units.add(*units);
                self.live.resale_revenue.add(*units as f64 * unit_price);
            }
            FedEvent::StageCompleted {
                shortfall_units, ..
            } if *shortfall_units > 0 => {
                self.live.deficit_units.add(*shortfall_units);
            }
            FedEvent::LocalOnly { .. } => self.live.local_only.incr(),
            FedEvent::ReservationExpired { .. } => self.live.reservations_expired.incr(),
            _ => {}
        }
        let seq = self.next_seq + 1;
        if let Some(collector) = collector {
            self.trace_event(collector, &event, seq);
        }
        let json = serde_json::to_string(&event).expect("event serialization is infallible");
        self.next_seq = seq;
        self.digest = fnv1a64(format!("{:016x}:{seq}:{json}", self.digest).as_bytes());
        self.records.push(FedRecord {
            seq,
            digest: format!("{:016x}", self.digest),
            event,
        });
    }

    /// Mirrors one chained event onto the deterministic trace with full
    /// causal provenance: every field a timeline needs (`deal`, `hop`,
    /// the `"{deal}#{hop}"` span, and `fed_seq` — the chain seq the
    /// event folds under). Gossip network noise stays off the trace;
    /// every deal-bearing wire event and every protocol transition is
    /// on it.
    fn trace_event(&self, collector: &Collector, event: &FedEvent, fed_seq: u64) {
        let span_fields = |deal: &DealId, node: usize| {
            let hop = self.hops.get(&(node, *deal)).copied().unwrap_or(0);
            vec![
                ("deal", Value::from(deal.to_string())),
                ("span", Value::from(format!("{deal}#{hop}"))),
            ]
        };
        let (name, mut fields): (&'static str, Vec<(&'static str, Value)>) = match event {
            FedEvent::Net(net) => {
                let (seq, label) = match net {
                    NetEvent::Sent { seq, .. } => (*seq, "fed.net.sent"),
                    NetEvent::Dropped { seq, .. } => (*seq, "fed.net.dropped"),
                    NetEvent::Duplicated { seq, .. } => (*seq, "fed.net.duplicated"),
                    NetEvent::Delivered { seq, .. } => (*seq, "fed.net.delivered"),
                };
                // Gossip sends have no meta: they stay off the trace.
                let Some(meta) = self.sent_meta.get(&seq) else {
                    return;
                };
                let mut fields = vec![
                    ("deal", Value::from(meta.deal.to_string())),
                    ("span", Value::from(format!("{}#{}", meta.deal, meta.hop))),
                    ("kind", Value::from(meta.kind)),
                    ("net_seq", Value::from(seq)),
                ];
                if let Some(attempt) = meta.attempt {
                    fields.push(("attempt", Value::from(attempt)));
                }
                match net {
                    NetEvent::Sent { tick, from, to, .. } => {
                        fields.push(("tick", Value::from(*tick)));
                        fields.push(("from", Value::from(*from)));
                        fields.push(("to", Value::from(*to)));
                    }
                    NetEvent::Dropped {
                        tick,
                        from,
                        to,
                        reason,
                        ..
                    } => {
                        fields.push(("tick", Value::from(*tick)));
                        fields.push(("from", Value::from(*from)));
                        fields.push(("to", Value::from(*to)));
                        fields.push((
                            "reason",
                            Value::from(match reason {
                                edge_net::DropReason::Loss => "loss",
                                edge_net::DropReason::Partition => "partition",
                            }),
                        ));
                    }
                    NetEvent::Duplicated {
                        tick, deliver_at, ..
                    } => {
                        fields.push(("tick", Value::from(*tick)));
                        fields.push(("deliver_at", Value::from(*deliver_at)));
                    }
                    NetEvent::Delivered {
                        tick,
                        to,
                        duplicate,
                        ..
                    } => {
                        fields.push(("tick", Value::from(*tick)));
                        fields.push(("to", Value::from(*to)));
                        fields.push(("duplicate", Value::from(*duplicate)));
                    }
                }
                (label, fields)
            }
            FedEvent::Timeout {
                tick,
                node,
                deal,
                phase,
                attempt,
                retrying,
            } => {
                let mut fields = span_fields(deal, *node);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("node", Value::from(*node)));
                fields.push(("phase", Value::from(phase.clone())));
                fields.push(("attempt", Value::from(*attempt)));
                fields.push(("retrying", Value::from(*retrying)));
                ("fed.timeout", fields)
            }
            FedEvent::DealOpened {
                tick,
                buyer,
                seller,
                deal,
                units,
                max_unit_price,
            } => {
                let mut fields = span_fields(deal, *buyer);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("buyer", Value::from(*buyer)));
                fields.push(("seller", Value::from(*seller)));
                fields.push(("units", Value::from(*units)));
                fields.push(("max_unit_price", Value::from(*max_unit_price)));
                ("fed.deal.opened", fields)
            }
            FedEvent::DealReserved {
                tick,
                seller,
                deal,
                units,
                unit_price,
                expires,
            } => {
                let mut fields = span_fields(deal, *seller);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("seller", Value::from(*seller)));
                fields.push(("units", Value::from(*units)));
                fields.push(("unit_price", Value::from(*unit_price)));
                fields.push(("expires", Value::from(*expires)));
                ("fed.deal.reserved", fields)
            }
            FedEvent::DealRejected {
                tick,
                seller,
                deal,
                code,
            } => {
                let mut fields = span_fields(deal, *seller);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("seller", Value::from(*seller)));
                fields.push(("code", Value::from(code.clone())));
                ("fed.deal.rejected", fields)
            }
            FedEvent::DealApplied {
                tick,
                seller,
                deal,
                units,
                unit_price,
            } => {
                let mut fields = span_fields(deal, *seller);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("seller", Value::from(*seller)));
                fields.push(("units", Value::from(*units)));
                fields.push(("unit_price", Value::from(*unit_price)));
                ("fed.deal.applied", fields)
            }
            FedEvent::DealFilled {
                tick,
                buyer,
                deal,
                units,
                unit_price,
                late,
            } => {
                let mut fields = span_fields(deal, *buyer);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("buyer", Value::from(*buyer)));
                fields.push(("units", Value::from(*units)));
                fields.push(("unit_price", Value::from(*unit_price)));
                fields.push(("late", Value::from(*late)));
                ("fed.deal.filled", fields)
            }
            FedEvent::DealAborted {
                tick,
                node,
                deal,
                phase,
            } => {
                let mut fields = span_fields(deal, *node);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("node", Value::from(*node)));
                fields.push(("phase", Value::from(phase.clone())));
                ("fed.deal.aborted", fields)
            }
            FedEvent::DealUnresolved { tick, node, deal } => {
                let mut fields = span_fields(deal, *node);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("node", Value::from(*node)));
                ("fed.deal.unresolved", fields)
            }
            FedEvent::ReservationExpired {
                tick,
                seller,
                deal,
                units,
            } => {
                let mut fields = span_fields(deal, *seller);
                fields.push(("tick", Value::from(*tick)));
                fields.push(("seller", Value::from(*seller)));
                fields.push(("units", Value::from(*units)));
                ("fed.reservation.expired", fields)
            }
            FedEvent::LocalOnly {
                tick,
                node,
                stage,
                shortfall_units,
            } => (
                "fed.local_only",
                vec![
                    ("tick", Value::from(*tick)),
                    ("node", Value::from(*node)),
                    ("stage", Value::from(*stage)),
                    ("shortfall", Value::from(*shortfall_units)),
                ],
            ),
            FedEvent::NodeSummary {
                tick,
                node,
                counters,
            } => (
                "fed.node.summary",
                vec![
                    ("tick", Value::from(*tick)),
                    ("node", Value::from(*node)),
                    ("deals_opened", Value::from(counters.deals_opened)),
                    ("deals_filled", Value::from(counters.deals_filled)),
                    ("deals_applied", Value::from(counters.deals_applied)),
                    ("deals_aborted", Value::from(counters.deals_aborted)),
                    ("late_fills", Value::from(counters.late_fills)),
                    ("filled_units", Value::from(counters.filled_units)),
                    ("resold_units", Value::from(counters.resold_units)),
                    ("deficit_units", Value::from(counters.deficit_units)),
                    ("cross_cost", Value::from(counters.cross_cost)),
                    ("resale_revenue", Value::from(counters.resale_revenue)),
                ],
            ),
            FedEvent::StageCompleted { .. } => return,
        };
        fields.push(("fed_seq", Value::from(fed_seq)));
        collector.emit(Level::Info, name, fields);
    }

    /// True when nothing can happen anymore without new rounds.
    fn done(&self) -> bool {
        self.net.idle()
            && self
                .nodes
                .iter()
                .all(|n| n.service().horizon_complete() && n.settled())
    }

    /// Snapshot of the run's result.
    fn outcome(&self) -> FederationOutcome {
        FederationOutcome {
            ticks: self.net.clock(),
            fed_digest: format!("{:016x}", self.digest),
            net_digest: self.net.digest_hex(),
            net: *self.net.stats(),
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeReport {
                    node: i,
                    stages: n.service().stages_completed(),
                    rounds: n.service().rounds_closed(),
                    state_digest: n.service().state_digest_hex(),
                    last_outcome_digest: n.service().last_outcome_digest_hex(),
                    local_cost: n.service().total_payment(),
                    counters: *n.counters(),
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// The federation log: header + chained records, replayable.
// ---------------------------------------------------------------------

/// The federation log header: everything needed to re-run the exact
/// federation (the run is closed-loop — no wire inputs — so the header
/// determines every record).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedHeader {
    /// The federation configuration.
    pub config: FederationConfig,
    /// The net-fault plan.
    pub plan: NetFaultPlan,
}

/// The chain genesis for a header.
fn fed_header_digest(header: &FedHeader) -> u64 {
    let json = serde_json::to_string(header).expect("header serialization is infallible");
    fnv1a64(format!("{FED_GENESIS}:v{FED_VERSION}:{json}").as_bytes())
}

/// A fully parsed and chain-verified federation log.
#[derive(Debug, Clone, PartialEq)]
pub struct FedLog {
    /// The header.
    pub header: FedHeader,
    /// Every record, in sequence order.
    pub records: Vec<FedRecord>,
}

/// Renders a federation run (header + records) as a JSONL log.
pub fn render_fed_log(header: &FedHeader, records: &[FedRecord]) -> String {
    let mut out = String::new();
    let header_json = serde_json::to_string(header).expect("header serialization is infallible");
    let digest = fed_header_digest(header);
    out.push_str(&format!(
        "{{\"v\":{FED_VERSION},\"seq\":0,\"digest\":\"{digest:016x}\",\"fed\":{header_json}}}\n"
    ));
    for record in records {
        let event_json =
            serde_json::to_string(&record.event).expect("event serialization is infallible");
        out.push_str(&format!(
            "{{\"v\":{FED_VERSION},\"seq\":{},\"digest\":\"{}\",\"event\":{event_json}}}\n",
            record.seq, record.digest
        ));
    }
    out
}

/// True when `text` starts with a federation log header (rather than a
/// single-service event log).
pub fn is_fed_log(text: &str) -> bool {
    let Some(first) = text.lines().find(|l| !l.trim().is_empty()) else {
        return false;
    };
    matches!(
        serde_json::from_str::<serde::Value>(first),
        Ok(v) if v.get("fed").is_some()
    )
}

/// Federation-log reading/validation failure.
#[derive(Debug)]
pub enum FedLogError {
    /// The first record is not a well-formed federation header.
    MissingHeader,
    /// A record's schema version is not understood.
    UnknownVersion {
        /// The version found.
        version: u64,
    },
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A record's digest does not extend the chain.
    DigestMismatch {
        /// The offending sequence number.
        seq: u64,
        /// The digest the chain requires.
        expected: String,
        /// The digest on the record.
        found: String,
    },
    /// Sequence numbers are not contiguous.
    SeqGap {
        /// The sequence number the chain requires.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
}

impl fmt::Display for FedLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedLogError::MissingHeader => {
                write!(
                    f,
                    "the log's first record is not a v{FED_VERSION} federation header"
                )
            }
            FedLogError::UnknownVersion { version } => write!(
                f,
                "unknown federation-log version {version} (this build reads v{FED_VERSION})"
            ),
            FedLogError::Malformed { line, detail } => {
                write!(f, "malformed federation record at line {line}: {detail}")
            }
            FedLogError::DigestMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "federation chain broken at seq {seq}: expected {expected}, found {found}"
            ),
            FedLogError::SeqGap { expected, found } => {
                write!(
                    f,
                    "federation sequence gap: expected seq {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for FedLogError {}

/// Parses a federation JSONL log, verifying version, sequencing, and
/// the full digest chain.
///
/// # Errors
///
/// Any [`FedLogError`] variant.
pub fn parse_fed_log(text: &str) -> Result<FedLog, FedLogError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let Some(first) = lines.first() else {
        return Err(FedLogError::MissingHeader);
    };
    let header_value: serde::Value =
        serde_json::from_str(first).map_err(|e| FedLogError::Malformed {
            line: 1,
            detail: e.to_string(),
        })?;
    let version = match header_value.get("v") {
        Some(serde::Value::U64(v)) => *v,
        _ => return Err(FedLogError::MissingHeader),
    };
    if version != u64::from(FED_VERSION) {
        return Err(FedLogError::UnknownVersion { version });
    }
    let header_field = header_value.get("fed").ok_or(FedLogError::MissingHeader)?;
    let header = FedHeader::deserialize(header_field).map_err(|_| FedLogError::MissingHeader)?;
    let expected = fed_header_digest(&header);
    match header_value.get("digest") {
        Some(serde::Value::Str(found)) if *found == format!("{expected:016x}") => {}
        Some(serde::Value::Str(found)) => {
            return Err(FedLogError::DigestMismatch {
                seq: 0,
                expected: format!("{expected:016x}"),
                found: found.clone(),
            })
        }
        _ => return Err(FedLogError::MissingHeader),
    }

    let mut records = Vec::with_capacity(lines.len().saturating_sub(1));
    let mut chain = expected;
    for (idx, line) in lines.iter().enumerate().skip(1) {
        let line_no = idx + 1;
        let value: serde::Value =
            serde_json::from_str(line).map_err(|e| FedLogError::Malformed {
                line: line_no,
                detail: e.to_string(),
            })?;
        let seq = match value.get("seq") {
            Some(serde::Value::U64(s)) => *s,
            _ => {
                return Err(FedLogError::Malformed {
                    line: line_no,
                    detail: "missing seq".to_owned(),
                })
            }
        };
        let expected_seq = records.len() as u64 + 1;
        if seq != expected_seq {
            return Err(FedLogError::SeqGap {
                expected: expected_seq,
                found: seq,
            });
        }
        let event_field = value.get("event").ok_or(FedLogError::Malformed {
            line: line_no,
            detail: "missing event".to_owned(),
        })?;
        let event = FedEvent::deserialize(event_field).map_err(|e| FedLogError::Malformed {
            line: line_no,
            detail: e.to_string(),
        })?;
        let event_json = serde_json::to_string(&event).expect("event serialization is infallible");
        chain = fnv1a64(format!("{chain:016x}:{seq}:{event_json}").as_bytes());
        let expected_digest = format!("{chain:016x}");
        match value.get("digest") {
            Some(serde::Value::Str(found)) if *found == expected_digest => {}
            Some(serde::Value::Str(found)) => {
                return Err(FedLogError::DigestMismatch {
                    seq,
                    expected: expected_digest,
                    found: found.clone(),
                })
            }
            _ => {
                return Err(FedLogError::Malformed {
                    line: line_no,
                    detail: "missing digest".to_owned(),
                })
            }
        }
        records.push(FedRecord {
            seq,
            digest: expected_digest,
            event,
        });
    }
    Ok(FedLog { header, records })
}

/// First sequence number where two record streams diverge (comparing
/// event bytes and chain digests), or the shorter stream's end + 1 when
/// one is a strict prefix. `None` means byte-identical streams.
pub fn first_divergence(expected: &[FedRecord], got: &[FedRecord]) -> Option<u64> {
    for (a, b) in expected.iter().zip(got.iter()) {
        if a != b {
            return Some(a.seq);
        }
    }
    if expected.len() != got.len() {
        return Some(expected.len().min(got.len()) as u64 + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, Seller};
    use crate::msoa::{MultiRoundInstance, RoundInput};
    use edge_common::id::{BidId, MicroserviceId};
    use edge_common::rng::derive_rng;
    use edge_net::PartitionWindow;
    use rand::Rng;

    /// A small seeded provider: every stage draws a fresh instance from
    /// the node's config. Capacities are tight relative to demand so
    /// some stages end with a shortfall — the trigger for re-sell deals.
    fn provider(config: ServiceConfig) -> impl FnMut(u64, u64) -> MultiRoundInstance {
        move |stage, rounds| {
            let mut rng = derive_rng(config.seed.wrapping_add(stage), "fed-test");
            let n = config.microservices.max(1);
            let rounds = rounds.max(1);
            let sellers: Vec<Seller> = (0..n)
                .map(|s| {
                    Seller::new(MicroserviceId::new(s), 8, (0, rounds - 1)).expect("window ordered")
                })
                .collect();
            let inputs: Vec<RoundInput> = (0..rounds)
                .map(|_| {
                    let bids: Vec<Bid> = (0..n)
                        .map(|s| {
                            let amount = 1 + rng.gen_range(0..3u64);
                            let price = rng.gen_range(5.0..20.0);
                            Bid::new(MicroserviceId::new(s), BidId::new(0), amount, price)
                                .expect("valid bid")
                        })
                        .collect();
                    let demand = rng.gen_range(1..=config.requests.max(1));
                    RoundInput::new(demand, demand, bids)
                })
                .collect();
            MultiRoundInstance::new(sellers, inputs).expect("valid instance")
        }
    }

    fn small_config(seed: u64, k: usize) -> FederationConfig {
        // Demand can reach `requests` units a round against ~4–12 units
        // of feasible supply, so some stages end short — the trigger
        // for cross-platform re-selling.
        let base = ServiceConfig {
            seed,
            microservices: 4,
            requests: 18,
            total_rounds: 8,
            stage_rounds: 2,
            book_cap: 256,
            demand_cap: 10_000,
        };
        FederationConfig::uniform(base, k)
    }

    fn run_once(
        config: FederationConfig,
        plan: NetFaultPlan,
    ) -> (FederationOutcome, Vec<FedRecord>) {
        let mut sim = FederationSim::new(config, plan, |_, c| provider(c)).unwrap();
        let outcome = sim.run(None).unwrap();
        (outcome, sim.records().to_vec())
    }

    #[test]
    fn federation_run_is_reproducible() {
        let a = run_once(small_config(9, 3), NetFaultPlan::ideal(1));
        let b = run_once(small_config(9, 3), NetFaultPlan::ideal(1));
        assert_eq!(a.0.fed_digest, b.0.fed_digest);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0.digest_hex(), b.0.digest_hex());
    }

    #[test]
    fn deals_flow_on_an_ideal_network() {
        // Decorrelated node seeds leave some platforms short while
        // others hold surplus — the re-sell protocol must move units.
        let (outcome, records) = run_once(small_config(9, 3), NetFaultPlan::ideal(1));
        let opened: u64 = outcome.nodes.iter().map(|n| n.counters.deals_opened).sum();
        let filled: u64 = outcome.nodes.iter().map(|n| n.counters.filled_units).sum();
        let resold: u64 = outcome.nodes.iter().map(|n| n.counters.resold_units).sum();
        assert!(opened > 0, "no deals opened: {outcome:?}");
        assert!(filled > 0, "no deal filled: {outcome:?}");
        assert_eq!(filled, resold, "buyer fills must equal seller applies");
        assert!(records
            .iter()
            .any(|r| matches!(r.event, FedEvent::DealApplied { .. })));
    }

    #[test]
    fn single_platform_matches_standalone_service() {
        // K = 1 under an ideal (or any) plan sees only RoundClosed
        // events — exactly what a standalone service run applies.
        let config = small_config(11, 1);
        let (outcome, _) = run_once(config.clone(), NetFaultPlan::ideal(3));
        let mut svc = AuctionService::new(config.nodes[0], provider(config.nodes[0]));
        while !svc.horizon_complete() {
            svc.apply(&ServiceEvent::RoundClosed, None).unwrap();
        }
        assert_eq!(outcome.nodes[0].state_digest, svc.state_digest_hex());
        assert_eq!(
            outcome.nodes[0].last_outcome_digest,
            svc.last_outcome_digest_hex()
        );
    }

    #[test]
    fn isolated_platform_degrades_to_standalone() {
        let config = small_config(13, 3);
        let mut plan = NetFaultPlan::ideal(5);
        plan.partitions.push(PartitionWindow {
            from: 0,
            until: u64::MAX,
            isolated: 2,
        });
        let (outcome, records) = run_once(config.clone(), plan);
        let mut svc = AuctionService::new(config.nodes[2], provider(config.nodes[2]));
        while !svc.horizon_complete() {
            svc.apply(&ServiceEvent::RoundClosed, None).unwrap();
        }
        assert_eq!(outcome.nodes[2].state_digest, svc.state_digest_hex());
        assert!(records
            .iter()
            .any(|r| matches!(r.event, FedEvent::Net(NetEvent::Dropped { .. }))));
    }

    #[test]
    fn log_round_trips_and_replays_identically() {
        let config = small_config(17, 3);
        let mut plan = NetFaultPlan::ideal(7);
        plan.link.drop_probability = 0.3;
        plan.link.latency_max = 4;
        let mut sim = FederationSim::new(config.clone(), plan.clone(), |_, c| provider(c)).unwrap();
        let outcome = sim.run(None).unwrap();
        let text = render_fed_log(&sim.header(), sim.records());
        assert!(is_fed_log(&text));
        let parsed = parse_fed_log(&text).unwrap();
        assert_eq!(parsed.header, sim.header());
        assert_eq!(parsed.records, sim.records());

        // Replay: re-run from the parsed header, diff the streams.
        let mut again =
            FederationSim::new(parsed.header.config, parsed.header.plan, |_, c| provider(c))
                .unwrap();
        let outcome2 = again.run(None).unwrap();
        assert_eq!(first_divergence(&parsed.records, again.records()), None);
        assert_eq!(outcome.fed_digest, outcome2.fed_digest);
    }

    #[test]
    fn log_ends_with_node_summaries_matching_outcome() {
        let config = small_config(29, 3);
        let mut sim =
            FederationSim::new(config.clone(), NetFaultPlan::ideal(4), |_, c| provider(c)).unwrap();
        let outcome = sim.run(None).unwrap();
        let k = config.nodes.len();
        let tail = &sim.records()[sim.records().len() - k..];
        for (i, rec) in tail.iter().enumerate() {
            match &rec.event {
                FedEvent::NodeSummary { node, counters, .. } => {
                    assert_eq!(*node, i);
                    assert_eq!(*counters, outcome.nodes[i].counters);
                }
                other => panic!("expected NodeSummary, got {other:?}"),
            }
        }
    }

    #[test]
    fn spans_count_hops_causally_on_an_ideal_network() {
        // With no faults there are no retransmits, so each deal's sends
        // must climb one hop per message: Offer#1 → Accept#2 → Commit#3
        // → Ack#4 (or Offer#1 → Reject#2).
        let (_, records) = run_once(small_config(9, 3), NetFaultPlan::ideal(1));
        let mut hops: BTreeMap<DealId, Vec<(&'static str, u64)>> = BTreeMap::new();
        for rec in &records {
            if let FedEvent::Net(NetEvent::Sent { payload, .. }) = &rec.event {
                let packet: FedPacket = serde_json::from_str(payload).unwrap();
                if let Some(deal) = msg_deal(&packet.msg) {
                    hops.entry(deal)
                        .or_default()
                        .push((msg_kind(&packet.msg), packet.hop));
                }
            }
        }
        assert!(!hops.is_empty(), "no deal traffic recorded");
        for (deal, msgs) in &hops {
            assert_eq!(msgs[0], ("Offer", 1), "deal {deal} must start at Offer#1");
            for pair in msgs.windows(2) {
                assert!(
                    pair[0].1 < pair[1].1,
                    "deal {deal}: hops not strictly increasing: {msgs:?}"
                );
            }
        }
    }

    #[test]
    fn tampered_log_is_rejected_at_the_exact_record() {
        let config = small_config(19, 2);
        let mut sim =
            FederationSim::new(config, NetFaultPlan::ideal(2), |_, c| provider(c)).unwrap();
        sim.run(None).unwrap();
        let text = render_fed_log(&sim.header(), sim.records());
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert!(lines.len() > 3);
        lines[2] = lines[2].replace("\"tick\":", "\"tick\": 9");
        let tampered = lines.join("\n");
        match parse_fed_log(&tampered) {
            Err(FedLogError::DigestMismatch { seq, .. }) => assert_eq!(seq, 2),
            Err(FedLogError::Malformed { line, .. }) => assert_eq!(line, 3),
            other => panic!("tampering undetected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_commit_applies_once() {
        // Drive a seller node directly: offer, commit, duplicate commit.
        let fed = small_config(23, 2);
        let seller_cfg = fed.nodes[1];
        let mut seller = FederationNode::new(
            PlatformId::new(1),
            2,
            &fed,
            seller_cfg,
            provider(seller_cfg),
        );
        seller.seed_surplus(50, 2.5);
        let deal = DealId {
            origin: PlatformId::new(0),
            seq: 0,
        };
        let buyer = PlatformId::new(0);
        let mut fx = Effects::default();
        seller.handle(
            buyer,
            FedMsg::Offer {
                deal,
                units: 10,
                max_unit_price: 3.0,
                attempt: 0,
            },
            1,
            None,
            &mut fx,
        );
        assert!(matches!(fx.sends.last(), Some((_, FedMsg::Accept { .. }))));
        let digest_before_commit = seller.service().state_digest_hex();
        let mut fx = Effects::default();
        seller.handle(buyer, FedMsg::Commit { deal, attempt: 0 }, 2, None, &mut fx);
        assert!(matches!(fx.sends.last(), Some((_, FedMsg::Ack { .. }))));
        let digest_after_commit = seller.service().state_digest_hex();
        assert_ne!(digest_before_commit, digest_after_commit);
        for tick in 3..6 {
            let mut fx = Effects::default();
            seller.handle(
                buyer,
                FedMsg::Commit { deal, attempt: 1 },
                tick,
                None,
                &mut fx,
            );
            assert!(
                matches!(fx.sends.last(), Some((_, FedMsg::Ack { .. }))),
                "duplicate commit must re-ack"
            );
            assert_eq!(
                seller.service().state_digest_hex(),
                digest_after_commit,
                "duplicate commit must not re-apply"
            );
        }
        assert_eq!(seller.counters().deals_applied, 1);
    }
}
