//! `edge-auction` — online auction mechanisms for microservice resource
//! sharing in edge clouds.
//!
//! This crate is the primary contribution of *Incentivizing Microservices
//! for Online Resource Sharing in Edge Clouds* (Samanta, Jiao,
//! Mühlhäuser, Wang — IEEE ICDCS 2019), reimplemented as a reusable
//! library:
//!
//! * [`bid`] — bids `(a_ij^t, J_ij^t)` and seller profiles
//!   (capacity `Θ_i`, availability window `[t⁻, t⁺]`);
//! * [`wsp`] — the NP-hard single-round Winner Selection Problem
//!   (ILP 12) with conversions to exact solvers;
//! * [`ssam`] — **SSAM** (Algorithm 1): greedy primal–dual winner
//!   selection, Myerson critical-value payments, and the `π = H_X·Ξ`
//!   dual certificate of Theorem 3;
//! * [`msoa`] — **MSOA** (Algorithm 2): the multi-stage online framework
//!   with per-seller ψ price scaling and capacity protection,
//!   `αβ/(β−1)`-competitive (Theorem 7);
//! * [`recovery`] — MSOA under injected faults: deterministic fault
//!   plans (seller defaults, crash windows, sensor dropouts) and the
//!   platform's recovery policy (pro-rata clawback, reliability-scaled
//!   prices, blacklisting, bounded backfill re-auctions);
//! * [`service`] — the event-sourced auction service: a typed event
//!   vocabulary, an append-only digest-chained event log, and a pure
//!   state machine that replays any recorded run byte-identically;
//! * [`federation`] — multi-platform re-selling over the `edge-net`
//!   substrate: the two-phase deal protocol, digest-chained fed logs,
//!   causal span ids (`deal#hop`) on every message, and live
//!   `edge_fed_*` metric families;
//! * [`live`] — process-global live metric registration for the
//!   auction/recovery/sim layers (`edge_auction_*`, `edge_recovery_*`,
//!   `edge_sim_*`);
//! * [`variants`] — the MSOA-DA / MSOA-RC / MSOA-OA comparisons of
//!   Figure 5(a);
//! * [`offline`] — exact offline optima (covering DP per round,
//!   branch-and-bound for the full horizon) for performance ratios;
//! * [`baselines`] — fixed pricing, random selection, and a total-price
//!   greedy ablation;
//! * [`properties`] — executable audits of truthfulness, individual
//!   rationality, monotonicity, critical payments, and economic loss.
//!
//! # Examples
//!
//! A complete single-round auction:
//!
//! ```
//! use edge_auction::bid::Bid;
//! use edge_auction::wsp::WspInstance;
//! use edge_auction::ssam::{run_ssam, SsamConfig};
//! use edge_auction::offline::offline_optimum_round;
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let bids = vec![
//!     Bid::new(MicroserviceId::new(0), BidId::new(0), 3, 6.0)?,
//!     Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 3.0)?,
//!     Bid::new(MicroserviceId::new(2), BidId::new(0), 4, 10.0)?,
//! ];
//! let instance = WspInstance::new(5, bids)?;
//! let outcome = run_ssam(&instance, &SsamConfig::default())?;
//! let optimum = offline_optimum_round(&instance).expect("feasible");
//! let ratio = outcome.social_cost.value() / optimum;
//! assert!(ratio >= 1.0 && ratio <= outcome.certificate.pi);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
pub(crate) mod arena;
pub mod baselines;
pub mod bid;
pub mod budget;
pub mod error;
pub mod federation;
pub mod live;
pub mod msoa;
pub mod msoa_multi;
pub mod multi_buyer;
pub mod offline;
pub mod pricing;
pub mod properties;
pub mod recovery;
pub(crate) mod round_buffer;
pub mod service;
pub mod ssam;
pub mod variants;
pub mod vcg;
pub mod wsp;

pub use analysis::{compare_with_vcg, welfare_report, OverpaymentReport, WelfareReport};
pub use baselines::{run_fixed_price, run_price_greedy, run_random_selection, BaselineOutcome};
pub use bid::{Bid, Seller};
pub use budget::{required_budget, run_budgeted_ssam, BudgetedOutcome};
pub use error::AuctionError;
pub use msoa::{
    run_msoa, run_msoa_traced, MsoaConfig, MsoaOutcome, MsoaWinner, MultiRoundInstance, RoundInput,
    RoundResult,
};
pub use msoa_multi::{
    run_msoa_multi, run_msoa_multi_traced, MsoaMultiConfig, MsoaMultiOutcome, MultiBuyerRound,
    MultiBuyerRoundResult,
};
pub use multi_buyer::{
    run_ssam_multi, CoverBid, MultiBuyerOutcome, MultiBuyerWinner, MultiBuyerWsp,
};
pub use offline::{offline_optimum_multi, offline_optimum_round, per_round_dp_bound, OfflineBound};
pub use pricing::{
    available_pricing_threads, current_pricing_threads, pricing_threads_setting,
    set_pricing_threads, set_shards, shards_setting,
};
#[doc(hidden)]
pub use pricing::{lane_class_cap, replay_batch_setting, set_lane_class_cap, set_replay_batch};
pub use properties::{
    audit_truthfulness, break_even_unit_charge, check_critical_payments,
    check_individual_rationality, check_monotonicity, economic_loss, TruthfulnessViolation,
};
pub use recovery::{
    run_msoa_with_faults, run_msoa_with_faults_traced, CrashWindow, DefaultEvent, DropoutWindow,
    FaultInjectionConfig, FaultPlan, FaultRound, FaultWinner, FaultyMsoaOutcome, RecoveryConfig,
};
pub use service::{
    parse_log, Applied, AuctionService, LogError, LogRecord, LogWriter, ParsedLog, ServiceConfig,
    ServiceError, ServiceEvent, StageSummary, LOG_VERSION,
};
pub use ssam::{
    run_ssam, run_ssam_traced, CriticalSource, HeapStats, RatioCertificate, SsamConfig,
    SsamOutcome, SsamStats, WinningBid,
};
pub use variants::{run_variant, transform_instance, MsoaVariant};
pub use vcg::{run_vcg, VcgOutcome, VcgWinner};
pub use wsp::WspInstance;
