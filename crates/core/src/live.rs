//! Live metric instrumentation for the auction layers.
//!
//! Every MSOA / recovery run reports per-round facts into the
//! process-global [`edge_telemetry::registry`] so a running
//! `edge-market serve` daemon can expose them at `/metrics`. The
//! handles here are looked up once per run (one registry lock per
//! family) and then bumped with relaxed atomics at the end of each
//! round — strictly *reads* of auction state, so recording can never
//! perturb an outcome or a deterministic trace.
//!
//! Pricing effort is attributed per round by diffing the ambient
//! [`edge_telemetry::pricing`] totals around the payment phase
//! ([`PricingSnapshot::delta_since`]). Those statics are process-global
//! by design (they must stay out of the deterministic trace), so when
//! several auctions run concurrently — e.g. the parallel bench sweep —
//! a round's delta may include another thread's pricing work. The
//! `_total` counters stay exact; the per-round summaries are
//! best-effort attribution and documented as such in DESIGN.md §12.

use edge_telemetry::pricing::PricingSnapshot;
use edge_telemetry::registry::global;
use edge_telemetry::{Counter, Gauge, Summary};
use std::sync::Arc;

/// Registry handles for the plain-MSOA (auction + pricing) families.
#[derive(Debug)]
pub(crate) struct AuctionLive {
    rounds: Arc<Counter>,
    winners: Arc<Counter>,
    infeasible: Arc<Counter>,
    payment: Arc<Gauge>,
    social_cost: Arc<Gauge>,
    coverage: Arc<Gauge>,
    psi_max: Arc<Gauge>,
    saturation: Arc<Gauge>,
    replays: Arc<Counter>,
    replay_iterations: Arc<Counter>,
    prefix_iterations: Arc<Counter>,
    pricing_nanos: Arc<Counter>,
    replays_per_round: Arc<Summary>,
    replay_iterations_per_round: Arc<Summary>,
    prefix_iterations_per_round: Arc<Summary>,
    pricing_nanos_per_round: Arc<Summary>,
}

impl AuctionLive {
    /// Looks up (registering on first use) every auction family.
    pub(crate) fn handle() -> Self {
        let r = global();
        AuctionLive {
            rounds: r.counter(
                "edge_auction_rounds_total",
                "MSOA auction rounds completed",
                &[],
            ),
            winners: r.counter(
                "edge_auction_winners_total",
                "Winning bids across all rounds",
                &[],
            ),
            infeasible: r.counter(
                "edge_auction_infeasible_rounds_total",
                "Rounds where demand exceeded feasible supply",
                &[],
            ),
            payment: r.float_counter(
                "edge_auction_payment_total",
                "Accumulated critical-value payments (currency units)",
                &[],
            ),
            social_cost: r.float_counter(
                "edge_auction_social_cost_total",
                "Accumulated social cost of winning bids (currency units)",
                &[],
            ),
            coverage: r.gauge(
                "edge_auction_coverage_ratio",
                "Last round's supplied units over estimated demand",
                &[],
            ),
            psi_max: r.gauge(
                "edge_auction_psi_max",
                "Largest per-seller dual price scaler after the last round",
                &[],
            ),
            saturation: r.gauge(
                "edge_auction_capacity_saturation_ratio",
                "Consumed capacity over total capacity after the last round",
                &[],
            ),
            replays: r.counter(
                "edge_pricing_replays_total",
                "Myerson payment replays (one per winner per round)",
                &[],
            ),
            replay_iterations: r.counter(
                "edge_pricing_replay_iterations_total",
                "Greedy iterations executed across payment replays",
                &[],
            ),
            prefix_iterations: r.counter(
                "edge_pricing_prefix_iterations_total",
                "Replay iterations answered O(1) from the shared prefix",
                &[],
            ),
            pricing_nanos: r.counter(
                "edge_pricing_nanos_total",
                "Wall-clock nanoseconds spent in the payment phase",
                &[],
            ),
            replays_per_round: r.summary(
                "edge_pricing_replays_per_round",
                "Payment replays per auction round (best-effort attribution)",
                &[],
            ),
            replay_iterations_per_round: r.summary(
                "edge_pricing_replay_iterations_per_round",
                "Replay iterations per auction round (best-effort attribution)",
                &[],
            ),
            prefix_iterations_per_round: r.summary(
                "edge_pricing_prefix_iterations_per_round",
                "Prefix-answered iterations per auction round (best-effort attribution)",
                &[],
            ),
            pricing_nanos_per_round: r.summary(
                "edge_pricing_round_nanos",
                "Payment-phase nanoseconds per auction round (best-effort attribution)",
                &[],
            ),
        }
    }

    /// Records one finished round. `supplied` is the winners' total
    /// committed units; `chi_sum`/`capacity_sum` the consumed and total
    /// seller capacity after the round's ψ/χ updates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_round(
        &self,
        winners: usize,
        infeasible: bool,
        supplied: u64,
        demand: u64,
        payment: f64,
        social_cost: f64,
        psi_max: f64,
        chi_sum: u64,
        capacity_sum: u64,
        pricing: &PricingSnapshot,
    ) {
        self.rounds.incr();
        self.winners.add(winners as u64);
        if infeasible {
            self.infeasible.incr();
        }
        self.payment.add(payment);
        self.social_cost.add(social_cost);
        self.coverage.set(if demand == 0 {
            1.0
        } else {
            supplied as f64 / demand as f64
        });
        self.psi_max.set(psi_max);
        self.saturation.set(if capacity_sum == 0 {
            0.0
        } else {
            chi_sum as f64 / capacity_sum as f64
        });
        self.replays.add(pricing.replays);
        self.replay_iterations.add(pricing.replay_iterations);
        self.prefix_iterations.add(pricing.prefix_iterations);
        self.pricing_nanos.add(pricing.nanos);
        self.replays_per_round.observe(pricing.replays);
        self.replay_iterations_per_round
            .observe(pricing.replay_iterations);
        self.prefix_iterations_per_round
            .observe(pricing.prefix_iterations);
        self.pricing_nanos_per_round.observe(pricing.nanos);
    }
}

/// Registry handles for the fault-recovery families.
#[derive(Debug)]
pub(crate) struct RecoveryLive {
    defaults: Arc<Counter>,
    clawback: Arc<Gauge>,
    blacklist_size: Arc<Gauge>,
    sla_violations: Arc<Counter>,
    backfill_attempts: Arc<Counter>,
    shortfall_units: Arc<Counter>,
}

impl RecoveryLive {
    /// Looks up (registering on first use) every recovery family.
    pub(crate) fn handle() -> Self {
        let r = global();
        RecoveryLive {
            defaults: r.counter(
                "edge_recovery_defaults_total",
                "Winner settlements that under-delivered",
                &[],
            ),
            clawback: r.float_counter(
                "edge_recovery_clawback_total",
                "Payments clawed back pro-rata from defaulters (currency units)",
                &[],
            ),
            blacklist_size: r.gauge(
                "edge_recovery_blacklist_size",
                "Sellers currently blacklisted",
                &[],
            ),
            sla_violations: r.counter(
                "edge_recovery_sla_violations_total",
                "Rounds ending with unserved demand",
                &[],
            ),
            backfill_attempts: r.counter(
                "edge_recovery_backfill_attempts_total",
                "Backfill re-auction rungs attempted",
                &[],
            ),
            shortfall_units: r.counter(
                "edge_recovery_shortfall_units_total",
                "Demand units left unserved after backfill",
                &[],
            ),
        }
    }

    /// Records one finished fault-tolerant round.
    pub(crate) fn record_round(
        &self,
        defaults: u64,
        clawed_back: f64,
        blacklisted: usize,
        sla_violated: bool,
        backfill_attempts: u64,
        shortfall: u64,
    ) {
        self.defaults.add(defaults);
        self.clawback.add(clawed_back);
        self.blacklist_size.set(blacklisted as f64);
        if sla_violated {
            self.sla_violations.incr();
        }
        self.backfill_attempts.add(backfill_attempts);
        self.shortfall_units.add(shortfall);
    }
}

/// Registry handles for the event-sourced service families.
#[derive(Debug)]
pub(crate) struct ServiceLive {
    bid_submitted: Arc<Counter>,
    bid_withdrawn: Arc<Counter>,
    demand_reported: Arc<Counter>,
    round_closed: Arc<Counter>,
    seller_defaulted: Arc<Counter>,
    stages: Arc<Counter>,
    book_size: Arc<Gauge>,
}

impl ServiceLive {
    /// Looks up (registering on first use) every service family.
    pub(crate) fn handle() -> Self {
        let r = global();
        let events = |kind: &str| {
            r.counter(
                "edge_service_events_total",
                "Accepted service events by type",
                &[("type", kind)],
            )
        };
        ServiceLive {
            bid_submitted: events("bid_submitted"),
            bid_withdrawn: events("bid_withdrawn"),
            demand_reported: events("demand_reported"),
            round_closed: events("round_closed"),
            seller_defaulted: events("seller_defaulted"),
            stages: r.counter(
                "edge_service_stages_total",
                "Stage auctions completed by the event-sourced service",
                &[],
            ),
            book_size: r.gauge(
                "edge_service_book_size",
                "Standing bids on the service book",
                &[],
            ),
        }
    }

    /// Records one accepted event and the resulting book size.
    pub(crate) fn record_event(&self, kind: &str, book_len: usize) {
        match kind {
            "bid_submitted" => self.bid_submitted.incr(),
            "bid_withdrawn" => self.bid_withdrawn.incr(),
            "demand_reported" => self.demand_reported.incr(),
            "round_closed" => self.round_closed.incr(),
            _ => self.seller_defaulted.incr(),
        }
        self.book_size.set(book_len as f64);
    }

    /// Records one completed stage auction.
    pub(crate) fn record_stage(&self) {
        self.stages.incr();
    }
}

/// Registers every auction, pricing, recovery, and service family (at
/// zero) so a first `/metrics` scrape shows the full catalog before any
/// round has run. `edge-market serve` calls this on startup.
pub fn preregister() {
    let _ = AuctionLive::handle();
    let _ = RecoveryLive::handle();
    let _ = ServiceLive::handle();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preregister_exposes_all_families_at_zero() {
        preregister();
        let text = global().render();
        for family in [
            "edge_auction_rounds_total",
            "edge_auction_payment_total",
            "edge_auction_coverage_ratio",
            "edge_pricing_replays_total",
            "edge_pricing_round_nanos",
            "edge_recovery_defaults_total",
            "edge_recovery_blacklist_size",
            "edge_service_events_total",
            "edge_service_book_size",
        ] {
            assert!(text.contains(family), "missing family {family}");
        }
        edge_telemetry::registry::validate_exposition(&text).expect("catalog validates");
    }

    #[test]
    fn record_round_accumulates() {
        let live = AuctionLive::handle();
        let before = live.rounds.get();
        let winners_before = live.winners.get();
        live.record_round(
            3,
            false,
            10,
            10,
            42.0,
            40.0,
            0.5,
            10,
            100,
            &PricingSnapshot {
                replays: 3,
                replay_iterations: 30,
                prefix_iterations: 20,
                nanos: 1_000,
            },
        );
        assert_eq!(live.rounds.get(), before + 1);
        assert_eq!(live.winners.get(), winners_before + 3);
        assert_eq!(live.coverage.get(), 1.0);
        assert_eq!(live.saturation.get(), 0.1);
    }

    #[test]
    fn recovery_round_accumulates() {
        let live = RecoveryLive::handle();
        let before = live.sla_violations.get();
        live.record_round(1, 2.5, 4, true, 2, 7);
        assert_eq!(live.sla_violations.get(), before + 1);
        assert_eq!(live.blacklist_size.get(), 4.0);
    }
}
