//! MSOA — the Multi-Stage Online Auction (Algorithm 2).
//!
//! MSOA ties a series of single-stage auctions into an online mechanism
//! that never looks at future rounds. The key idea is a per-seller dual
//! variable `ψ_i` that *augments* the seller's bid price as its remaining
//! long-run capacity `Θ_i` depletes:
//!
//! * a bid is **excluded** once `χ_i + a_ij > Θ_i` (the seller has sold
//!   too much already — constraint (11), Alg. 2 line 5);
//! * otherwise its **scaled price** is `∇_ij = J_ij + a_ij · ψ_i^{t−1}`
//!   (line 8), so sellers close to depletion look expensive and are
//!   saved for rounds where they are truly needed;
//! * after each win, `ψ_i ← ψ_i(1 + a/(α·Θ_i)) + J·a/(α·Θ_i²)`
//!   (line 11), a multiplicative-update familiar from online primal-dual
//!   covering.
//!
//! Theorem 7 gives the competitive ratio `α·β/(β−1)` against the offline
//! optimum, with `α` the single-stage approximation factor and
//! `β = min_i Θ_i / a_ij > 1`.
//!
//! # Examples
//!
//! ```
//! use edge_auction::bid::{Bid, Seller};
//! use edge_auction::msoa::{run_msoa, MsoaConfig, MultiRoundInstance, RoundInput};
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let sellers = vec![
//!     Seller::new(MicroserviceId::new(0), 10, (0, 1))?,
//!     Seller::new(MicroserviceId::new(1), 10, (0, 1))?,
//! ];
//! let round = |price0: f64, price1: f64| -> Result<RoundInput, edge_auction::AuctionError> {
//!     Ok(RoundInput::new(3, 3, vec![
//!         Bid::new(MicroserviceId::new(0), BidId::new(0), 2, price0)?,
//!         Bid::new(MicroserviceId::new(1), BidId::new(0), 2, price1)?,
//!     ]))
//! };
//! let instance = MultiRoundInstance::new(sellers, vec![round(4.0, 6.0)?, round(4.0, 6.0)?])?;
//! let outcome = run_msoa(&instance, &MsoaConfig::default())?;
//! assert_eq!(outcome.rounds.len(), 2);
//! assert!(outcome.competitive_bound.is_finite());
//! # Ok(())
//! # }
//! ```

use crate::bid::{Bid, Seller};
use crate::error::AuctionError;
use crate::ssam::{run_ssam_traced, SsamConfig};
use crate::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use edge_telemetry::{event, Level, Scoped, Trace, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One round's market input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundInput {
    /// The demand the platform *estimates* and auctions for (`X^t` from
    /// the §III estimator).
    pub estimated_demand: u64,
    /// The ground-truth demand (used by the MSOA-DA variant and for
    /// accounting).
    pub true_demand: u64,
    /// Bids submitted this round, with **true** prices `J_ij^t`.
    pub bids: Vec<Bid>,
}

impl RoundInput {
    /// Creates a round input.
    pub fn new(estimated_demand: u64, true_demand: u64, bids: Vec<Bid>) -> Self {
        RoundInput {
            estimated_demand,
            true_demand,
            bids,
        }
    }
}

/// A validated multi-round instance: the seller table plus per-round
/// inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiRoundInstance {
    sellers: Vec<Seller>,
    rounds: Vec<RoundInput>,
}

impl MultiRoundInstance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::EmptyInstance`] — no rounds.
    /// * [`AuctionError::UnknownSeller`] — a bid references a seller not
    ///   in the table.
    pub fn new(sellers: Vec<Seller>, rounds: Vec<RoundInput>) -> Result<Self, AuctionError> {
        if rounds.is_empty() {
            return Err(AuctionError::EmptyInstance);
        }
        let known: std::collections::BTreeSet<MicroserviceId> =
            sellers.iter().map(|s| s.id).collect();
        for round in &rounds {
            for bid in &round.bids {
                if !known.contains(&bid.seller) {
                    return Err(AuctionError::UnknownSeller(bid.seller.index()));
                }
            }
        }
        Ok(MultiRoundInstance { sellers, rounds })
    }

    /// The seller table.
    pub fn sellers(&self) -> &[Seller] {
        &self.sellers
    }

    /// The per-round inputs.
    pub fn rounds(&self) -> &[RoundInput] {
        &self.rounds
    }

    /// Number of rounds `T`.
    pub fn num_rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// `β = min_i Θ_i / a_ij` over every bid in the instance
    /// (`f64::INFINITY` when no bids exist).
    pub fn beta(&self) -> f64 {
        let caps: BTreeMap<MicroserviceId, u64> =
            self.sellers.iter().map(|s| (s.id, s.capacity)).collect();
        self.rounds
            .iter()
            .flat_map(|r| &r.bids)
            .map(|b| caps[&b.seller] as f64 / b.amount as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// A conservative single-stage approximation factor `α` derived from
    /// the instance: the harmonic number of the largest round demand
    /// times the global unit-price spread of submitted bids.
    pub fn derive_alpha(&self) -> f64 {
        let max_demand = self
            .rounds
            .iter()
            .map(|r| r.estimated_demand)
            .max()
            .unwrap_or(0);
        let harmonic: f64 = (1..=max_demand).map(|k| 1.0 / k as f64).sum();
        let unit_prices: Vec<f64> = self
            .rounds
            .iter()
            .flat_map(|r| &r.bids)
            .map(Bid::unit_price)
            .collect();
        let spread = match (
            unit_prices.iter().copied().fold(f64::INFINITY, f64::min),
            unit_prices.iter().copied().fold(0.0f64, f64::max),
        ) {
            (min, max) if min > 0.0 && max.is_finite() => max / min,
            _ => 1.0,
        };
        (harmonic * spread).max(1.0)
    }
}

/// Configuration of the online mechanism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MsoaConfig {
    /// Single-stage auction settings.
    pub ssam: SsamConfig,
    /// The `α` used in the ψ update. `None` derives it from the instance
    /// via [`MultiRoundInstance::derive_alpha`].
    ///
    /// **Truthfulness footgun:** a derived `α` depends on the submitted
    /// bid prices, so a seller's misreport changes every seller's ψ
    /// trajectory and the per-round mechanism is no longer independent
    /// of reports. Leaving this `None` is fine for benchmarking the
    /// competitive ratio, but incentive experiments must pin `α` (see
    /// [`MsoaConfig::pinned`]); the runner warns once per process when
    /// it falls back to deriving.
    pub alpha: Option<f64>,
}

impl MsoaConfig {
    /// A config with `α` pinned to a report-independent constant, the
    /// safe choice whenever truthfulness matters.
    pub fn pinned(alpha: f64) -> Self {
        MsoaConfig {
            ssam: SsamConfig::default(),
            alpha: Some(alpha),
        }
    }
}

/// Resolves the `α` an online run will use, warning loudly (once per
/// process) when it has to derive one from the reported bids.
pub(crate) fn resolve_alpha(instance: &MultiRoundInstance, config: &MsoaConfig) -> f64 {
    match config.alpha {
        Some(alpha) => alpha,
        None => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                // Through the telemetry layer: with no subscriber this
                // falls back to the same `warning: ...` stderr line the
                // bare eprintln! used to produce.
                event!(warn: "msoa.alpha_derived",
                    message = "MsoaConfig.alpha is None; deriving α from submitted bids. \
                     A derived α depends on reports, which voids the truthfulness guarantee \
                     — pin it with MsoaConfig::pinned(α) for incentive experiments.");
            });
            instance.derive_alpha()
        }
    }
}

/// A winner in one MSOA round, carrying both the true and the scaled
/// price.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MsoaWinner {
    /// The selling microservice.
    pub seller: MicroserviceId,
    /// Which alternative bid won.
    pub bid: BidId,
    /// Units offered by the bid (counted against capacity).
    pub amount: u64,
    /// Units credited toward this round's demand.
    pub contribution: u64,
    /// The true price `J_ij^t` (enters the social cost).
    pub true_price: Price,
    /// The ψ-scaled price `∇_ij^t` SSAM selected on.
    pub scaled_price: Price,
    /// The critical-value payment (computed on scaled prices, which are
    /// what the platform sees — §IV-E).
    pub payment: Price,
}

/// One round's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundResult {
    /// Round index `t`.
    pub round: u64,
    /// The demand that was auctioned.
    pub demand: u64,
    /// Winners of this round.
    pub winners: Vec<MsoaWinner>,
    /// Σ true prices of this round's winners.
    pub social_cost: Price,
    /// Σ payments of this round.
    pub total_payment: Price,
    /// `true` when this round's demand could not be covered with the
    /// available (window- and capacity-feasible) bids, in which case no
    /// winners were selected.
    pub infeasible: bool,
}

/// The full outcome of an MSOA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsoaOutcome {
    /// Per-round results, in order.
    pub rounds: Vec<RoundResult>,
    /// Σ true prices over all rounds — the online social cost `μ`.
    pub social_cost: Price,
    /// Σ payments over all rounds.
    pub total_payment: Price,
    /// Final ψ_i per seller (instance seller-table order).
    pub psi: Vec<f64>,
    /// Units yielded per seller (χ_i, seller-table order).
    pub chi: Vec<u64>,
    /// The α used in ψ updates.
    pub alpha: f64,
    /// The instance's β.
    pub beta: f64,
    /// Theorem 7's competitive bound `α·β/(β−1)` (infinite when β ≤ 1).
    pub competitive_bound: f64,
}

impl MsoaOutcome {
    /// Round indices that could not be covered.
    pub fn infeasible_rounds(&self) -> Vec<u64> {
        self.rounds
            .iter()
            .filter(|r| r.infeasible)
            .map(|r| r.round)
            .collect()
    }
}

/// Runs Algorithm 2.
///
/// Rounds whose demand cannot be covered by the feasible bids are
/// recorded as infeasible and skipped (the platform simply fails to
/// reclaim resources that round); all other rounds run a full SSAM on
/// ψ-scaled prices.
///
/// # Errors
///
/// Currently infallible for a validated instance, but kept fallible for
/// forward compatibility with stricter configs.
pub fn run_msoa(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
) -> Result<MsoaOutcome, AuctionError> {
    run_msoa_traced(instance, config, Trace::off())
}

/// [`run_msoa`] with an audit trail: per round, every bid exclusion
/// (window/capacity), every ψ-scaling applied to a surviving bid, and
/// every winner's ψ/χ update is recorded on `trace`; the nested
/// single-stage auction's events are stamped with the round index.
/// Tracing does not change the outcome.
///
/// # Errors
///
/// Exactly as [`run_msoa`].
pub fn run_msoa_traced(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    trace: Trace<'_>,
) -> Result<MsoaOutcome, AuctionError> {
    run_msoa_impl(instance, config, trace, true)
}

/// [`run_msoa_traced`] with the incremental scaled-bid buffer disabled —
/// every round rebuilds the slots from scratch. This is the *cold
/// oracle* for the differential suite: same code path, same emission
/// order, only the patching optimization turned off, so outcomes and
/// traces must be byte-identical to the incremental run.
#[cfg(feature = "ssam-reference")]
#[doc(hidden)]
pub fn run_msoa_cold_traced(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    trace: Trace<'_>,
) -> Result<MsoaOutcome, AuctionError> {
    run_msoa_impl(instance, config, trace, false)
}

/// Per-seller inputs the round evaluation reads, packed for the
/// [`RoundBuffer`]'s dirty check: window membership this round, the ψ
/// bits, and consumed capacity. Floats are compared as bits.
type MsoaCtx = (bool, u64, u64);

fn run_msoa_impl(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    trace: Trace<'_>,
    incremental: bool,
) -> Result<MsoaOutcome, AuctionError> {
    use crate::round_buffer::{RoundBuffer, Slot};

    let sellers = instance.sellers();
    let alpha = resolve_alpha(instance, config);
    let beta = instance.beta();

    trace.emit_with(Level::Info, "msoa.start", || {
        vec![
            ("rounds", Value::from(instance.rounds().len())),
            ("sellers", Value::from(sellers.len())),
            ("alpha", Value::from(alpha)),
            ("beta", Value::from(beta)),
        ]
    });

    let index_of: BTreeMap<MicroserviceId, usize> =
        sellers.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut psi = vec![0.0f64; sellers.len()];
    let mut chi = vec![0u64; sellers.len()];
    let mut buffer: RoundBuffer<MsoaCtx> = RoundBuffer::new(sellers.len());
    let live = crate::live::AuctionLive::handle();
    let capacity_sum: u64 = sellers.iter().map(|s| s.capacity).sum();

    let _msoa_span = edge_telemetry::spans::enter("msoa");
    let mut rounds = Vec::with_capacity(instance.rounds().len());
    for (t, input) in instance.rounds().iter().enumerate() {
        let _round_span = edge_telemetry::spans::enter("round");
        let t = t as u64;
        trace.emit_with(Level::Info, "round.start", || {
            vec![
                ("round", Value::from(t)),
                ("demand", Value::from(input.estimated_demand)),
                ("bids", Value::from(input.bids.len())),
            ]
        });
        // Candidate filter: availability window and remaining capacity
        // (Alg. 2 lines 5–6); price scaling (line 8). Evaluated through
        // the incrementally-patched buffer: a seller's slots are only
        // recomputed when its (window, ψ, χ) context changed since the
        // previous round — the evaluation is a pure function of that
        // context and the bid, so patched and cold rounds produce
        // identical bits. Trace emission below is never skipped.
        if !incremental {
            buffer.invalidate();
        }
        let seller_ctx: Vec<MsoaCtx> = sellers
            .iter()
            .enumerate()
            .map(|(si, s)| (s.available_at(t), psi[si].to_bits(), chi[si]))
            .collect();
        let patch_span = edge_telemetry::spans::enter("patch");
        let (slots, originals, patch_stats) = buffer.round(
            &input.bids,
            &seller_ctx,
            |b| index_of[&b.seller],
            |si, bid| {
                if !seller_ctx[si].0 {
                    return Slot::Excluded("window");
                }
                if chi[si] + bid.amount > sellers[si].capacity {
                    return Slot::Excluded("capacity");
                }
                Slot::Scaled(Price::new_unchecked(
                    bid.price.value() + bid.amount as f64 * psi[si],
                ))
            },
        );
        // Patch accounting is a pure function of the workload (which
        // sellers' ψ/χ/window contexts changed) — deterministic side.
        if edge_telemetry::spans::is_enabled() {
            edge_telemetry::spans::ctr("rebuilds", u64::from(patch_stats.rebuilt));
            edge_telemetry::spans::ctr("dirty_sellers", patch_stats.dirty_sellers);
            edge_telemetry::spans::ctr("patched_slots", patch_stats.patched_slots);
            edge_telemetry::spans::ctr("total_slots", patch_stats.total_slots);
        }
        drop(patch_span);
        let mut scaled_bids = Vec::new();
        for (bid, &(si, slot)) in input.bids.iter().zip(slots) {
            match slot {
                Slot::Excluded("capacity") => {
                    trace.emit_with(Level::Debug, "bid.excluded", || {
                        vec![
                            ("round", Value::from(t)),
                            ("seller", Value::from(bid.seller.index())),
                            ("bid", Value::from(bid.id.index())),
                            ("reason", Value::from("capacity")),
                            ("chi", Value::from(chi[si])),
                            ("amount", Value::from(bid.amount)),
                            ("capacity", Value::from(sellers[si].capacity)),
                        ]
                    });
                }
                Slot::Excluded(reason) => {
                    trace.emit_with(Level::Debug, "bid.excluded", || {
                        vec![
                            ("round", Value::from(t)),
                            ("seller", Value::from(bid.seller.index())),
                            ("bid", Value::from(bid.id.index())),
                            ("reason", Value::from(reason)),
                        ]
                    });
                }
                Slot::Scaled(scaled) => {
                    trace.emit_with(Level::Debug, "bid.scaled", || {
                        vec![
                            ("round", Value::from(t)),
                            ("seller", Value::from(bid.seller.index())),
                            ("bid", Value::from(bid.id.index())),
                            ("amount", Value::from(bid.amount)),
                            ("true_price", Value::from(bid.price.value())),
                            ("psi", Value::from(psi[si])),
                            ("psi_adjust", Value::from(bid.amount as f64 * psi[si])),
                            ("scaled_price", Value::from(scaled.value())),
                        ]
                    });
                    scaled_bids.push(Bid {
                        seller: bid.seller,
                        id: bid.id,
                        amount: bid.amount,
                        price: scaled,
                    });
                }
            }
        }

        let demand = input.estimated_demand;
        let ssam_input = WspInstance::new(demand, scaled_bids);
        // The nested single-stage auction inherits the trace with the
        // round index stamped onto every one of its events.
        let scoped = trace
            .sink()
            .map(|s| Scoped::new(s, vec![("round", Value::from(t))]));
        let ssam_trace = match &scoped {
            Some(s) => Trace::new(s),
            None => Trace::off(),
        };
        let pricing_before = edge_telemetry::pricing::snapshot();
        let outcome = match ssam_input {
            Ok(inst) => match run_ssam_traced(&inst, &config.ssam, ssam_trace) {
                Ok(o) => Some(o),
                Err(AuctionError::InfeasibleDemand { .. }) => None,
                Err(e) => return Err(e),
            },
            Err(AuctionError::InfeasibleDemand { .. }) => None,
            Err(e) => return Err(e),
        };

        let result = match outcome {
            None => RoundResult {
                round: t,
                demand,
                winners: Vec::new(),
                social_cost: Price::ZERO,
                total_payment: Price::ZERO,
                infeasible: demand > 0,
            },
            Some(o) => {
                let mut winners = Vec::with_capacity(o.winners.len());
                for w in &o.winners {
                    let original = &input.bids[originals[&(w.seller, w.bid)]];
                    let si = index_of[&w.seller];
                    // Line 11: multiplicative ψ update for winners.
                    let theta = sellers[si].capacity as f64;
                    let a = original.amount as f64;
                    let psi_before = psi[si];
                    psi[si] = psi[si] * (1.0 + a / (alpha * theta))
                        + original.price.value() * a / (alpha * theta * theta);
                    // Line 12: capacity consumption.
                    chi[si] += original.amount;
                    trace.emit_with(Level::Debug, "winner", || {
                        vec![
                            ("round", Value::from(t)),
                            ("seller", Value::from(w.seller.index())),
                            ("bid", Value::from(w.bid.index())),
                            ("amount", Value::from(original.amount)),
                            ("contribution", Value::from(w.contribution)),
                            ("true_price", Value::from(original.price.value())),
                            ("scaled_price", Value::from(w.price.value())),
                            ("payment", Value::from(w.payment.value())),
                            ("psi_before", Value::from(psi_before)),
                            ("psi_after", Value::from(psi[si])),
                            ("chi_after", Value::from(chi[si])),
                        ]
                    });
                    winners.push(MsoaWinner {
                        seller: w.seller,
                        bid: w.bid,
                        amount: original.amount,
                        contribution: w.contribution,
                        true_price: original.price,
                        scaled_price: w.price,
                        payment: w.payment,
                    });
                }
                let social_cost: Price = winners.iter().map(|w| w.true_price).sum();
                let total_payment: Price = winners.iter().map(|w| w.payment).sum();
                RoundResult {
                    round: t,
                    demand,
                    winners,
                    social_cost,
                    total_payment,
                    infeasible: false,
                }
            }
        };
        trace.emit_with(Level::Info, "round.end", || {
            vec![
                ("round", Value::from(t)),
                ("winners", Value::from(result.winners.len())),
                ("social_cost", Value::from(result.social_cost.value())),
                ("total_payment", Value::from(result.total_payment.value())),
                ("infeasible", Value::from(result.infeasible)),
            ]
        });
        // Live metrics: strictly reads of round state, after the trace
        // events, so neither outcomes nor traces can be perturbed.
        let pricing_delta = edge_telemetry::pricing::snapshot().delta_since(&pricing_before);
        let supplied: u64 = result.winners.iter().map(|w| w.amount).sum();
        let psi_max = psi.iter().copied().fold(0.0f64, f64::max);
        live.record_round(
            result.winners.len(),
            result.infeasible,
            supplied,
            result.demand,
            result.total_payment.value(),
            result.social_cost.value(),
            psi_max,
            chi.iter().sum(),
            capacity_sum,
            &pricing_delta,
        );
        rounds.push(result);
    }

    let social_cost: Price = rounds.iter().map(|r| r.social_cost).sum();
    let total_payment: Price = rounds.iter().map(|r| r.total_payment).sum();
    let competitive_bound = if beta > 1.0 {
        alpha * beta / (beta - 1.0)
    } else {
        f64::INFINITY
    };

    trace.emit_with(Level::Info, "msoa.end", || {
        vec![
            ("rounds", Value::from(rounds.len())),
            ("social_cost", Value::from(social_cost.value())),
            ("total_payment", Value::from(total_payment.value())),
            ("competitive_bound", Value::from(competitive_bound)),
        ]
    });

    Ok(MsoaOutcome {
        rounds,
        social_cost,
        total_payment,
        psi,
        chi,
        alpha,
        beta,
        competitive_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn seller(id: usize, capacity: u64, window: (u64, u64)) -> Seller {
        Seller::new(MicroserviceId::new(id), capacity, window).unwrap()
    }

    fn two_seller_instance(rounds: usize, capacity: u64) -> MultiRoundInstance {
        let last = rounds as u64 - 1;
        let sellers = vec![
            seller(0, capacity, (0, last)),
            seller(1, capacity, (0, last)),
        ];
        let round_inputs = (0..rounds)
            .map(|_| RoundInput::new(3, 3, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]))
            .collect();
        MultiRoundInstance::new(sellers, round_inputs).unwrap()
    }

    #[test]
    fn validates_unknown_sellers() {
        let err = MultiRoundInstance::new(
            vec![seller(0, 10, (0, 0))],
            vec![RoundInput::new(1, 1, vec![bid(7, 0, 1, 1.0)])],
        )
        .unwrap_err();
        assert_eq!(err, AuctionError::UnknownSeller(7));
    }

    #[test]
    fn validates_empty_instance() {
        let err = MultiRoundInstance::new(vec![], vec![]).unwrap_err();
        assert_eq!(err, AuctionError::EmptyInstance);
    }

    #[test]
    fn covers_every_feasible_round() {
        let instance = two_seller_instance(3, 100);
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        assert_eq!(out.rounds.len(), 3);
        for r in &out.rounds {
            assert!(!r.infeasible);
            let covered: u64 = r.winners.iter().map(|w| w.contribution).sum();
            assert_eq!(covered, 3);
        }
        assert!(out.infeasible_rounds().is_empty());
    }

    #[test]
    fn psi_grows_for_winners_only() {
        let sellers = vec![
            seller(0, 100, (0, 1)),
            seller(1, 100, (0, 1)),
            seller(2, 100, (0, 1)),
        ];
        // Seller 2's bid is far too expensive to ever win.
        let rounds = (0..2)
            .map(|_| {
                RoundInput::new(
                    3,
                    3,
                    vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0), bid(2, 0, 2, 500.0)],
                )
            })
            .collect();
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        assert!(out.psi[0] > 0.0, "winner's ψ should grow");
        assert!(out.psi[1] > 0.0);
        assert_eq!(out.psi[2], 0.0, "loser's ψ stays zero");
        assert_eq!(out.chi[2], 0);
    }

    #[test]
    fn capacity_exhaustion_excludes_bids() {
        // Capacity 4: seller 0 can win twice (2 units each), then its
        // bids are excluded and seller 1 must carry the demand alone —
        // but seller 1 alone cannot cover 3 with a 2-unit bid, so later
        // rounds go infeasible.
        let instance = two_seller_instance(4, 4);
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        let infeasible = out.infeasible_rounds();
        assert!(!infeasible.is_empty(), "capacity should bite eventually");
        for si in 0..2 {
            assert!(out.chi[si] <= 4, "capacity violated for seller {si}");
        }
    }

    #[test]
    fn windows_exclude_absent_sellers() {
        let sellers = vec![seller(0, 100, (0, 0)), seller(1, 100, (0, 1))];
        let rounds = vec![
            RoundInput::new(2, 2, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]),
            RoundInput::new(2, 2, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]),
        ];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        // Round 0: seller 0 (cheaper) wins. Round 1: seller 0 is outside
        // its window; seller 1 must win.
        assert_eq!(out.rounds[0].winners[0].seller, MicroserviceId::new(0));
        assert_eq!(out.rounds[1].winners.len(), 1);
        assert_eq!(out.rounds[1].winners[0].seller, MicroserviceId::new(1));
    }

    #[test]
    fn scaled_prices_exceed_true_prices_after_wins() {
        let instance = two_seller_instance(3, 100);
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        // Seller 0 wins round 0 at its true price (ψ=0), later rounds at
        // a scaled price strictly above.
        let w0 = &out.rounds[0].winners[0];
        assert_eq!(w0.scaled_price, w0.true_price);
        let later: Vec<&MsoaWinner> = out.rounds[1..]
            .iter()
            .flat_map(|r| &r.winners)
            .filter(|w| w.seller == MicroserviceId::new(0))
            .collect();
        assert!(!later.is_empty());
        for w in later {
            assert!(w.scaled_price > w.true_price);
        }
    }

    #[test]
    fn social_cost_accumulates_true_prices() {
        let instance = two_seller_instance(2, 100);
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        let manual: f64 = out
            .rounds
            .iter()
            .flat_map(|r| &r.winners)
            .map(|w| w.true_price.value())
            .sum();
        assert!((out.social_cost.value() - manual).abs() < 1e-9);
    }

    #[test]
    fn competitive_bound_matches_formula() {
        let instance = two_seller_instance(2, 10);
        let out = run_msoa(
            &instance,
            &MsoaConfig {
                alpha: Some(2.0),
                ..Default::default()
            },
        )
        .unwrap();
        // β = min(10/2) = 5; bound = 2·5/4 = 2.5.
        assert_eq!(out.beta, 5.0);
        assert!((out.competitive_bound - 2.5).abs() < 1e-9);
    }

    #[test]
    fn beta_at_most_one_gives_infinite_bound() {
        let sellers = vec![seller(0, 2, (0, 0)), seller(1, 2, (0, 0))];
        let rounds = vec![RoundInput::new(
            2,
            2,
            vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)],
        )];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let out = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        assert_eq!(out.beta, 1.0);
        assert!(out.competitive_bound.is_infinite());
    }

    #[test]
    fn deterministic() {
        let instance = two_seller_instance(5, 20);
        let a = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        let b = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn derive_alpha_reflects_demand_and_spread() {
        let instance = two_seller_instance(2, 100);
        // Demand 3 → H_3 ≈ 1.833; spread = 3.0/2.0 = 1.5.
        let alpha = instance.derive_alpha();
        let h3 = 1.0 + 0.5 + 1.0 / 3.0;
        assert!((alpha - h3 * 1.5).abs() < 1e-9, "alpha {alpha}");
    }
}
