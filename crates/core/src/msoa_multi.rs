//! MSOA over the general multi-buyer form.
//!
//! Algorithm 2 with per-buyer coverage: each round carries a map of
//! buyer demands instead of one aggregate, the single-stage step is
//! [`crate::multi_buyer::run_ssam_multi`], and the per-seller dual
//! `ψ_i` scales prices by the bid's *total* offered units `|S_ij^t|` —
//! exactly the quantity the paper's line 8 uses.
//!
//! # Examples
//!
//! ```
//! use edge_auction::bid::Seller;
//! use edge_auction::msoa_multi::{run_msoa_multi, MultiBuyerRound, MsoaMultiConfig};
//! use edge_auction::multi_buyer::CoverBid;
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let b0 = MicroserviceId::new(100);
//! let sellers = vec![
//!     Seller::new(MicroserviceId::new(0), 10, (0, 1))?,
//!     Seller::new(MicroserviceId::new(1), 10, (0, 1))?,
//! ];
//! let round = |p0: f64, p1: f64| -> Result<_, edge_auction::AuctionError> {
//!     Ok(MultiBuyerRound::new(
//!         vec![(b0, 2)],
//!         vec![
//!             CoverBid::new(MicroserviceId::new(0), BidId::new(0), vec![(b0, 2)], p0)?,
//!             CoverBid::new(MicroserviceId::new(1), BidId::new(0), vec![(b0, 2)], p1)?,
//!         ],
//!     ))
//! };
//! let rounds = vec![round(4.0, 6.0)?, round(4.0, 6.0)?];
//! let outcome = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default())?;
//! assert_eq!(outcome.rounds.len(), 2);
//! # Ok(())
//! # }
//! ```

use crate::bid::Seller;
use crate::error::AuctionError;
use crate::multi_buyer::{run_ssam_multi, CoverBid, MultiBuyerOutcome, MultiBuyerWsp};
use crate::ssam::SsamConfig;
use edge_common::id::MicroserviceId;
use edge_common::units::Price;
use edge_telemetry::{Level, Trace, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One round of the multi-buyer online market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBuyerRound {
    /// Per-buyer demands `X_b^t`.
    pub demands: Vec<(MicroserviceId, u64)>,
    /// Bids with true prices.
    pub bids: Vec<CoverBid>,
}

impl MultiBuyerRound {
    /// Creates a round input.
    pub fn new(demands: Vec<(MicroserviceId, u64)>, bids: Vec<CoverBid>) -> Self {
        MultiBuyerRound { demands, bids }
    }
}

/// Configuration of the multi-buyer online mechanism.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MsoaMultiConfig {
    /// Single-stage settings.
    pub ssam: SsamConfig,
    /// The `α` of the ψ update (`None`: derived from the rounds' total
    /// demand and price spread like [`crate::msoa`]).
    pub alpha: Option<f64>,
}

/// One round's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBuyerRoundResult {
    /// Round index.
    pub round: u64,
    /// The single-stage outcome (winners carry scaled prices).
    pub outcome: MultiBuyerOutcome,
    /// Σ true prices of the winners.
    pub social_cost: Price,
}

/// The online outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsoaMultiOutcome {
    /// Per-round results.
    pub rounds: Vec<MultiBuyerRoundResult>,
    /// Σ true prices over all rounds.
    pub social_cost: Price,
    /// Σ payments over all rounds.
    pub total_payment: Price,
    /// Final ψ per seller (seller-table order).
    pub psi: Vec<f64>,
    /// Units yielded per seller.
    pub chi: Vec<u64>,
    /// The α used.
    pub alpha: f64,
}

/// Runs Algorithm 2 over per-buyer rounds.
///
/// # Errors
///
/// Returns [`AuctionError::UnknownSeller`] when a bid references a
/// seller missing from the table; rounds that cannot be fully covered
/// are *not* errors (the single-stage mechanism reports partial
/// coverage).
pub fn run_msoa_multi(
    sellers: &[Seller],
    rounds: &[MultiBuyerRound],
    config: &MsoaMultiConfig,
) -> Result<MsoaMultiOutcome, AuctionError> {
    run_msoa_multi_traced(sellers, rounds, config, Trace::off())
}

/// [`run_msoa_multi`] with an audit trail: round boundaries, bid
/// exclusions (window/capacity), ψ-scalings, and per-winner ψ/χ updates
/// are recorded on `trace`. Tracing does not change the outcome.
///
/// # Errors
///
/// Exactly as [`run_msoa_multi`].
pub fn run_msoa_multi_traced(
    sellers: &[Seller],
    rounds: &[MultiBuyerRound],
    config: &MsoaMultiConfig,
    trace: Trace<'_>,
) -> Result<MsoaMultiOutcome, AuctionError> {
    let index_of: BTreeMap<MicroserviceId, usize> =
        sellers.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    for round in rounds {
        for bid in &round.bids {
            if !index_of.contains_key(&bid.seller) {
                return Err(AuctionError::UnknownSeller(bid.seller.index()));
            }
        }
    }

    // α: harmonic of the max round total demand times the unit-price
    // spread (per-total-amount).
    let alpha = config.alpha.unwrap_or_else(|| {
        let max_demand = rounds
            .iter()
            .map(|r| r.demands.iter().map(|&(_, x)| x).sum::<u64>())
            .max()
            .unwrap_or(0);
        let harmonic: f64 = (1..=max_demand).map(|k| 1.0 / k as f64).sum();
        let units: Vec<f64> = rounds
            .iter()
            .flat_map(|r| &r.bids)
            .map(|b| b.price.value() / b.total_amount() as f64)
            .collect();
        let spread = match (
            units.iter().copied().fold(f64::INFINITY, f64::min),
            units.iter().copied().fold(0.0f64, f64::max),
        ) {
            (min, max) if min > 0.0 && max.is_finite() => max / min,
            _ => 1.0,
        };
        (harmonic * spread).max(1.0)
    });

    let mut psi = vec![0.0f64; sellers.len()];
    let mut chi = vec![0u64; sellers.len()];
    let mut results = Vec::with_capacity(rounds.len());

    for (t, round) in rounds.iter().enumerate() {
        let t = t as u64;
        trace.emit_with(Level::Info, "round.start", || {
            vec![
                ("round", Value::from(t)),
                (
                    "demand",
                    Value::from(round.demands.iter().map(|&(_, x)| x).sum::<u64>()),
                ),
                ("buyers", Value::from(round.demands.len())),
                ("bids", Value::from(round.bids.len())),
            ]
        });
        // Filter by window and remaining capacity; scale prices by ψ.
        let mut scaled = Vec::new();
        let mut true_prices: BTreeMap<(MicroserviceId, usize), Price> = BTreeMap::new();
        for bid in &round.bids {
            let si = index_of[&bid.seller];
            if !sellers[si].available_at(t) {
                trace.emit_with(Level::Debug, "bid.excluded", || {
                    vec![
                        ("round", Value::from(t)),
                        ("seller", Value::from(bid.seller.index())),
                        ("bid", Value::from(bid.id.index())),
                        ("reason", Value::from("window")),
                    ]
                });
                continue;
            }
            if chi[si] + bid.total_amount() > sellers[si].capacity {
                trace.emit_with(Level::Debug, "bid.excluded", || {
                    vec![
                        ("round", Value::from(t)),
                        ("seller", Value::from(bid.seller.index())),
                        ("bid", Value::from(bid.id.index())),
                        ("reason", Value::from("capacity")),
                    ]
                });
                continue;
            }
            let mut b = bid.clone();
            true_prices.insert((b.seller, b.id.index()), b.price);
            b.price = Price::new_unchecked(b.price.value() + b.total_amount() as f64 * psi[si]);
            trace.emit_with(Level::Debug, "bid.scaled", || {
                vec![
                    ("round", Value::from(t)),
                    ("seller", Value::from(bid.seller.index())),
                    ("bid", Value::from(bid.id.index())),
                    ("true_price", Value::from(bid.price.value())),
                    ("psi", Value::from(psi[si])),
                    ("scaled_price", Value::from(b.price.value())),
                ]
            });
            scaled.push(b);
        }
        let inst = MultiBuyerWsp::new(round.demands.clone(), scaled)?;
        let outcome = run_ssam_multi(&inst, &config.ssam);

        let mut social_cost = Price::ZERO;
        for w in &outcome.winners {
            let si = index_of[&w.seller];
            let true_price = true_prices[&(w.seller, w.bid.index())];
            // The bid's declared total units, for capacity and ψ.
            let amount = inst
                .groups()
                .iter()
                .flatten()
                .find(|b| b.seller == w.seller && b.id == w.bid)
                .map(CoverBid::total_amount)
                .unwrap_or(0);
            let theta = sellers[si].capacity as f64;
            let a = amount as f64;
            let psi_before = psi[si];
            psi[si] = psi[si] * (1.0 + a / (alpha * theta))
                + true_price.value() * a / (alpha * theta * theta);
            chi[si] += amount;
            social_cost += true_price;
            trace.emit_with(Level::Debug, "winner", || {
                vec![
                    ("round", Value::from(t)),
                    ("seller", Value::from(w.seller.index())),
                    ("bid", Value::from(w.bid.index())),
                    ("amount", Value::from(amount)),
                    ("true_price", Value::from(true_price.value())),
                    ("scaled_price", Value::from(w.price.value())),
                    ("payment", Value::from(w.payment.value())),
                    ("psi_before", Value::from(psi_before)),
                    ("psi_after", Value::from(psi[si])),
                    ("chi_after", Value::from(chi[si])),
                ]
            });
        }
        trace.emit_with(Level::Info, "round.end", || {
            vec![
                ("round", Value::from(t)),
                ("winners", Value::from(outcome.winners.len())),
                ("social_cost", Value::from(social_cost.value())),
                ("fully_covered", Value::from(outcome.fully_covered)),
            ]
        });
        results.push(MultiBuyerRoundResult {
            round: t,
            outcome,
            social_cost,
        });
    }

    let social_cost: Price = results.iter().map(|r| r.social_cost).sum();
    let total_payment: Price = results.iter().map(|r| r.outcome.total_payment).sum();
    Ok(MsoaMultiOutcome {
        rounds: results,
        social_cost,
        total_payment,
        psi,
        chi,
        alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::BidId;

    fn buyer(i: usize) -> MicroserviceId {
        MicroserviceId::new(100 + i)
    }

    fn seller(i: usize, capacity: u64, window: (u64, u64)) -> Seller {
        Seller::new(MicroserviceId::new(i), capacity, window).unwrap()
    }

    fn cb(s: usize, id: usize, cov: Vec<(usize, u64)>, price: f64) -> CoverBid {
        CoverBid::new(
            MicroserviceId::new(s),
            BidId::new(id),
            cov.into_iter().map(|(b, a)| (buyer(b), a)).collect(),
            price,
        )
        .unwrap()
    }

    fn two_round_setup(capacity: u64) -> (Vec<Seller>, Vec<MultiBuyerRound>) {
        let sellers = vec![seller(0, capacity, (0, 1)), seller(1, capacity, (0, 1))];
        let rounds = (0..2)
            .map(|_| {
                MultiBuyerRound::new(
                    vec![(buyer(0), 2), (buyer(1), 1)],
                    vec![
                        cb(0, 0, vec![(0, 2), (1, 1)], 5.0),
                        cb(1, 0, vec![(0, 2), (1, 1)], 8.0),
                    ],
                )
            })
            .collect();
        (sellers, rounds)
    }

    #[test]
    fn covers_feasible_rounds() {
        let (sellers, rounds) = two_round_setup(100);
        let out = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap();
        assert_eq!(out.rounds.len(), 2);
        assert!(out.rounds.iter().all(|r| r.outcome.fully_covered));
    }

    #[test]
    fn psi_raises_repeat_winner_prices() {
        let (sellers, rounds) = two_round_setup(100);
        let out = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap();
        // Seller 0 (cheaper) wins round 0 at its true price; in round 1
        // its scaled price exceeds the true one.
        let w0 = &out.rounds[0].outcome.winners[0];
        assert_eq!(w0.seller, MicroserviceId::new(0));
        assert_eq!(w0.price.value(), 5.0);
        let w1 = &out.rounds[1].outcome.winners[0];
        if w1.seller == MicroserviceId::new(0) {
            assert!(
                w1.price.value() > 5.0,
                "scaled price should grow: {}",
                w1.price
            );
        }
        assert!(out.psi[0] > 0.0);
    }

    #[test]
    fn capacity_exhaustion_hands_over_to_rival() {
        // Capacity 3: seller 0's 3-unit bid fits once; round 1 must go
        // to seller 1.
        let (sellers, rounds) = two_round_setup(3);
        let out = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap();
        assert_eq!(
            out.rounds[0].outcome.winners[0].seller,
            MicroserviceId::new(0)
        );
        assert_eq!(
            out.rounds[1].outcome.winners[0].seller,
            MicroserviceId::new(1)
        );
        assert!(out.chi[0] <= 3 && out.chi[1] <= 3);
    }

    #[test]
    fn social_cost_uses_true_prices() {
        let (sellers, rounds) = two_round_setup(100);
        let out = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap();
        // Seller 0 wins both rounds (ψ stays below the 3-unit gap to
        // seller 1's price in this setup) or hands over; either way the
        // social cost must be a sum of true prices (5.0 or 8.0 each
        // round).
        let total = out.social_cost.value();
        assert!(
            (total - 10.0).abs() < 1e-9 || (total - 13.0).abs() < 1e-9,
            "unexpected social cost {total}"
        );
    }

    #[test]
    fn unknown_seller_rejected() {
        let sellers = vec![seller(0, 10, (0, 0))];
        let rounds = vec![MultiBuyerRound::new(
            vec![(buyer(0), 1)],
            vec![cb(7, 0, vec![(0, 1)], 1.0)],
        )];
        let err = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap_err();
        assert_eq!(err, AuctionError::UnknownSeller(7));
    }

    #[test]
    fn window_exclusion_applies() {
        let sellers = vec![seller(0, 100, (1, 1)), seller(1, 100, (0, 1))];
        let rounds = (0..2)
            .map(|_| {
                MultiBuyerRound::new(
                    vec![(buyer(0), 1)],
                    vec![cb(0, 0, vec![(0, 1)], 1.0), cb(1, 0, vec![(0, 1)], 9.0)],
                )
            })
            .collect::<Vec<_>>();
        let out = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap();
        // Round 0: seller 0 unavailable → seller 1 wins despite price.
        assert_eq!(
            out.rounds[0].outcome.winners[0].seller,
            MicroserviceId::new(1)
        );
        // Round 1: seller 0 in window and cheaper.
        assert_eq!(
            out.rounds[1].outcome.winners[0].seller,
            MicroserviceId::new(0)
        );
    }

    #[test]
    fn uncovered_rounds_are_reported_not_fatal() {
        let sellers = vec![seller(0, 100, (0, 0))];
        let rounds = vec![MultiBuyerRound::new(
            vec![(buyer(0), 5)],
            vec![cb(0, 0, vec![(0, 2)], 1.0)],
        )];
        let out = run_msoa_multi(&sellers, &rounds, &MsoaMultiConfig::default()).unwrap();
        assert!(!out.rounds[0].outcome.fully_covered);
    }
}
