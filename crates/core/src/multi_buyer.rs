//! The general multi-buyer Winner Selection Problem.
//!
//! The paper's ILP (7) is stated in a *set-cover* form: each bid names a
//! set of needy microservices `S_ij^t` it would serve, and constraint
//! (10) requires every needy microservice to be covered up to its own
//! demand. The evaluation then collapses this to one aggregate demand
//! per round (the form [`crate::wsp`] implements). This module keeps the
//! general form as an extension: bids carry **per-buyer coverage maps**,
//! the greedy utility is Eq. (19)'s
//! `U_ij(𝔼) = Σ_b [min(cov_𝔼∪{ij}(b), X_b) − min(cov_𝔼(b), X_b)]`, and
//! payments use the same exact-threshold replay as single-buyer SSAM.
//!
//! Unlike the aggregate form, per-buyer feasibility cannot be guaranteed
//! by a cheap supply check (one-bid-per-seller couples the buyers), so
//! the mechanism reports *how much* of each buyer's demand it covered
//! instead of failing.
//!
//! # Examples
//!
//! ```
//! use edge_auction::multi_buyer::{run_ssam_multi, CoverBid, MultiBuyerWsp};
//! use edge_auction::ssam::SsamConfig;
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let b = |i: usize| MicroserviceId::new(100 + i); // buyers
//! let s = |i: usize| MicroserviceId::new(i);       // sellers
//! let inst = MultiBuyerWsp::new(
//!     vec![(b(0), 2), (b(1), 1)],
//!     vec![
//!         CoverBid::new(s(0), BidId::new(0), vec![(b(0), 2)], 4.0)?,
//!         CoverBid::new(s(1), BidId::new(0), vec![(b(0), 1), (b(1), 1)], 5.0)?,
//!     ],
//! )?;
//! let outcome = run_ssam_multi(&inst, &SsamConfig::default());
//! assert!(outcome.fully_covered);
//! # Ok(())
//! # }
//! ```

use crate::error::AuctionError;
use crate::ssam::SsamConfig;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use edge_lp::{ConstraintOp, Model, VarId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A bid that covers specific buyers with specific amounts — the paper's
/// `(S_ij^t, J_ij^t)` pair with per-buyer quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverBid {
    /// The selling microservice.
    pub seller: MicroserviceId,
    /// Index among the seller's alternatives.
    pub id: BidId,
    /// Units offered to each named buyer.
    pub coverage: BTreeMap<MicroserviceId, u64>,
    /// Asking price for the whole bid.
    pub price: Price,
}

impl CoverBid {
    /// Creates a validated cover bid.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::ZeroAmountBid`] if the coverage is empty or all
    ///   zero.
    /// * [`AuctionError::InvalidPrice`] for a negative/non-finite price.
    pub fn new(
        seller: MicroserviceId,
        id: BidId,
        coverage: Vec<(MicroserviceId, u64)>,
        price: f64,
    ) -> Result<Self, AuctionError> {
        let coverage: BTreeMap<MicroserviceId, u64> =
            coverage.into_iter().filter(|&(_, a)| a > 0).collect();
        if coverage.is_empty() {
            return Err(AuctionError::ZeroAmountBid);
        }
        let price = Price::new(price).map_err(|_| AuctionError::InvalidPrice(price))?;
        Ok(CoverBid {
            seller,
            id,
            coverage,
            price,
        })
    }

    /// Total units offered across buyers (the bid's `|S_ij|` analogue).
    pub fn total_amount(&self) -> u64 {
        self.coverage.values().sum()
    }
}

/// A validated multi-buyer instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBuyerWsp {
    demands: BTreeMap<MicroserviceId, u64>,
    groups: Vec<Vec<CoverBid>>,
}

impl MultiBuyerWsp {
    /// Builds an instance from buyer demands and a flat bid list.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DuplicateBidId`] when a seller reuses a
    /// bid id.
    pub fn new(
        demands: Vec<(MicroserviceId, u64)>,
        bids: Vec<CoverBid>,
    ) -> Result<Self, AuctionError> {
        let demands: BTreeMap<MicroserviceId, u64> =
            demands.into_iter().filter(|&(_, x)| x > 0).collect();
        let mut groups: Vec<Vec<CoverBid>> = Vec::new();
        for bid in bids {
            match groups.iter_mut().find(|g| g[0].seller == bid.seller) {
                Some(g) => {
                    if g.iter().any(|b| b.id == bid.id) {
                        return Err(AuctionError::DuplicateBidId {
                            seller: bid.seller.index(),
                            bid: bid.id.index(),
                        });
                    }
                    g.push(bid);
                }
                None => groups.push(vec![bid]),
            }
        }
        Ok(MultiBuyerWsp { demands, groups })
    }

    /// The per-buyer demands `X_b`.
    pub fn demands(&self) -> &BTreeMap<MicroserviceId, u64> {
        &self.demands
    }

    /// Bids grouped by seller.
    pub fn groups(&self) -> &[Vec<CoverBid>] {
        &self.groups
    }

    /// Total demanded units across buyers.
    pub fn total_demand(&self) -> u64 {
        self.demands.values().sum()
    }

    /// Builds the exact ILP (7) of this instance (per-buyer coverage,
    /// one bid per seller); variable order matches a depth-first walk of
    /// `groups()`.
    pub fn to_ilp(&self) -> (Model, Vec<(usize, usize)>) {
        let mut m = Model::new();
        let mut positions = Vec::new();
        let mut buyer_terms: BTreeMap<MicroserviceId, Vec<(VarId, f64)>> = BTreeMap::new();
        for (g, group) in self.groups.iter().enumerate() {
            let mut per_seller = Vec::new();
            for (j, bid) in group.iter().enumerate() {
                let v = m
                    .add_binary(&format!("x_{g}_{j}"), bid.price.value())
                    .expect("validated price");
                positions.push((g, j));
                per_seller.push((v, 1.0));
                for (&buyer, &amount) in &bid.coverage {
                    buyer_terms
                        .entry(buyer)
                        .or_default()
                        .push((v, amount as f64));
                }
            }
            m.add_constraint(per_seller, ConstraintOp::Le, 1.0)
                .expect("valid");
        }
        for (&buyer, &x) in &self.demands {
            let terms = buyer_terms.remove(&buyer).unwrap_or_default();
            m.add_constraint(terms, ConstraintOp::Ge, x as f64)
                .expect("valid");
        }
        (m, positions)
    }
}

/// A winner in the multi-buyer auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBuyerWinner {
    /// The selling microservice.
    pub seller: MicroserviceId,
    /// Which alternative bid won.
    pub bid: BidId,
    /// Marginal utility at selection time (units credited).
    pub contribution: u64,
    /// Asking price.
    pub price: Price,
    /// Exact critical-value payment (replay-based).
    pub payment: Price,
}

/// Outcome of a multi-buyer auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBuyerOutcome {
    /// Winners in selection order.
    pub winners: Vec<MultiBuyerWinner>,
    /// Units covered per buyer (≤ demand).
    pub covered: BTreeMap<MicroserviceId, u64>,
    /// `true` iff every buyer's demand was met.
    pub fully_covered: bool,
    /// Σ winning prices.
    pub social_cost: Price,
    /// Σ payments.
    pub total_payment: Price,
}

/// Eq. (19): the marginal utility of adding `bid` given current
/// coverage.
fn marginal_utility(
    bid: &CoverBid,
    covered: &BTreeMap<MicroserviceId, u64>,
    demands: &BTreeMap<MicroserviceId, u64>,
) -> u64 {
    bid.coverage
        .iter()
        .map(|(buyer, &amount)| {
            let x = demands.get(buyer).copied().unwrap_or(0);
            let c = covered.get(buyer).copied().unwrap_or(0);
            (c + amount).min(x).saturating_sub(c.min(x))
        })
        .sum()
}

/// One lazy-heap slot: a `(group, bid)` candidate with its key at push
/// time and the generation that key was computed at (same scheme as
/// `ssam::HeapEntry`).
#[derive(Debug, Clone, Copy)]
struct MultiEntry {
    /// `price / marginal_utility` at push time — a lower bound on the
    /// current key, since coverage only grows and utilities only shrink.
    key: f64,
    /// Generation (completed sales) the key was computed at.
    gen: u64,
    /// Marginal utility the key was computed from.
    utility: u64,
    g: usize,
    j: usize,
}

impl PartialEq for MultiEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MultiEntry {}

impl PartialOrd for MultiEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MultiEntry {
    /// Reversed so `BinaryHeap` pops the minimum of `(key, g, j)` — the
    /// scan's tie-break (`ratio < br || (ratio == br && (g, j) < (bg,
    /// bj))`), so heap and scan select identically.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.g.cmp(&self.g))
            .then_with(|| other.j.cmp(&self.j))
    }
}

/// Lazy-deletion heap over cover bids keyed by `price / marginal
/// utility`. Coverage is monotonically nondecreasing, so each bid's
/// utility is nonincreasing and its key nondecreasing — stored keys are
/// lower bounds, stale entries re-push with recomputed keys, and a bid
/// whose utility hits zero is dropped permanently (utility cannot
/// recover).
struct MultiGreedy<'a> {
    inst: &'a MultiBuyerWsp,
    heap: std::collections::BinaryHeap<MultiEntry>,
    covered: BTreeMap<MicroserviceId, u64>,
    /// `sold[g]` — group `g`'s seller has already won.
    sold: Vec<bool>,
    gen: u64,
}

impl<'a> MultiGreedy<'a> {
    /// Builds the engine. Bids failing the static reserve filter and
    /// bids of the excluded seller are never pushed.
    fn new(inst: &'a MultiBuyerWsp, reserve: Option<f64>, exclude: Option<MicroserviceId>) -> Self {
        let mut entries = Vec::new();
        for (g, group) in inst.groups.iter().enumerate() {
            if Some(group[0].seller) == exclude {
                continue;
            }
            for (j, bid) in group.iter().enumerate() {
                if let Some(r) = reserve {
                    if bid.price.value() / bid.total_amount() as f64 > r {
                        continue;
                    }
                }
                let utility = marginal_utility(bid, &BTreeMap::new(), &inst.demands);
                if utility == 0 {
                    continue;
                }
                entries.push(MultiEntry {
                    key: bid.price.value() / utility as f64,
                    gen: 0,
                    utility,
                    g,
                    j,
                });
            }
        }
        MultiGreedy {
            inst,
            heap: std::collections::BinaryHeap::from(entries),
            covered: BTreeMap::new(),
            sold: vec![false; inst.groups.len()],
            gen: 0,
        }
    }

    /// The unsold bid minimizing `(price/utility, g, j)`, or `None` when
    /// every remaining bid has zero marginal utility. Pop-validate loop:
    /// sold sellers and zero-utility bids are dropped permanently; stale
    /// keys are recomputed and re-pushed.
    fn pop_best(&mut self) -> Option<(usize, usize, u64, f64)> {
        while let Some(entry) = self.heap.pop() {
            if self.sold[entry.g] {
                continue;
            }
            if entry.gen != self.gen {
                let bid = &self.inst.groups[entry.g][entry.j];
                let utility = marginal_utility(bid, &self.covered, &self.inst.demands);
                if utility == 0 {
                    continue; // utility never recovers — drop permanently
                }
                let key = bid.price.value() / utility as f64;
                if key.total_cmp(&entry.key).is_ne() {
                    self.heap.push(MultiEntry {
                        key,
                        gen: self.gen,
                        utility,
                        ..entry
                    });
                    continue;
                }
                // Key unchanged but return the *recomputed* utility: for
                // a zero-price bid the key is 0 at every utility, so the
                // stored utility may be outdated even though the key is
                // current.
                return Some((entry.g, entry.j, utility, key));
            }
            return Some((entry.g, entry.j, entry.utility, entry.key));
        }
        None
    }

    /// Accepts bid `(g, j)`: credit its coverage (clipped per buyer) and
    /// retire the seller; stored heap keys are invalidated.
    fn sell(&mut self, g: usize, j: usize) {
        let bid = &self.inst.groups[g][j];
        for (buyer, &amount) in &bid.coverage {
            let x = self.inst.demands.get(buyer).copied().unwrap_or(0);
            let e = self.covered.entry(*buyer).or_insert(0);
            *e = (*e + amount).min(x.max(*e));
        }
        self.sold[g] = true;
        self.gen += 1;
    }
}

/// Greedy selection result: winners as `(group, bid-in-group, utility,
/// ratio)` in selection order, plus the final per-buyer coverage.
type Selection = (Vec<(usize, usize, u64, f64)>, BTreeMap<MicroserviceId, u64>);

/// Greedy selection shared by the mechanism and the payment replay.
/// `exclude` drops one seller from selection while keeping its demands
/// intact (payment replay).
fn greedy_multi(
    inst: &MultiBuyerWsp,
    reserve: Option<f64>,
    exclude: Option<MicroserviceId>,
) -> Selection {
    let mut engine = MultiGreedy::new(inst, reserve, exclude);
    let mut selection = Vec::new();
    while let Some((g, j, u, ratio)) = engine.pop_best() {
        engine.sell(g, j);
        selection.push((g, j, u, ratio));
    }
    (selection, engine.covered)
}

/// Runs the multi-buyer SSAM: greedy winner selection on marginal
/// utility with exact critical-value payments via a replay without each
/// winner.
pub fn run_ssam_multi(inst: &MultiBuyerWsp, config: &SsamConfig) -> MultiBuyerOutcome {
    let (selection, covered) = greedy_multi(inst, config.reserve_unit_price, None);

    // Replay without each winner's seller; at every replay state, the
    // winner's threshold opportunity is r_k × its marginal utility in
    // that state. The replay runs on the same lazy-heap engine as
    // selection, just with the winner's seller excluded. The replays are
    // mutually independent, so they fan out over the configured pricing
    // pool and merge back in winner order (deterministic at any thread
    // count).
    let thresholds: Vec<Option<f64>> = crate::pricing::fan_out(selection.len(), |p| {
        let (g, j, _, _) = selection[p];
        let bid = &inst.groups[g][j];
        let mut engine = MultiGreedy::new(inst, config.reserve_unit_price, Some(bid.seller));
        let mut acc = 0.0f64;
        loop {
            // Winner's utility at this replay state.
            let my_u = marginal_utility(bid, &engine.covered, &inst.demands);
            match engine.pop_best() {
                Some((cg, cj, _, r_k)) => {
                    if my_u > 0 {
                        acc = acc.max(r_k * my_u as f64);
                    }
                    engine.sell(cg, cj);
                }
                None => {
                    // Replay exhausted. If the winner still has
                    // positive utility here, it is pivotal for the
                    // residual: no finite threshold.
                    break if my_u > 0 { None } else { Some(acc) };
                }
            }
            // Replay fully covered everything the winner could help
            // with? Then no more opportunities.
            if marginal_utility(bid, &engine.covered, &inst.demands) == 0 {
                break Some(acc);
            }
        }
    });

    let mut winners = Vec::with_capacity(selection.len());
    for (&(g, j, u, _), threshold) in selection.iter().zip(thresholds) {
        let bid = &inst.groups[g][j];
        let payment_value = match threshold {
            Some(v) => v.max(bid.price.value()),
            None => config
                .reserve_unit_price
                .map(|r| r * bid.total_amount() as f64)
                .unwrap_or(bid.price.value())
                .max(bid.price.value()),
        };
        winners.push(MultiBuyerWinner {
            seller: bid.seller,
            bid: bid.id,
            contribution: u,
            price: bid.price,
            payment: Price::new_unchecked(payment_value),
        });
    }

    let fully_covered = inst
        .demands
        .iter()
        .all(|(b, &x)| covered.get(b).copied().unwrap_or(0) >= x);
    let social_cost: Price = winners.iter().map(|w| w.price).sum();
    let total_payment: Price = winners.iter().map(|w| w.payment).sum();
    MultiBuyerOutcome {
        winners,
        covered,
        fully_covered,
        social_cost,
        total_payment,
    }
}

/// The seed's scan-based multi-buyer mechanism, kept as a differential
/// oracle for the heap engine (feature `ssam-reference`, on by
/// default). Must return bit-identical outcomes to [`run_ssam_multi`].
#[cfg(feature = "ssam-reference")]
pub mod reference {
    use super::*;

    /// The original O(n²) greedy: full re-scan of every live bid per
    /// iteration.
    fn greedy_multi_scan(
        inst: &MultiBuyerWsp,
        reserve: Option<f64>,
        exclude: Option<MicroserviceId>,
    ) -> Selection {
        let mut covered: BTreeMap<MicroserviceId, u64> = BTreeMap::new();
        let mut sold: Vec<MicroserviceId> = Vec::new();
        let mut selection = Vec::new();
        loop {
            let mut best: Option<(usize, usize, u64, f64)> = None;
            for (g, group) in inst.groups.iter().enumerate() {
                let seller = group[0].seller;
                if Some(seller) == exclude || sold.contains(&seller) {
                    continue;
                }
                for (j, bid) in group.iter().enumerate() {
                    if let Some(r) = reserve {
                        if bid.price.value() / bid.total_amount() as f64 > r {
                            continue;
                        }
                    }
                    let u = marginal_utility(bid, &covered, &inst.demands);
                    if u == 0 {
                        continue;
                    }
                    let ratio = bid.price.value() / u as f64;
                    let better = match best {
                        None => true,
                        Some((bg, bj, _, br)) => ratio < br || (ratio == br && (g, j) < (bg, bj)),
                    };
                    if better {
                        best = Some((g, j, u, ratio));
                    }
                }
            }
            let Some((g, j, u, ratio)) = best else { break };
            let bid = &inst.groups[g][j];
            for (buyer, &amount) in &bid.coverage {
                let x = inst.demands.get(buyer).copied().unwrap_or(0);
                let e = covered.entry(*buyer).or_insert(0);
                *e = (*e + amount).min(x.max(*e));
            }
            sold.push(bid.seller);
            selection.push((g, j, u, ratio));
        }
        (selection, covered)
    }

    /// Runs the multi-buyer SSAM with the original scan selection and
    /// scan-based payment replays.
    pub fn run_ssam_multi_reference(
        inst: &MultiBuyerWsp,
        config: &SsamConfig,
    ) -> MultiBuyerOutcome {
        let (selection, covered) = greedy_multi_scan(inst, config.reserve_unit_price, None);

        let mut winners = Vec::with_capacity(selection.len());
        for &(g, j, u, _) in &selection {
            let bid = &inst.groups[g][j];
            let threshold: Option<f64> = {
                let mut covered_r: BTreeMap<MicroserviceId, u64> = BTreeMap::new();
                let mut sold: Vec<MicroserviceId> = Vec::new();
                let mut acc = 0.0f64;
                loop {
                    let my_u = marginal_utility(bid, &covered_r, &inst.demands);
                    let mut best: Option<(usize, usize, u64, f64)> = None;
                    for (cg, group) in inst.groups.iter().enumerate() {
                        let seller = group[0].seller;
                        if seller == bid.seller || sold.contains(&seller) {
                            continue;
                        }
                        for (cj, cand) in group.iter().enumerate() {
                            if let Some(r) = config.reserve_unit_price {
                                if cand.price.value() / cand.total_amount() as f64 > r {
                                    continue;
                                }
                            }
                            let cu = marginal_utility(cand, &covered_r, &inst.demands);
                            if cu == 0 {
                                continue;
                            }
                            let ratio = cand.price.value() / cu as f64;
                            if best.is_none() || ratio < best.unwrap().3 {
                                best = Some((cg, cj, cu, ratio));
                            }
                        }
                    }
                    match best {
                        Some((cg, cj, _, r_k)) => {
                            if my_u > 0 {
                                acc = acc.max(r_k * my_u as f64);
                            }
                            let chosen = &inst.groups[cg][cj];
                            for (buyer, &amount) in &chosen.coverage {
                                let x = inst.demands.get(buyer).copied().unwrap_or(0);
                                let e = covered_r.entry(*buyer).or_insert(0);
                                *e = (*e + amount).min(x.max(*e));
                            }
                            sold.push(chosen.seller);
                        }
                        None => {
                            break if my_u > 0 { None } else { Some(acc) };
                        }
                    }
                    if marginal_utility(bid, &covered_r, &inst.demands) == 0 {
                        break Some(acc);
                    }
                }
            };
            let payment_value = match threshold {
                Some(v) => v.max(bid.price.value()),
                None => config
                    .reserve_unit_price
                    .map(|r| r * bid.total_amount() as f64)
                    .unwrap_or(bid.price.value())
                    .max(bid.price.value()),
            };
            winners.push(MultiBuyerWinner {
                seller: bid.seller,
                bid: bid.id,
                contribution: u,
                price: bid.price,
                payment: Price::new_unchecked(payment_value),
            });
        }

        let fully_covered = inst
            .demands
            .iter()
            .all(|(b, &x)| covered.get(b).copied().unwrap_or(0) >= x);
        let social_cost: Price = winners.iter().map(|w| w.price).sum();
        let total_payment: Price = winners.iter().map(|w| w.payment).sum();
        MultiBuyerOutcome {
            winners,
            covered,
            fully_covered,
            social_cost,
            total_payment,
        }
    }
}

#[cfg(feature = "ssam-reference")]
pub use reference::run_ssam_multi_reference;

#[cfg(test)]
mod tests {
    use super::*;
    use edge_lp::{solve_ilp, IlpOptions};

    fn buyer(i: usize) -> MicroserviceId {
        MicroserviceId::new(100 + i)
    }

    fn seller(i: usize) -> MicroserviceId {
        MicroserviceId::new(i)
    }

    fn cb(s: usize, id: usize, cov: Vec<(usize, u64)>, price: f64) -> CoverBid {
        CoverBid::new(
            seller(s),
            BidId::new(id),
            cov.into_iter().map(|(b, a)| (buyer(b), a)).collect(),
            price,
        )
        .unwrap()
    }

    #[test]
    fn validates_bids() {
        assert_eq!(
            CoverBid::new(seller(0), BidId::new(0), vec![], 1.0),
            Err(AuctionError::ZeroAmountBid)
        );
        assert_eq!(
            CoverBid::new(seller(0), BidId::new(0), vec![(buyer(0), 0)], 1.0),
            Err(AuctionError::ZeroAmountBid)
        );
        assert!(CoverBid::new(seller(0), BidId::new(0), vec![(buyer(0), 1)], -1.0).is_err());
    }

    #[test]
    fn covers_per_buyer_not_just_aggregate() {
        // Aggregate demand is 3; a single 3-unit bid on buyer 0 would
        // cover the aggregate but NOT buyer 1 — per-buyer accounting
        // must force the second bid in.
        let inst = MultiBuyerWsp::new(
            vec![(buyer(0), 2), (buyer(1), 1)],
            vec![cb(0, 0, vec![(0, 3)], 3.0), cb(1, 0, vec![(1, 1)], 5.0)],
        )
        .unwrap();
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        assert!(out.fully_covered);
        assert_eq!(out.winners.len(), 2);
        assert_eq!(out.covered[&buyer(0)], 2);
        assert_eq!(out.covered[&buyer(1)], 1);
    }

    #[test]
    fn over_coverage_is_not_credited() {
        let inst =
            MultiBuyerWsp::new(vec![(buyer(0), 2)], vec![cb(0, 0, vec![(0, 5)], 10.0)]).unwrap();
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        assert_eq!(out.winners[0].contribution, 2);
        assert_eq!(out.covered[&buyer(0)], 2);
    }

    #[test]
    fn partial_coverage_is_reported_not_fatal() {
        let inst =
            MultiBuyerWsp::new(vec![(buyer(0), 5)], vec![cb(0, 0, vec![(0, 2)], 1.0)]).unwrap();
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        assert!(!out.fully_covered);
        assert_eq!(out.covered[&buyer(0)], 2);
    }

    #[test]
    fn individual_rationality() {
        let inst = MultiBuyerWsp::new(
            vec![(buyer(0), 3), (buyer(1), 2)],
            vec![
                cb(0, 0, vec![(0, 2), (1, 1)], 6.0),
                cb(1, 0, vec![(0, 2)], 5.0),
                cb(2, 0, vec![(1, 2)], 4.0),
                cb(3, 0, vec![(0, 1), (1, 1)], 3.0),
            ],
        )
        .unwrap();
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        assert!(out.fully_covered);
        for w in &out.winners {
            assert!(w.payment >= w.price, "{w:?}");
        }
    }

    #[test]
    fn greedy_never_beats_ilp_and_stays_close() {
        let inst = MultiBuyerWsp::new(
            vec![(buyer(0), 3), (buyer(1), 2), (buyer(2), 2)],
            vec![
                cb(0, 0, vec![(0, 2), (1, 1)], 7.0),
                cb(0, 1, vec![(2, 2)], 5.0),
                cb(1, 0, vec![(0, 2), (2, 1)], 6.0),
                cb(2, 0, vec![(1, 2)], 4.0),
                cb(3, 0, vec![(0, 1), (1, 1), (2, 1)], 5.0),
                cb(4, 0, vec![(0, 3)], 9.0),
            ],
        )
        .unwrap();
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        assert!(out.fully_covered);
        let (ilp, _) = inst.to_ilp();
        let opt = solve_ilp(&ilp, &IlpOptions::default()).unwrap();
        assert!(opt.proven_optimal);
        assert!(out.social_cost.value() >= opt.objective - 1e-9);
        // Greedy is within the harmonic bound of the total demand (7).
        let h7: f64 = (1..=7).map(|k| 1.0 / k as f64).sum();
        // Allow the price-spread factor on top.
        assert!(out.social_cost.value() <= opt.objective * h7 * 3.0);
    }

    #[test]
    fn one_bid_per_seller() {
        let inst = MultiBuyerWsp::new(
            vec![(buyer(0), 4)],
            vec![
                cb(0, 0, vec![(0, 2)], 2.0),
                cb(0, 1, vec![(0, 2)], 2.5),
                cb(1, 0, vec![(0, 2)], 3.0),
            ],
        )
        .unwrap();
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        let mut sellers: Vec<_> = out.winners.iter().map(|w| w.seller).collect();
        sellers.sort();
        sellers.dedup();
        assert_eq!(sellers.len(), out.winners.len());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = MultiBuyerWsp::new(
            vec![(buyer(0), 1)],
            vec![cb(0, 0, vec![(0, 1)], 1.0), cb(0, 0, vec![(0, 1)], 2.0)],
        )
        .unwrap_err();
        assert_eq!(err, AuctionError::DuplicateBidId { seller: 0, bid: 0 });
    }

    #[test]
    fn zero_demand_buyers_are_dropped() {
        let inst =
            MultiBuyerWsp::new(vec![(buyer(0), 0)], vec![cb(0, 0, vec![(0, 3)], 1.0)]).unwrap();
        assert!(inst.demands().is_empty());
        let out = run_ssam_multi(&inst, &SsamConfig::default());
        assert!(out.winners.is_empty());
        assert!(out.fully_covered);
    }

    #[test]
    fn pivotal_seller_paid_reserve_when_configured() {
        let inst =
            MultiBuyerWsp::new(vec![(buyer(0), 2)], vec![cb(0, 0, vec![(0, 2)], 4.0)]).unwrap();
        let config = SsamConfig {
            reserve_unit_price: Some(5.0),
        };
        let out = run_ssam_multi(&inst, &config);
        assert_eq!(out.winners[0].payment.value(), 10.0);
    }
}
