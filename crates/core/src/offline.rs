//! Offline optima — the denominators of every performance-ratio figure.
//!
//! * [`offline_optimum_round`] solves one round's WSP *exactly* with the
//!   covering DP of [`edge_lp::covering`] (instant at paper scales).
//! * [`offline_optimum_multi`] solves the full multi-round ILP (7) —
//!   per-round coverage, one bid per seller per round, and the long-run
//!   capacity constraint (11) — by branch-and-bound. When the node budget
//!   runs out it falls back to the best available *lower bound* (max of
//!   the LP relaxation and the capacity-relaxed per-round DP sum), so a
//!   reported ratio `online/offline` is then an upper bound on the true
//!   ratio — conservative in the direction that cannot flatter the
//!   mechanism.

use crate::error::AuctionError;
use crate::msoa::MultiRoundInstance;
use crate::wsp::WspInstance;
use edge_lp::{solve_lp, ConstraintOp, IlpOptions, LpError, Model, VarId};
use serde::{Deserialize, Serialize};

/// An offline optimum, either proven exactly or bounded from below.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OfflineBound {
    /// Proven optimal objective.
    Exact(f64),
    /// A lower bound (node budget exhausted before proving optimality).
    Lower(f64),
}

impl OfflineBound {
    /// The bound's value, regardless of exactness.
    pub fn value(self) -> f64 {
        match self {
            OfflineBound::Exact(v) | OfflineBound::Lower(v) => v,
        }
    }

    /// `true` when the value is a proven optimum.
    pub fn is_exact(self) -> bool {
        matches!(self, OfflineBound::Exact(_))
    }
}

/// Exact single-round optimum via the covering DP.
///
/// Returns `None` only for an infeasible instance, which
/// [`WspInstance::new`] already rules out.
pub fn offline_optimum_round(instance: &WspInstance) -> Option<f64> {
    instance.to_group_cover().solve_exact().map(|s| s.cost)
}

/// Builds the full ILP (7) of a multi-round instance, returning the
/// model plus each variable's `(round, seller-id, bid-id)` identity for
/// warm-starting.
///
/// `use_estimated` selects which demand stream the offline adversary must
/// cover (estimated for apples-to-apples ratio vs plain MSOA, true for
/// the DA variants).
fn build_multi_ilp(
    instance: &MultiRoundInstance,
    use_estimated: bool,
) -> (
    Model,
    Vec<(u64, edge_common::id::MicroserviceId, edge_common::id::BidId)>,
) {
    let mut var_ids = Vec::new();
    let mut m = Model::new();
    // capacity_terms[s] accumulates Σ_t,j a·x for seller s.
    let mut capacity_terms: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); instance.sellers().len()];
    let seller_index = |id: edge_common::id::MicroserviceId| {
        instance
            .sellers()
            .iter()
            .position(|s| s.id == id)
            .expect("validated instance")
    };

    for (t, round) in instance.rounds().iter().enumerate() {
        let mut cover_terms: Vec<(VarId, f64)> = Vec::new();
        // One-bid-per-seller terms for this round.
        let mut per_seller: Vec<Vec<(VarId, f64)>> = vec![Vec::new(); instance.sellers().len()];
        for (j, bid) in round.bids.iter().enumerate() {
            let si = seller_index(bid.seller);
            if !instance.sellers()[si].available_at(t as u64) {
                continue;
            }
            let v = m
                .add_binary(&format!("x_t{t}_s{si}_b{j}"), bid.price.value())
                .expect("validated price");
            var_ids.push((t as u64, bid.seller, bid.id));
            cover_terms.push((v, bid.amount as f64));
            per_seller[si].push((v, 1.0));
            capacity_terms[si].push((v, bid.amount as f64));
        }
        let demand = if use_estimated {
            round.estimated_demand
        } else {
            round.true_demand
        };
        m.add_constraint(cover_terms, ConstraintOp::Ge, demand as f64)
            .expect("finite demand");
        for terms in per_seller.into_iter().filter(|t| !t.is_empty()) {
            m.add_constraint(terms, ConstraintOp::Le, 1.0)
                .expect("valid");
        }
    }
    for (si, terms) in capacity_terms.into_iter().enumerate() {
        if !terms.is_empty() {
            m.add_constraint(
                terms,
                ConstraintOp::Le,
                instance.sellers()[si].capacity as f64,
            )
            .expect("valid");
        }
    }
    (m, var_ids)
}

/// Builds a warm-start point from a plain MSOA run: the online
/// mechanism's winner set is a feasible integral solution of ILP (7)
/// whenever every round was covered, and a very good incumbent in
/// practice.
fn msoa_warm_start(
    instance: &MultiRoundInstance,
    var_ids: &[(u64, edge_common::id::MicroserviceId, edge_common::id::BidId)],
) -> Option<Vec<f64>> {
    let outcome = crate::msoa::run_msoa(instance, &crate::msoa::MsoaConfig::default()).ok()?;
    if !outcome.infeasible_rounds().is_empty() {
        return None;
    }
    let mut won: std::collections::BTreeSet<(u64, usize, usize)> =
        std::collections::BTreeSet::new();
    for r in &outcome.rounds {
        for w in &r.winners {
            won.insert((r.round, w.seller.index(), w.bid.index()));
        }
    }
    Some(
        var_ids
            .iter()
            .map(|&(t, seller, bid)| {
                f64::from(u8::from(won.contains(&(t, seller.index(), bid.index()))))
            })
            .collect(),
    )
}

/// Capacity-relaxed lower bound: the sum of exact per-round optima
/// (dropping constraint (11) can only lower the optimum). Cheap —
/// `O(Σ bids · demand)` — and safe to use as a ratio denominator at
/// scales where branch-and-bound is too slow: the reported ratio then
/// *upper-bounds* the true one.
pub fn per_round_dp_bound(instance: &MultiRoundInstance, use_estimated: bool) -> Option<f64> {
    let mut total = 0.0;
    for (t, round) in instance.rounds().iter().enumerate() {
        let demand = if use_estimated {
            round.estimated_demand
        } else {
            round.true_demand
        };
        let bids: Vec<_> = round
            .bids
            .iter()
            .filter(|b| {
                instance
                    .sellers()
                    .iter()
                    .find(|s| s.id == b.seller)
                    .is_some_and(|s| s.available_at(t as u64))
            })
            .cloned()
            .collect();
        let wsp = WspInstance::new(demand, bids).ok()?;
        total += offline_optimum_round(&wsp)?;
    }
    Some(total)
}

/// Computes the offline optimum of the multi-round problem.
///
/// # Errors
///
/// Returns [`AuctionError::InfeasibleDemand`] when even the offline
/// adversary cannot cover some round's demand under the capacity and
/// window constraints.
pub fn offline_optimum_multi(
    instance: &MultiRoundInstance,
    use_estimated: bool,
    opts: &IlpOptions,
) -> Result<OfflineBound, AuctionError> {
    let (ilp, var_ids) = build_multi_ilp(instance, use_estimated);
    // Warm start from the online mechanism's own solution when the
    // demand streams match (the MSOA winner set is ILP-feasible then).
    let warm = if use_estimated {
        msoa_warm_start(instance, &var_ids)
    } else {
        None
    };
    let warm = warm.filter(|x| ilp.is_feasible(x, 1e-6));
    match edge_lp::solve_ilp_with_incumbent(&ilp, opts, warm.as_deref()) {
        Ok(sol) if sol.proven_optimal => Ok(OfflineBound::Exact(sol.objective)),
        Ok(_) | Err(LpError::NodeLimit) => {
            // Budget ran out: assemble the best lower bound we can prove.
            let lp_bound = solve_lp(&ilp).map(|s| s.objective).unwrap_or(0.0);
            let dp_bound = per_round_dp_bound(instance, use_estimated).unwrap_or(0.0);
            Ok(OfflineBound::Lower(lp_bound.max(dp_bound)))
        }
        Err(LpError::Infeasible) => {
            let demand: u64 = instance
                .rounds()
                .iter()
                .map(|r| {
                    if use_estimated {
                        r.estimated_demand
                    } else {
                        r.true_demand
                    }
                })
                .max()
                .unwrap_or(0);
            Err(AuctionError::InfeasibleDemand { demand, supply: 0 })
        }
        Err(_) => Err(AuctionError::EmptyInstance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::{Bid, Seller};
    use crate::msoa::{run_msoa, MsoaConfig, RoundInput};
    use edge_common::id::{BidId, MicroserviceId};

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn seller(id: usize, capacity: u64, window: (u64, u64)) -> Seller {
        Seller::new(MicroserviceId::new(id), capacity, window).unwrap()
    }

    #[test]
    fn round_optimum_matches_hand_computation() {
        let inst = WspInstance::new(
            4,
            vec![
                bid(0, 0, 2, 6.0),
                bid(0, 1, 1, 2.0),
                bid(1, 0, 2, 5.0),
                bid(2, 0, 2, 4.0),
            ],
        )
        .unwrap();
        assert_eq!(offline_optimum_round(&inst), Some(9.0));
    }

    #[test]
    fn multi_round_exact_beats_online() {
        // Two rounds; the online mechanism cannot see that saving the
        // cheap seller for round 1 (where it is the only option) avoids
        // the expensive one.
        let sellers = vec![seller(0, 2, (0, 1)), seller(1, 10, (0, 1))];
        let rounds = vec![
            RoundInput::new(2, 2, vec![bid(0, 0, 2, 2.0), bid(1, 0, 2, 3.0)]),
            RoundInput::new(2, 2, vec![bid(0, 0, 2, 2.0), bid(1, 0, 2, 50.0)]),
        ];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();

        let offline = offline_optimum_multi(&instance, true, &IlpOptions::default()).unwrap();
        assert!(offline.is_exact());
        // Offline: round 0 → seller 1 ($3), round 1 → seller 0 ($2): $5.
        assert!(
            (offline.value() - 5.0).abs() < 1e-6,
            "offline {}",
            offline.value()
        );

        let online = run_msoa(&instance, &MsoaConfig::default()).unwrap();
        // Whatever MSOA does, the offline optimum is a lower bound.
        assert!(online.social_cost.value() >= offline.value() - 1e-9);
    }

    #[test]
    fn capacity_constraint_binds_offline_too() {
        // One seller, capacity 2, two rounds of demand 2: offline must
        // fail (cannot cover round 2).
        let sellers = vec![seller(0, 2, (0, 1))];
        let rounds = vec![
            RoundInput::new(2, 2, vec![bid(0, 0, 2, 2.0)]),
            RoundInput::new(2, 2, vec![bid(0, 0, 2, 2.0)]),
        ];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let r = offline_optimum_multi(&instance, true, &IlpOptions::default());
        assert!(matches!(r, Err(AuctionError::InfeasibleDemand { .. })));
    }

    #[test]
    fn node_limit_falls_back_to_lower_bound() {
        let sellers: Vec<Seller> = (0..6).map(|i| seller(i, 20, (0, 2))).collect();
        let rounds: Vec<RoundInput> = (0..3)
            .map(|t| {
                RoundInput::new(
                    8,
                    8,
                    (0..6).map(|s| bid(s, 0, 3, 5.0 + (s + t) as f64)).collect(),
                )
            })
            .collect();
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let opts = IlpOptions {
            max_nodes: 1,
            ..IlpOptions::default()
        };
        let bound = offline_optimum_multi(&instance, true, &opts).unwrap();
        // With one node we cannot prove optimality — but the lower bound
        // must still be positive and at most the exact optimum.
        let exact = offline_optimum_multi(&instance, true, &IlpOptions::default()).unwrap();
        assert!(exact.is_exact());
        assert!(bound.value() > 0.0);
        assert!(bound.value() <= exact.value() + 1e-6);
    }

    #[test]
    fn estimated_vs_true_demand_streams() {
        let sellers = vec![seller(0, 20, (0, 0)), seller(1, 20, (0, 0))];
        let rounds = vec![RoundInput::new(
            4,
            2,
            vec![bid(0, 0, 2, 2.0), bid(1, 0, 2, 3.0)],
        )];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let est = offline_optimum_multi(&instance, true, &IlpOptions::default()).unwrap();
        let truth = offline_optimum_multi(&instance, false, &IlpOptions::default()).unwrap();
        // Covering 4 units costs more than covering 2.
        assert!(est.value() > truth.value());
    }

    #[test]
    fn dp_bound_is_a_lower_bound_on_exact() {
        let sellers = vec![seller(0, 4, (0, 1)), seller(1, 10, (0, 1))];
        let rounds = vec![
            RoundInput::new(3, 3, vec![bid(0, 0, 2, 2.0), bid(1, 0, 3, 9.0)]),
            RoundInput::new(3, 3, vec![bid(0, 0, 2, 2.0), bid(1, 0, 3, 9.0)]),
        ];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let dp = per_round_dp_bound(&instance, true).unwrap();
        let exact = offline_optimum_multi(&instance, true, &IlpOptions::default()).unwrap();
        assert!(
            dp <= exact.value() + 1e-6,
            "dp {dp} exact {}",
            exact.value()
        );
    }
}
