//! Process-global runtime knobs and the critical-value pricing pool.
//!
//! Every winner's payment replay is independent of the others (each
//! replays the auction with a different seller excluded), so the payment
//! phase fans the replays out over scoped worker threads and merges the
//! results back **in winner order**. Determinism is preserved by
//! construction: workers only *compute* — thresholds, provenance, and
//! counter deltas — while all trace emission, stats absorption, and
//! outcome assembly happen on the calling thread in the same order as
//! the sequential path. One thread (the default) takes the exact
//! sequential code path with no spawning at all.
//!
//! The pool size, the winner-selection shard count, and the replay batch
//! size are ambient process state, mirroring `edge_bench::parallel`:
//! benchmarks and the CLI set them once (`--pricing-threads`,
//! `--shards`), and every auction in the process picks them up. None of
//! them may observably change an outcome or a trace — they are tuning
//! knobs, not configuration, which is also why they are *not* part of
//! [`crate::ssam::SsamConfig`] (whose serialized form is folded into
//! event-log header digests).
//!
//! # Adaptive sizing (`--pricing-threads 0`)
//!
//! `0` used to resolve to `available_parallelism`, which made four
//! threads *slower* than one on small instances (committed baseline:
//! 0.49x at n=10k on a 1-core box) — spawn/steal overhead swamped the
//! actual work. Auto now *measures* instead of assuming: a one-time
//! probe times a trivial scoped spawn ([`spawn_overhead_ns`]), an EMA
//! tracks the observed per-replay cost of previous payment phases, and
//! [`fan_out_weighted`] only adds a worker when the estimated work share
//! it would take is several times its spawn cost. On a single-core box
//! the pool is always 1. Thread-count choice is outcome-neutral (the
//! differential suite proves byte-identical traces at any count), so a
//! measured — machine-dependent — choice is safe where anything
//! observable would not be.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configured pricing threads; `0` means "adaptive at use". Defaults
/// to `1` — the exact sequential path — so library users opt in to
/// parallelism explicitly.
static PRICING_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Configured winner-selection shards; `0` means "auto-detect at use".
/// Defaults to `1` — one shard, the unsharded arena.
static SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Replay batch size; `0` means "auto-size from the winner count and
/// pool", `1` prices every winner in its own batch (the differential
/// oracle's configuration).
static REPLAY_BATCH: AtomicUsize = AtomicUsize::new(0);

/// EMA of the observed cost of one payment replay, nanoseconds.
/// `0` = no observation yet (cold process).
static REPLAY_EMA_NS: AtomicU64 = AtomicU64::new(0);

/// Max distinct amount classes the SoA lane arena will take on; wider
/// instances fall back to the lazy-deletion heap. `0` disables the
/// arena entirely (the differential suite uses it to force the legacy
/// engine).
static LANE_CLASS_CAP: AtomicUsize = AtomicUsize::new(64);

/// Per-replay cost assumed before the first measurement. Deliberately
/// small: a cold process under-threads rather than over-threads.
const COLD_REPLAY_ESTIMATE_NS: u64 = 2_000;

/// A worker is only added when its estimated share of the work is at
/// least this multiple of the measured spawn overhead.
const SPAWN_AMORTIZATION: u64 = 8;

/// Threads the host offers (always at least 1).
pub fn available_pricing_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Sets the pricing pool size for subsequent auctions in this process.
/// `0` sizes the pool adaptively per payment phase (measured spawn
/// overhead vs estimated replay work — never more than the detected
/// parallelism); `1` (the default) runs payments on the calling thread.
pub fn set_pricing_threads(threads: usize) {
    PRICING_THREADS.store(threads, Ordering::Relaxed);
}

/// The raw configured value (`0` = adaptive), as last set.
pub fn pricing_threads_setting() -> usize {
    PRICING_THREADS.load(Ordering::Relaxed)
}

/// The pool-size *ceiling* auctions will use, with `0` resolved to the
/// detected parallelism. Under the adaptive setting the actual pool for
/// a given payment phase may be smaller — down to 1 — when the measured
/// work does not cover the spawn overhead.
pub fn current_pricing_threads() -> usize {
    match PRICING_THREADS.load(Ordering::Relaxed) {
        0 => available_pricing_threads(),
        n => n,
    }
}

/// Sets the winner-selection shard count for subsequent auctions.
/// `0` auto-detects from the available parallelism; `1` (the default)
/// keeps a single shard. Sharding is outcome-neutral by construction:
/// shards only partition the bid arena's lanes, and the greedy merge
/// compares all lane heads globally, so any shard count produces
/// byte-identical outcomes and traces.
pub fn set_shards(shards: usize) {
    SHARDS.store(shards, Ordering::Relaxed);
}

/// The raw configured shard count (`0` = auto), as last set.
pub fn shards_setting() -> usize {
    SHARDS.load(Ordering::Relaxed)
}

/// The shard count a selection over `n_sellers` will actually use:
/// the setting (auto → detected parallelism), capped so every shard
/// holds a useful number of sellers and the lane table stays small.
/// Collapses to 1 — the unsharded path — for small instances.
pub(crate) fn effective_shards(n_sellers: usize) -> usize {
    let k = match SHARDS.load(Ordering::Relaxed) {
        0 => available_pricing_threads(),
        n => n,
    };
    k.clamp(1, 64).min(n_sellers.max(1))
}

/// Sets the replay batch size. `0` (default) auto-sizes; `1` forces
/// one winner per batch — the per-winner oracle the differential suite
/// compares batched pricing against. Batching is outcome-neutral:
/// batches share a cursor snapshot, not results.
#[doc(hidden)]
pub fn set_replay_batch(batch: usize) {
    REPLAY_BATCH.store(batch, Ordering::Relaxed);
}

/// The raw configured replay batch size (`0` = auto), as last set.
#[doc(hidden)]
pub fn replay_batch_setting() -> usize {
    REPLAY_BATCH.load(Ordering::Relaxed)
}

/// Sets the lane-class cap: the maximum number of distinct bid amounts
/// the SoA arena will lane-partition before falling back to the heap
/// engine. `0` forces the heap engine for every instance. Engine choice
/// is outcome-neutral (both compute the same argmin; the differential
/// suite pins them bit-for-bit), so this is a tuning/testing knob.
#[doc(hidden)]
pub fn set_lane_class_cap(cap: usize) {
    LANE_CLASS_CAP.store(cap, Ordering::Relaxed);
}

/// The current lane-class cap (`0` = arena disabled).
#[doc(hidden)]
pub fn lane_class_cap() -> usize {
    LANE_CLASS_CAP.load(Ordering::Relaxed)
}

/// The batch size to use for `winners` replays on a pool of `threads`.
pub(crate) fn effective_replay_batch(winners: usize, threads: usize) -> usize {
    match REPLAY_BATCH.load(Ordering::Relaxed) {
        0 => (winners / (threads.max(1) * 4)).clamp(1, 64),
        n => n,
    }
}

/// Feeds one payment phase's observed cost into the per-replay EMA.
pub(crate) fn note_pricing_phase(replays: u64, nanos: u64) {
    if replays == 0 {
        return;
    }
    let per_replay = nanos / replays;
    let _ = REPLAY_EMA_NS.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
        Some(if old == 0 {
            per_replay
        } else {
            (3 * old + per_replay) / 4
        })
    });
}

/// The current per-replay cost estimate, nanoseconds.
pub(crate) fn replay_cost_estimate_ns() -> u64 {
    match REPLAY_EMA_NS.load(Ordering::Relaxed) {
        0 => COLD_REPLAY_ESTIMATE_NS,
        n => n,
    }
}

/// Measured cost of spawning and joining one scoped worker thread,
/// probed once per process. The probe itself is cheap (a handful of
/// trivial spawns) and never observable in outcomes: it only shapes the
/// pool size, which is proven outcome-neutral.
fn spawn_overhead_ns() -> u64 {
    static PROBE: OnceLock<u64> = OnceLock::new();
    *PROBE.get_or_init(|| {
        const SPAWNS: u32 = 4;
        let start = std::time::Instant::now();
        let ok = crossbeam::scope(|scope| {
            for _ in 0..SPAWNS {
                scope.spawn(|_| std::hint::black_box(0u64));
            }
        })
        .is_ok();
        let per_spawn = start.elapsed().as_nanos() as u64 / u64::from(SPAWNS);
        // A failed probe (or an impossibly fast clock) falls back to a
        // conservative figure so auto stays shy of over-threading.
        if ok {
            per_spawn.max(1_000)
        } else {
            1_000_000
        }
    })
}

/// The pool size for `n` units of estimated `unit_cost_ns` each:
/// honors an explicit setting; sizes adaptively when the setting is `0`.
fn pool_size(n: usize, unit_cost_ns: u64) -> usize {
    let configured = PRICING_THREADS.load(Ordering::Relaxed);
    let ceiling = match configured {
        0 => available_pricing_threads(),
        t => t,
    }
    .clamp(1, n.max(1));
    if configured != 0 || ceiling <= 1 {
        return ceiling;
    }
    let total_work = (n as u64).saturating_mul(unit_cost_ns);
    let min_per_worker = spawn_overhead_ns().saturating_mul(SPAWN_AMORTIZATION);
    let useful = (total_work / min_per_worker.max(1)) as usize;
    useful.clamp(1, ceiling)
}

/// Runs `f(0), f(1), …, f(n - 1)` and returns the results in index
/// order, fanning out over the configured pricing pool. With one thread
/// this is a plain loop on the caller's thread (no spawn, same closure),
/// so the sequential and parallel paths execute identical arithmetic —
/// the result vector is the same either way, only wall-clock differs.
pub(crate) fn fan_out<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    fan_out_weighted(n, replay_cost_estimate_ns(), f)
}

/// [`fan_out`] with an explicit per-unit cost estimate, for callers
/// whose units are coarser than one replay (e.g. replay *batches*).
pub(crate) fn fan_out_weighted<R, F>(n: usize, unit_cost_ns: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = pool_size(n, unit_cost_ns);
    // The adaptive decision and its measured-probe inputs are machine
    // facts — recorded on the current span's profile side only.
    if edge_telemetry::spans::is_enabled() {
        edge_telemetry::spans::diag_set("pool_threads", threads as u64);
        edge_telemetry::spans::diag_set("pool_units", n as u64);
        edge_telemetry::spans::diag_set("pool_unit_cost_ns", unit_cost_ns);
        if PRICING_THREADS.load(Ordering::Relaxed) == 0 {
            edge_telemetry::spans::diag_set("pool_spawn_overhead_ns", spawn_overhead_ns());
            edge_telemetry::spans::diag_set(
                "pool_ceiling",
                available_pricing_threads().max(1) as u64,
            );
        }
    }
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // Work-stealing over an atomic cursor: replay costs vary with the
    // winner's selection position, so static chunking would straggle.
    // Results are index-tagged and scattered back into input order.
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let collected: Vec<Vec<(usize, R)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pricing worker panicked"))
            .collect()
    })
    .expect("pricing scope panicked");
    for (i, r) in collected.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests toggling the ambient pool size hold this lock so they do
    /// not race each other (the setting is process-global).
    pub(crate) static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn fan_out_preserves_index_order() {
        let _guard = THREADS_LOCK.lock().unwrap();
        for threads in [1, 2, 4] {
            set_pricing_threads(threads);
            let out = fan_out(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        set_pricing_threads(1);
    }

    #[test]
    fn zero_resolves_to_detected_parallelism() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let prev = pricing_threads_setting();
        set_pricing_threads(0);
        assert_eq!(pricing_threads_setting(), 0);
        assert_eq!(current_pricing_threads(), available_pricing_threads());
        assert!(current_pricing_threads() >= 1);
        set_pricing_threads(prev);
    }

    #[test]
    fn fan_out_handles_empty_and_oversubscribed() {
        let _guard = THREADS_LOCK.lock().unwrap();
        set_pricing_threads(8);
        assert_eq!(fan_out(0, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(2, |i| i + 1), vec![1, 2]);
        set_pricing_threads(1);
    }

    #[test]
    fn adaptive_pool_stays_sequential_for_tiny_work() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let prev = pricing_threads_setting();
        set_pricing_threads(0);
        // A few units of sub-microsecond work can never amortize a
        // spawn: auto must choose the sequential path.
        assert_eq!(pool_size(4, 10), 1);
        // Huge work is allowed to use the full ceiling.
        assert_eq!(pool_size(1_000_000, 1_000_000), available_pricing_threads());
        set_pricing_threads(prev);
    }

    #[test]
    fn adaptive_pool_respects_explicit_settings() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let prev = pricing_threads_setting();
        set_pricing_threads(3);
        // Explicit settings are never second-guessed.
        assert_eq!(pool_size(100, 1), 3);
        set_pricing_threads(prev);
    }

    #[test]
    fn shard_setting_round_trips_and_collapses() {
        let prev = shards_setting();
        set_shards(4);
        assert_eq!(shards_setting(), 4);
        assert_eq!(effective_shards(1_000_000), 4);
        // Fewer sellers than shards: collapse to one per seller.
        assert_eq!(effective_shards(2), 2);
        assert_eq!(effective_shards(0), 1);
        set_shards(1);
        assert_eq!(effective_shards(1_000_000), 1);
        set_shards(prev);
    }

    #[test]
    fn replay_batch_auto_scales_with_winners() {
        let prev = replay_batch_setting();
        set_replay_batch(0);
        assert_eq!(effective_replay_batch(0, 1), 1);
        assert_eq!(effective_replay_batch(16, 4), 1);
        assert_eq!(effective_replay_batch(1_000, 1), 64, "capped at 64");
        set_replay_batch(1);
        assert_eq!(effective_replay_batch(1_000, 1), 1, "explicit override");
        set_replay_batch(prev);
    }

    #[test]
    fn ema_tracks_observed_replay_cost() {
        note_pricing_phase(0, 999); // no-op
        note_pricing_phase(10, 10_000); // 1k per replay
        let est = replay_cost_estimate_ns();
        assert!(est > 0);
        note_pricing_phase(10, 10_000);
        assert!(replay_cost_estimate_ns() > 0);
    }
}
