//! The critical-value pricing thread pool.
//!
//! Every winner's payment replay is independent of the others (each
//! replays the auction with a different seller excluded), so the payment
//! phase fans the replays out over scoped worker threads and merges the
//! results back **in winner order**. Determinism is preserved by
//! construction: workers only *compute* — thresholds, provenance, and
//! counter deltas — while all trace emission, stats absorption, and
//! outcome assembly happen on the calling thread in the same order as
//! the sequential path. One thread (the default) takes the exact
//! sequential code path with no spawning at all.
//!
//! The pool size is ambient process state, mirroring
//! `edge_bench::parallel`: benchmarks and the CLI set it once
//! (`--pricing-threads`), and every auction in the process picks it up.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured pricing threads; `0` means "auto-detect at use". Defaults
/// to `1` — the exact sequential path — so library users opt in to
/// parallelism explicitly.
static PRICING_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Threads the host offers (always at least 1).
pub fn available_pricing_threads() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Sets the pricing pool size for subsequent auctions in this process.
/// `0` auto-detects from [`available_pricing_threads`] at use; `1`
/// (the default) runs payments on the calling thread.
pub fn set_pricing_threads(threads: usize) {
    PRICING_THREADS.store(threads, Ordering::Relaxed);
}

/// The raw configured value (`0` = auto), as last set.
pub fn pricing_threads_setting() -> usize {
    PRICING_THREADS.load(Ordering::Relaxed)
}

/// The pool size auctions will actually use, with `0` resolved to the
/// detected parallelism.
pub fn current_pricing_threads() -> usize {
    match PRICING_THREADS.load(Ordering::Relaxed) {
        0 => available_pricing_threads(),
        n => n,
    }
}

/// Runs `f(0), f(1), …, f(n - 1)` and returns the results in index
/// order, fanning out over the configured pricing pool. With one thread
/// this is a plain loop on the caller's thread (no spawn, same closure),
/// so the sequential and parallel paths execute identical arithmetic —
/// the result vector is the same either way, only wall-clock differs.
pub(crate) fn fan_out<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = current_pricing_threads().clamp(1, n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    // Work-stealing over an atomic cursor: replay costs vary with the
    // winner's selection position, so static chunking would straggle.
    // Results are index-tagged and scattered back into input order.
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let collected: Vec<Vec<(usize, R)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pricing worker panicked"))
            .collect()
    })
    .expect("pricing scope panicked");
    for (i, r) in collected.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was claimed by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests toggling the ambient pool size hold this lock so they do
    /// not race each other (the setting is process-global).
    pub(crate) static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn fan_out_preserves_index_order() {
        let _guard = THREADS_LOCK.lock().unwrap();
        for threads in [1, 2, 4] {
            set_pricing_threads(threads);
            let out = fan_out(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        set_pricing_threads(1);
    }

    #[test]
    fn zero_resolves_to_detected_parallelism() {
        let _guard = THREADS_LOCK.lock().unwrap();
        let prev = pricing_threads_setting();
        set_pricing_threads(0);
        assert_eq!(pricing_threads_setting(), 0);
        assert_eq!(current_pricing_threads(), available_pricing_threads());
        assert!(current_pricing_threads() >= 1);
        set_pricing_threads(prev);
    }

    #[test]
    fn fan_out_handles_empty_and_oversubscribed() {
        let _guard = THREADS_LOCK.lock().unwrap();
        set_pricing_threads(8);
        assert_eq!(fan_out(0, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(2, |i| i + 1), vec![1, 2]);
        set_pricing_threads(1);
    }
}
