//! Mechanism-property verifiers.
//!
//! The paper proves four economic properties of SSAM (Theorems 4–5,
//! Lemmas 2–3) and "no economic loss" (Definition 5). This module turns
//! each proof into an executable check so the test suite — and any
//! downstream user wiring the mechanism into a real platform — can audit
//! outcomes instead of trusting them:
//!
//! * [`check_individual_rationality`] — every payment covers its bid.
//! * [`check_monotonicity`] — a winner that lowers its price keeps
//!   winning (Lemma 2).
//! * [`check_critical_payments`] — the payment is a threshold: bid below
//!   it and win, bid above it and lose (Lemma 3).
//! * [`audit_truthfulness`] — exhaustively tries price deviations and
//!   reports any that beat truthful bidding (Theorem 4).
//! * [`economic_loss`] — the platform's deficit when it charges buyers a
//!   break-even unit price (Definition 5).

use crate::bid::Bid;
use crate::error::AuctionError;
use crate::ssam::{run_ssam, SsamConfig, SsamOutcome};
use crate::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use serde::{Deserialize, Serialize};

/// Checks Theorem 5: every winner's payment is at least its (selection)
/// price.
pub fn check_individual_rationality(outcome: &SsamOutcome) -> bool {
    outcome
        .winners
        .iter()
        .all(|w| w.payment.value() >= w.price.value() - 1e-9)
}

/// Rebuilds an instance with one bid's price replaced.
///
/// # Panics
///
/// Panics if the `(seller, bid)` pair does not exist in the instance or
/// the new price is invalid — the caller is auditing existing bids.
pub fn with_price(
    instance: &WspInstance,
    seller: MicroserviceId,
    bid: BidId,
    new_price: f64,
) -> WspInstance {
    let mut found = false;
    let bids: Vec<Bid> = instance
        .bids()
        .map(|b| {
            if b.seller == seller && b.id == bid {
                found = true;
                Bid::new(b.seller, b.id, b.amount, new_price).expect("valid deviation price")
            } else {
                *b
            }
        })
        .collect();
    assert!(found, "bid {bid} of {seller} not present in the instance");
    WspInstance::new(instance.demand(), bids).expect("price changes preserve feasibility")
}

/// Checks Lemma 2 on every winner: report a strictly lower price and the
/// bid must still win.
///
/// # Errors
///
/// Propagates auction errors from re-running the mechanism.
pub fn check_monotonicity(
    instance: &WspInstance,
    config: &SsamConfig,
) -> Result<bool, AuctionError> {
    let outcome = run_ssam(instance, config)?;
    for w in &outcome.winners {
        for factor in [0.9, 0.5, 0.1] {
            let deviated = with_price(instance, w.seller, w.bid, w.price.value() * factor);
            let re = run_ssam(&deviated, config)?;
            if !re.is_winner(w.seller) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Checks Lemma 3 on every winner that had a competitor: bidding just
/// below the payment wins; bidding just above it loses.
///
/// Winners paid exactly their own price (lone-seller fallback) are
/// skipped — they have no meaningful threshold.
///
/// # Errors
///
/// Propagates auction errors from re-running the mechanism.
pub fn check_critical_payments(
    instance: &WspInstance,
    config: &SsamConfig,
    eps: f64,
) -> Result<bool, AuctionError> {
    let outcome = run_ssam(instance, config)?;
    for w in &outcome.winners {
        if (w.payment.value() - w.price.value()).abs() < 1e-12 {
            continue; // lone-seller fallback: threshold is the bid itself
        }
        let below = with_price(
            instance,
            w.seller,
            w.bid,
            (w.payment.value() - eps).max(0.0),
        );
        if !run_ssam(&below, config)?.is_winner(w.seller) {
            return Ok(false);
        }
        let above = with_price(instance, w.seller, w.bid, w.payment.value() + eps);
        match run_ssam(&above, config) {
            Ok(re) => {
                // The *bid* must lose; the seller may still win with a
                // different alternative bid.
                if re
                    .winner_for(w.seller)
                    .is_some_and(|nw| nw.bid == w.bid && nw.contribution == w.contribution)
                    && re.winner_for(w.seller).unwrap().price.value() > w.payment.value()
                {
                    return Ok(false);
                }
            }
            Err(AuctionError::InfeasibleDemand { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// A profitable deviation found by [`audit_truthfulness`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthfulnessViolation {
    /// The deviating seller.
    pub seller: MicroserviceId,
    /// The bid whose price was misreported.
    pub bid: BidId,
    /// The misreported price.
    pub deviated_price: f64,
    /// Utility under truthful bidding.
    pub truthful_utility: f64,
    /// Utility under the deviation (strictly larger).
    pub deviated_utility: f64,
}

/// Utility of a seller whose true per-bid costs are the instance's
/// truthful prices: `payment − true cost` of whichever bid won, else 0.
fn utility(outcome: &SsamOutcome, truthful: &WspInstance, seller: MicroserviceId) -> f64 {
    match outcome.winner_for(seller) {
        None => 0.0,
        Some(w) => {
            let true_cost = truthful
                .bids()
                .find(|b| b.seller == seller && b.id == w.bid)
                .map(|b| b.price.value())
                .expect("winner bid exists in the truthful instance");
            w.payment.value() - true_cost
        }
    }
}

/// Theorem 4 audit: for every bid, tries the given multiplicative price
/// deviations and collects any that yield strictly higher utility than
/// truthful bidding.
///
/// An empty return means no profitable deviation was found. The
/// guarantee is exact for sellers with a single bid (the single-parameter
/// Myerson setting the paper analyses); for multi-bid sellers the audit
/// is an empirical sweep.
///
/// # Errors
///
/// Propagates auction errors from re-running the mechanism.
pub fn audit_truthfulness(
    instance: &WspInstance,
    config: &SsamConfig,
    deviation_factors: &[f64],
) -> Result<Vec<TruthfulnessViolation>, AuctionError> {
    let truthful_outcome = run_ssam(instance, config)?;
    let mut violations = Vec::new();
    for group in instance.groups() {
        for bid in group {
            let truthful_utility = utility(&truthful_outcome, instance, bid.seller);
            for &factor in deviation_factors {
                let deviated_price = bid.price.value() * factor;
                let deviated = with_price(instance, bid.seller, bid.id, deviated_price);
                let outcome = match run_ssam(&deviated, config) {
                    Ok(o) => o,
                    Err(AuctionError::InfeasibleDemand { .. }) => continue,
                    Err(e) => return Err(e),
                };
                let deviated_utility = utility(&outcome, instance, bid.seller);
                if deviated_utility > truthful_utility + 1e-7 {
                    violations.push(TruthfulnessViolation {
                        seller: bid.seller,
                        bid: bid.id,
                        deviated_price,
                        truthful_utility,
                        deviated_utility,
                    });
                }
            }
        }
    }
    Ok(violations)
}

/// Definition 5 accounting: if the platform charges the demand's buyers a
/// flat per-unit price, [`break_even_unit_charge`] is the smallest charge
/// at which the platform suffers no economic loss.
pub fn break_even_unit_charge(outcome: &SsamOutcome) -> f64 {
    if outcome.demand == 0 {
        0.0
    } else {
        outcome.total_payment.value() / outcome.demand as f64
    }
}

/// The platform's deficit when charging buyers `unit_charge` per demanded
/// unit: positive means economic loss (Definition 5 violated at that
/// charge).
pub fn economic_loss(outcome: &SsamOutcome, unit_charge: f64) -> f64 {
    outcome.total_payment.value() - unit_charge * outcome.demand as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn single_bid_instance() -> WspInstance {
        WspInstance::new(
            5,
            vec![
                bid(0, 0, 3, 6.0),
                bid(1, 0, 2, 3.0),
                bid(2, 0, 4, 10.0),
                bid(3, 0, 2, 8.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn individual_rationality_on_samples() {
        let outcome = run_ssam(&single_bid_instance(), &SsamConfig::default()).unwrap();
        assert!(check_individual_rationality(&outcome));
    }

    #[test]
    fn monotonicity_on_samples() {
        assert!(check_monotonicity(&single_bid_instance(), &SsamConfig::default()).unwrap());
    }

    #[test]
    fn critical_payments_on_samples() {
        assert!(
            check_critical_payments(&single_bid_instance(), &SsamConfig::default(), 1e-6).unwrap()
        );
    }

    #[test]
    fn truthful_bidding_is_dominant_for_single_bid_sellers() {
        let violations = audit_truthfulness(
            &single_bid_instance(),
            &SsamConfig::default(),
            &[0.5, 0.8, 0.9, 0.99, 1.01, 1.1, 1.25, 2.0, 5.0],
        )
        .unwrap();
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn with_price_replaces_exactly_one_bid() {
        let inst = single_bid_instance();
        let new = with_price(&inst, MicroserviceId::new(1), BidId::new(0), 99.0);
        let changed: Vec<_> = new.bids().filter(|b| b.price.value() == 99.0).collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(new.bids().count(), inst.bids().count());
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn with_price_panics_on_missing_bid() {
        with_price(
            &single_bid_instance(),
            MicroserviceId::new(9),
            BidId::new(0),
            1.0,
        );
    }

    #[test]
    fn economic_loss_accounting() {
        let outcome = run_ssam(&single_bid_instance(), &SsamConfig::default()).unwrap();
        let breakeven = break_even_unit_charge(&outcome);
        assert!(economic_loss(&outcome, breakeven).abs() < 1e-9);
        assert!(economic_loss(&outcome, breakeven + 1.0) < 0.0);
        assert!(economic_loss(&outcome, breakeven - 1.0) > 0.0);
    }

    #[test]
    fn zero_demand_break_even_is_zero() {
        let inst = WspInstance::new(0, vec![bid(0, 0, 1, 1.0)]).unwrap();
        let outcome = run_ssam(&inst, &SsamConfig::default()).unwrap();
        assert_eq!(break_even_unit_charge(&outcome), 0.0);
    }
}
