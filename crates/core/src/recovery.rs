//! Seller-default recovery — MSOA under injected faults.
//!
//! The online mechanism of [`crate::msoa`] assumes every winner delivers
//! what it committed. Real edge sellers crash, renege, and under-deliver,
//! so this module runs the same Algorithm 2 loop against a deterministic
//! [`FaultPlan`] and layers a platform-side recovery policy on top:
//!
//! * **Pro-rata clawback** — a winner that delivers `d` of its committed
//!   `c` units is paid `d/c` of its critical-value payment; the withheld
//!   remainder is reported as [`FaultRound::clawed_back`].
//! * **Reliability scoring** — each seller carries a score `ρ ∈ [0, 1]`
//!   (EMA of its delivery ratios) that augments the scaled price the same
//!   way ψ does: `∇ = J + a·ψ + a·λ·(1−ρ)`. Flaky sellers look expensive
//!   before they look absent.
//! * **Blacklisting** — a seller whose `ρ` falls below a threshold is
//!   excluded from primary auctions (re-admitted only by the backfill
//!   relaxation ladder, when nobody else can cover).
//! * **Backfill re-auction** — any post-settlement shortfall triggers
//!   bounded SSAM rounds over the remaining sellers, with an exclusion
//!   ladder that relaxes per attempt (first spare sellers only, then
//!   blacklisted ones, then faithful winners' remaining bids; defaulters
//!   never return within the round). Attempts are capped by both
//!   configuration and the rounds left in the stage.
//!
//! Whatever shortfall survives the ladder is recorded as an SLA violation
//! — the run degrades gracefully and never panics.
//!
//! With an [empty plan](FaultPlan::empty) every scaled price, winner,
//! payment, and ψ/χ trajectory is **bit-identical** to [`run_msoa`]'s
//! (`ρ = 1` makes the penalty term exactly `0.0`), which is how the fault
//! pipeline proves it does not perturb the fault-free mechanism.
//!
//! # Examples
//!
//! ```
//! use edge_auction::bid::{Bid, Seller};
//! use edge_auction::msoa::{MsoaConfig, MultiRoundInstance, RoundInput};
//! use edge_auction::recovery::{run_msoa_with_faults, DefaultEvent, FaultPlan, RecoveryConfig};
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let sellers = vec![
//!     Seller::new(MicroserviceId::new(0), 10, (0, 0))?,
//!     Seller::new(MicroserviceId::new(1), 10, (0, 0))?,
//! ];
//! let rounds = vec![RoundInput::new(2, 2, vec![
//!     Bid::new(MicroserviceId::new(0), BidId::new(0), 2, 4.0)?,
//!     Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 6.0)?,
//! ])];
//! let instance = MultiRoundInstance::new(sellers, rounds)?;
//! let mut plan = FaultPlan::empty();
//! plan.defaults.push(DefaultEvent {
//!     round: 0,
//!     seller: MicroserviceId::new(0),
//!     delivered_fraction: 0.5,
//! });
//! let out = run_msoa_with_faults(
//!     &instance,
//!     &MsoaConfig::pinned(2.0),
//!     &plan,
//!     &RecoveryConfig::default(),
//! )?;
//! // The defaulting winner delivered 1 of 2 units; the backfill
//! // re-auction covered the other from seller 1.
//! assert_eq!(out.rounds[0].shortfall, 0);
//! assert!(!out.rounds[0].sla_violated);
//! # Ok(())
//! # }
//! ```

use crate::bid::Bid;
use crate::error::AuctionError;
use crate::msoa::{resolve_alpha, MsoaConfig, MultiRoundInstance};
use crate::ssam::run_ssam_traced;
use crate::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::indicator::{Indicator, ObservedIndicators};
use edge_common::rng::derive_rng;
use edge_common::units::Price;
use edge_telemetry::{Level, Scoped, Trace, Value};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A seller delivering only a fraction of what it committed in a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefaultEvent {
    /// Round index `t` the default happens in.
    pub round: u64,
    /// The defaulting seller.
    pub seller: MicroserviceId,
    /// Fraction of the committed units actually delivered (clamped to
    /// `[0, 1]` at use; `0.0` is a total no-show).
    pub delivered_fraction: f64,
}

/// A half-open window `[from, until)` of rounds a seller is crashed in
/// (cannot bid, win, or deliver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// The crashed seller.
    pub seller: MicroserviceId,
    /// First crashed round (inclusive).
    pub from: u64,
    /// First healthy round (exclusive end).
    pub until: u64,
}

/// A half-open window `[from, until)` of rounds a demand indicator is
/// unobservable in (the estimator must renormalize over the rest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropoutWindow {
    /// The missing indicator.
    pub indicator: Indicator,
    /// First dropped round (inclusive).
    pub from: u64,
    /// First restored round (exclusive end).
    pub until: u64,
}

/// A deterministic fault plan: everything that will go wrong, decided up
/// front so a faulty run is exactly reproducible.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Partial-delivery events.
    pub defaults: Vec<DefaultEvent>,
    /// Seller crash windows.
    pub crashes: Vec<CrashWindow>,
    /// Indicator dropout windows.
    pub dropouts: Vec<DropoutWindow>,
}

impl FaultPlan {
    /// A plan with no faults (the healthy baseline).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.defaults.is_empty() && self.crashes.is_empty() && self.dropouts.is_empty()
    }

    /// The delivered fraction of a seller defaulting at `round`, if any.
    pub fn delivered_fraction(&self, round: u64, seller: MicroserviceId) -> Option<f64> {
        self.defaults
            .iter()
            .find(|d| d.round == round && d.seller == seller)
            .map(|d| d.delivered_fraction)
    }

    /// Whether a seller is inside a crash window at `round`.
    pub fn crashed(&self, round: u64, seller: MicroserviceId) -> bool {
        self.crashes
            .iter()
            .any(|c| c.seller == seller && c.from <= round && round < c.until)
    }

    /// The indicator mask observable at `round` under this plan.
    pub fn observed(&self, round: u64) -> ObservedIndicators {
        let mut mask = ObservedIndicators::all();
        for d in &self.dropouts {
            if d.from <= round && round < d.until {
                mask = mask.without(d.indicator);
            }
        }
        mask
    }

    /// Draws a plan from a seeded stream (`derive_rng(seed,
    /// "fault-plan")`).
    ///
    /// Every (round, seller) pair consumes the same number of draws
    /// regardless of the configured probabilities, and events fire when a
    /// uniform draw falls below the matching probability — so plans drawn
    /// from the *same seed* at increasing probabilities are nested
    /// (common random numbers), which keeps fault-matrix curves monotone
    /// instead of noisy.
    pub fn seeded(
        seed: u64,
        rounds: u64,
        num_sellers: usize,
        config: &FaultInjectionConfig,
    ) -> Self {
        let mut rng = derive_rng(seed, "fault-plan");
        let mut plan = FaultPlan::empty();
        let mut crashed_until = vec![0u64; num_sellers];
        let mut dropped_until = [0u64; 3];
        let frac_span = (config.max_delivered_fraction - config.min_delivered_fraction).max(0.0);
        for t in 0..rounds {
            for (s, crash_end) in crashed_until.iter_mut().enumerate() {
                let seller = MicroserviceId::new(s);
                // Fixed draw order and count per (t, s): crash, default,
                // fraction — alignment across configs needs all three.
                let u_crash: f64 = rng.gen();
                let u_default: f64 = rng.gen();
                let u_frac: f64 = rng.gen();
                if t >= *crash_end && u_crash < config.crash_probability {
                    let until = (t + config.crash_length.max(1)).min(rounds);
                    plan.crashes.push(CrashWindow {
                        seller,
                        from: t,
                        until,
                    });
                    *crash_end = until;
                }
                if t >= *crash_end && u_default < config.default_probability {
                    plan.defaults.push(DefaultEvent {
                        round: t,
                        seller,
                        delivered_fraction: config.min_delivered_fraction + u_frac * frac_span,
                    });
                }
            }
            for (i, indicator) in Indicator::ALL.into_iter().enumerate() {
                let u_drop: f64 = rng.gen();
                if t >= dropped_until[i] && u_drop < config.dropout_probability {
                    let until = (t + config.dropout_length.max(1)).min(rounds);
                    plan.dropouts.push(DropoutWindow {
                        indicator,
                        from: t,
                        until,
                    });
                    dropped_until[i] = until;
                }
            }
        }
        plan
    }
}

/// Rates for [`FaultPlan::seeded`] — the market-layer mirror of the
/// simulator's `FaultRates` (kept separate so `edge-auction` stays
/// independent of `edge-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInjectionConfig {
    /// Per-(round, seller) probability of a partial-delivery default.
    pub default_probability: f64,
    /// Lower bound of the delivered fraction drawn for a default.
    pub min_delivered_fraction: f64,
    /// Upper bound of the delivered fraction drawn for a default.
    pub max_delivered_fraction: f64,
    /// Per-(round, seller) probability a crash window starts.
    pub crash_probability: f64,
    /// Crash window length in rounds.
    pub crash_length: u64,
    /// Per-(round, indicator) probability a dropout window starts.
    pub dropout_probability: f64,
    /// Dropout window length in rounds.
    pub dropout_length: u64,
}

impl Default for FaultInjectionConfig {
    fn default() -> Self {
        FaultInjectionConfig {
            default_probability: 0.1,
            min_delivered_fraction: 0.2,
            max_delivered_fraction: 0.8,
            crash_probability: 0.02,
            crash_length: 2,
            dropout_probability: 0.05,
            dropout_length: 2,
        }
    }
}

/// The platform's recovery policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Master switch. When `false` the platform pays defaulting winners
    /// in full, never backfills, and applies no reliability penalty —
    /// the "faults without recovery" baseline.
    pub enabled: bool,
    /// `λ` in the reliability penalty `a·λ·(1−ρ)` added to scaled
    /// prices.
    pub reliability_weight: f64,
    /// EMA smoothing `η` of the reliability update
    /// `ρ ← (1−η)·ρ + η·(delivered/committed)`.
    pub reliability_smoothing: f64,
    /// Sellers whose `ρ` falls below this are blacklisted from primary
    /// auctions.
    pub blacklist_threshold: f64,
    /// Hard cap on backfill attempts per round (further capped by the
    /// rounds left in the stage).
    pub max_backfill_attempts: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: true,
            reliability_weight: 5.0,
            reliability_smoothing: 0.5,
            blacklist_threshold: 0.35,
            max_backfill_attempts: 3,
        }
    }
}

impl RecoveryConfig {
    /// The no-recovery baseline (full payment, no backfill, no penalty).
    pub fn disabled() -> Self {
        RecoveryConfig {
            enabled: false,
            ..RecoveryConfig::default()
        }
    }
}

/// A winner in one faulty round, tracking commitment vs delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWinner {
    /// The selling microservice.
    pub seller: MicroserviceId,
    /// Which alternative bid won.
    pub bid: BidId,
    /// Units offered by the bid (counted against capacity).
    pub amount: u64,
    /// Units committed toward this round's demand.
    pub committed: u64,
    /// Units actually delivered (`≤ committed`).
    pub delivered: u64,
    /// The true price `J_ij^t`.
    pub true_price: Price,
    /// The ψ- and ρ-scaled price SSAM selected on.
    pub scaled_price: Price,
    /// The critical-value payment the winner earned.
    pub payment_due: Price,
    /// What the platform actually paid after pro-rata clawback.
    pub payment_made: Price,
    /// `true` when this winner was selected by a backfill re-auction.
    pub backfill: bool,
}

/// One round of the faulty run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRound {
    /// Round index `t`.
    pub round: u64,
    /// The demand that was auctioned.
    pub demand: u64,
    /// Winners (primary then backfill, in selection order).
    pub winners: Vec<FaultWinner>,
    /// Units delivered in total.
    pub delivered: u64,
    /// Demand left uncovered after every backfill attempt.
    pub shortfall: u64,
    /// `true` when the primary auction could not cover the demand.
    pub primary_infeasible: bool,
    /// Backfill attempts consumed (infeasible attempts count).
    pub backfill_attempts: u64,
    /// `true` when positive demand went (partially) unserved.
    pub sla_violated: bool,
    /// Σ true prices of winners.
    pub social_cost: Price,
    /// Σ payments actually made.
    pub platform_cost: Price,
    /// Σ payments withheld from defaulting winners.
    pub clawed_back: Price,
    /// The indicator mask observable this round (for demand-estimation
    /// degradation reporting).
    pub observed: ObservedIndicators,
}

/// The full outcome of an MSOA run under a fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultyMsoaOutcome {
    /// Per-round results, in order.
    pub rounds: Vec<FaultRound>,
    /// Σ true prices over all rounds.
    pub social_cost: Price,
    /// Σ payments actually made over all rounds.
    pub platform_cost: Price,
    /// Σ payments withheld over all rounds.
    pub clawed_back: Price,
    /// Final reliability score per seller (seller-table order).
    pub reliability: Vec<f64>,
    /// Which sellers ended the run blacklisted.
    pub blacklisted: Vec<bool>,
    /// Final ψ_i per seller.
    pub psi: Vec<f64>,
    /// Units committed per seller (χ_i).
    pub chi: Vec<u64>,
    /// The α used in ψ updates.
    pub alpha: f64,
    /// The instance's β.
    pub beta: f64,
    /// Σ shortfall over all rounds.
    pub shortfall_units: u64,
    /// Σ demand over all rounds.
    pub demand_units: u64,
}

impl FaultyMsoaOutcome {
    /// Fraction of positive-demand rounds whose SLA was violated
    /// (`0.0` when no round had demand).
    pub fn sla_violation_rate(&self) -> f64 {
        let with_demand = self.rounds.iter().filter(|r| r.demand > 0).count();
        if with_demand == 0 {
            return 0.0;
        }
        let violated = self.rounds.iter().filter(|r| r.sla_violated).count();
        violated as f64 / with_demand as f64
    }

    /// Total backfill attempts across the run.
    pub fn backfill_attempts(&self) -> u64 {
        self.rounds.iter().map(|r| r.backfill_attempts).sum()
    }
}

/// Internal per-run mutable market state shared by the primary auction
/// and the backfill ladder.
struct MarketState {
    psi: Vec<f64>,
    chi: Vec<u64>,
    rho: Vec<f64>,
    blacklisted: Vec<bool>,
    alpha: f64,
}

impl MarketState {
    /// The ψ update of Alg. 2 line 11 plus χ consumption (line 12) —
    /// float-op order identical to `run_msoa`'s, so an empty plan stays
    /// bit-equal.
    fn settle_win(&mut self, si: usize, theta: f64, bid: &Bid) {
        let a = bid.amount as f64;
        self.psi[si] = self.psi[si] * (1.0 + a / (self.alpha * theta))
            + bid.price.value() * a / (self.alpha * theta * theta);
        self.chi[si] += bid.amount;
    }

    /// Scaled price `∇ = J + a·ψ + a·λ·(1−ρ)`. With `ρ = 1` (or the
    /// penalty disabled) the last term is exactly `0.0`, leaving the
    /// plain MSOA price bit-for-bit.
    fn scaled_price(&self, si: usize, bid: &Bid, recovery: &RecoveryConfig) -> Price {
        let base = bid.price.value() + bid.amount as f64 * self.psi[si];
        let penalty = if recovery.enabled {
            bid.amount as f64 * (recovery.reliability_weight * (1.0 - self.rho[si]))
        } else {
            0.0
        };
        Price::new_unchecked(base + penalty)
    }

    /// EMA reliability update after a (possibly partial) delivery, plus
    /// the blacklist check.
    fn observe_delivery(
        &mut self,
        si: usize,
        delivered: u64,
        committed: u64,
        recovery: &RecoveryConfig,
    ) {
        if committed == 0 {
            return;
        }
        let ratio = delivered as f64 / committed as f64;
        let eta = recovery.reliability_smoothing.clamp(0.0, 1.0);
        self.rho[si] = (1.0 - eta) * self.rho[si] + eta * ratio;
        if recovery.enabled && self.rho[si] < recovery.blacklist_threshold {
            self.blacklisted[si] = true;
        }
    }
}

/// Runs Algorithm 2 against a fault plan with the recovery policy.
///
/// Per round: primary SSAM on ψ/ρ-scaled prices over non-crashed,
/// non-blacklisted sellers → settlement (defaults shrink delivery,
/// trigger pro-rata clawback and reliability updates) → bounded backfill
/// re-auctions while a shortfall remains. Uncoverable shortfall is
/// recorded as an SLA violation; the run never fails on injected faults.
///
/// # Errors
///
/// Propagates only structural auction errors ([`AuctionError`] variants
/// other than infeasible demand, which is handled gracefully).
pub fn run_msoa_with_faults(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    plan: &FaultPlan,
    recovery: &RecoveryConfig,
) -> Result<FaultyMsoaOutcome, AuctionError> {
    run_msoa_with_faults_traced(instance, config, plan, recovery, Trace::off())
}

/// [`run_msoa_with_faults`] with an audit trail: exclusions (window,
/// crash, blacklist, capacity), reliability-weighted price scalings,
/// settlements (delivery vs commitment, clawback), reliability updates,
/// blacklist transitions, backfill rungs, and SLA violations are all
/// recorded on `trace`. Tracing does not change the outcome.
///
/// # Errors
///
/// Exactly as [`run_msoa_with_faults`].
pub fn run_msoa_with_faults_traced(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    plan: &FaultPlan,
    recovery: &RecoveryConfig,
    trace: Trace<'_>,
) -> Result<FaultyMsoaOutcome, AuctionError> {
    run_msoa_with_faults_impl(instance, config, plan, recovery, trace, true)
}

/// [`run_msoa_with_faults_traced`] with the incremental scaled-bid
/// buffer disabled — the cold oracle for the differential suite. Same
/// code path and emission order as the incremental run, only the
/// patching turned off; outcomes and traces must be byte-identical.
#[cfg(feature = "ssam-reference")]
#[doc(hidden)]
pub fn run_msoa_with_faults_cold_traced(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    plan: &FaultPlan,
    recovery: &RecoveryConfig,
    trace: Trace<'_>,
) -> Result<FaultyMsoaOutcome, AuctionError> {
    run_msoa_with_faults_impl(instance, config, plan, recovery, trace, false)
}

/// Per-seller inputs the primary-auction evaluation reads, packed for
/// the [`RoundBuffer`]'s dirty check: window membership, crash status,
/// effective blacklisting, ψ bits, ρ bits, and consumed capacity.
/// Floats are compared as bits.
type FaultCtx = (bool, bool, bool, u64, u64, u64);

fn run_msoa_with_faults_impl(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    plan: &FaultPlan,
    recovery: &RecoveryConfig,
    trace: Trace<'_>,
    incremental: bool,
) -> Result<FaultyMsoaOutcome, AuctionError> {
    use crate::round_buffer::{RoundBuffer, Slot};

    let sellers = instance.sellers();
    let alpha = resolve_alpha(instance, config);
    let beta = instance.beta();
    let num_rounds = instance.num_rounds();

    trace.emit_with(Level::Info, "faults.start", || {
        vec![
            ("rounds", Value::from(instance.rounds().len())),
            ("sellers", Value::from(sellers.len())),
            ("alpha", Value::from(alpha)),
            ("beta", Value::from(beta)),
            ("recovery_enabled", Value::from(recovery.enabled)),
            ("defaults", Value::from(plan.defaults.len())),
            ("crashes", Value::from(plan.crashes.len())),
            ("dropouts", Value::from(plan.dropouts.len())),
        ]
    });

    let index_of: BTreeMap<MicroserviceId, usize> =
        sellers.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut state = MarketState {
        psi: vec![0.0; sellers.len()],
        chi: vec![0; sellers.len()],
        rho: vec![1.0; sellers.len()],
        blacklisted: vec![false; sellers.len()],
        alpha,
    };
    let mut buffer: RoundBuffer<FaultCtx> = RoundBuffer::new(sellers.len());
    let auction_live = crate::live::AuctionLive::handle();
    let recovery_live = crate::live::RecoveryLive::handle();
    let capacity_sum: u64 = sellers.iter().map(|s| s.capacity).sum();

    let _msoa_span = edge_telemetry::spans::enter("msoa");
    let mut rounds = Vec::with_capacity(instance.rounds().len());
    for (t, input) in instance.rounds().iter().enumerate() {
        let _round_span = edge_telemetry::spans::enter("round");
        let t = t as u64;
        let demand = input.estimated_demand;
        let observed = plan.observed(t);
        let pricing_before = edge_telemetry::pricing::snapshot();

        // Sellers and bids already used this round, for the exclusion
        // ladder.
        let mut won_bids: BTreeSet<(MicroserviceId, BidId)> = BTreeSet::new();
        let mut faithful_winners: BTreeSet<MicroserviceId> = BTreeSet::new();
        let mut defaulters: BTreeSet<MicroserviceId> = BTreeSet::new();
        let mut winners: Vec<FaultWinner> = Vec::new();

        trace.emit_with(Level::Info, "round.start", || {
            vec![
                ("round", Value::from(t)),
                ("demand", Value::from(demand)),
                ("bids", Value::from(input.bids.len())),
            ]
        });

        // --- Primary auction (Alg. 2 lines 5–8 plus fault filters). ---
        // Evaluated through the incrementally-patched buffer: a
        // seller's slots are only recomputed when its (window, crash,
        // blacklist, ψ, ρ, χ) context changed since the previous round.
        // The evaluation is a pure function of that context and the
        // bid, so patched and cold rounds produce identical bits; trace
        // emission below is never skipped. The backfill ladder stays
        // cold — its candidate set depends on intra-round settlement.
        if !incremental {
            buffer.invalidate();
        }
        let seller_ctx: Vec<FaultCtx> = sellers
            .iter()
            .enumerate()
            .map(|(si, s)| {
                (
                    s.available_at(t),
                    plan.crashed(t, s.id),
                    recovery.enabled && state.blacklisted[si],
                    state.psi[si].to_bits(),
                    state.rho[si].to_bits(),
                    state.chi[si],
                )
            })
            .collect();
        let patch_span = edge_telemetry::spans::enter("patch");
        let (slots, originals, patch_stats) = buffer.round(
            &input.bids,
            &seller_ctx,
            |b| index_of[&b.seller],
            |si, bid| {
                let (window_ok, crashed, blacklisted, _, _, chi) = seller_ctx[si];
                if crashed {
                    return Slot::Excluded("crashed");
                }
                if !window_ok {
                    return Slot::Excluded("window");
                }
                if blacklisted {
                    return Slot::Excluded("blacklisted");
                }
                if chi + bid.amount > sellers[si].capacity {
                    return Slot::Excluded("capacity");
                }
                Slot::Scaled(state.scaled_price(si, bid, recovery))
            },
        );
        if edge_telemetry::spans::is_enabled() {
            edge_telemetry::spans::ctr("rebuilds", u64::from(patch_stats.rebuilt));
            edge_telemetry::spans::ctr("dirty_sellers", patch_stats.dirty_sellers);
            edge_telemetry::spans::ctr("patched_slots", patch_stats.patched_slots);
            edge_telemetry::spans::ctr("total_slots", patch_stats.total_slots);
        }
        drop(patch_span);
        let mut scaled_bids = Vec::new();
        for (bid, &(si, slot)) in input.bids.iter().zip(slots) {
            match slot {
                Slot::Excluded(reason) => {
                    trace.emit_with(Level::Debug, "bid.excluded", || {
                        vec![
                            ("round", Value::from(t)),
                            ("seller", Value::from(bid.seller.index())),
                            ("bid", Value::from(bid.id.index())),
                            ("reason", Value::from(reason)),
                        ]
                    });
                }
                Slot::Scaled(scaled) => {
                    trace.emit_with(Level::Debug, "bid.scaled", || {
                        let psi_adjust = bid.amount as f64 * state.psi[si];
                        vec![
                            ("round", Value::from(t)),
                            ("seller", Value::from(bid.seller.index())),
                            ("bid", Value::from(bid.id.index())),
                            ("true_price", Value::from(bid.price.value())),
                            ("psi_adjust", Value::from(psi_adjust)),
                            (
                                "reliability_adjust",
                                Value::from(scaled.value() - bid.price.value() - psi_adjust),
                            ),
                            ("rho", Value::from(state.rho[si])),
                            ("scaled_price", Value::from(scaled.value())),
                        ]
                    });
                    scaled_bids.push(Bid {
                        seller: bid.seller,
                        id: bid.id,
                        amount: bid.amount,
                        price: scaled,
                    });
                }
            }
        }
        let primary = run_stage(demand, scaled_bids, config, t, trace)?;
        let primary_infeasible = primary.is_none() && demand > 0;
        if let Some(outcome) = primary {
            for w in &outcome.winners {
                let original = &input.bids[originals[&(w.seller, w.bid)]];
                let si = index_of[&w.seller];
                state.settle_win(si, sellers[si].capacity as f64, original);
                let settled = settle_delivery(
                    plan,
                    recovery,
                    t,
                    original,
                    w.contribution,
                    w.price,
                    w.payment,
                    false,
                );
                won_bids.insert((w.seller, w.bid));
                if settled.delivered < settled.committed {
                    defaulters.insert(w.seller);
                } else {
                    faithful_winners.insert(w.seller);
                }
                emit_settlement(trace, t, &settled, &state, si);
                let was_blacklisted = state.blacklisted[si];
                state.observe_delivery(si, settled.delivered, settled.committed, recovery);
                emit_reliability(trace, t, &state, si, was_blacklisted);
                winners.push(settled);
            }
        }

        let mut delivered: u64 = winners.iter().map(|w| w.delivered).sum();
        let mut shortfall = demand.saturating_sub(delivered);

        // --- Backfill ladder (recovery only). ---
        let mut backfill_attempts = 0u64;
        if recovery.enabled && shortfall > 0 {
            let _backfill_span = edge_telemetry::spans::enter("backfill");
            let rounds_left = num_rounds - t;
            let cap = recovery.max_backfill_attempts.min(rounds_left);
            while shortfall > 0 && backfill_attempts < cap {
                let k = backfill_attempts;
                backfill_attempts += 1;
                edge_telemetry::spans::ctr("rungs", 1);
                trace.emit_with(Level::Info, "backfill.start", || {
                    vec![
                        ("round", Value::from(t)),
                        ("rung", Value::from(k)),
                        ("shortfall", Value::from(shortfall)),
                    ]
                });
                let mut bids = Vec::new();
                let mut origs: BTreeMap<(MicroserviceId, BidId), &Bid> = BTreeMap::new();
                for bid in &input.bids {
                    let si = index_of[&bid.seller];
                    if !sellers[si].available_at(t) || plan.crashed(t, bid.seller) {
                        continue;
                    }
                    if won_bids.contains(&(bid.seller, bid.id)) {
                        continue;
                    }
                    // Relaxation ladder: defaulters never return this
                    // round; blacklisted sellers return at k ≥ 1;
                    // faithful winners' remaining bids at k ≥ 2.
                    if defaulters.contains(&bid.seller) {
                        continue;
                    }
                    if state.blacklisted[si] && k < 1 {
                        continue;
                    }
                    if faithful_winners.contains(&bid.seller) && k < 2 {
                        continue;
                    }
                    if state.chi[si] + bid.amount > sellers[si].capacity {
                        continue;
                    }
                    bids.push(Bid {
                        seller: bid.seller,
                        id: bid.id,
                        amount: bid.amount,
                        price: state.scaled_price(si, bid, recovery),
                    });
                    origs.insert((bid.seller, bid.id), bid);
                }
                let Some(outcome) = run_stage(shortfall, bids, config, t, trace)? else {
                    // Infeasible at this rung — the attempt is spent,
                    // the next rung relaxes further.
                    continue;
                };
                for w in &outcome.winners {
                    let original = origs[&(w.seller, w.bid)];
                    let si = index_of[&w.seller];
                    state.settle_win(si, sellers[si].capacity as f64, original);
                    let settled = settle_delivery(
                        plan,
                        recovery,
                        t,
                        original,
                        w.contribution,
                        w.price,
                        w.payment,
                        true,
                    );
                    won_bids.insert((w.seller, w.bid));
                    if settled.delivered < settled.committed {
                        defaulters.insert(w.seller);
                        faithful_winners.remove(&w.seller);
                    } else if !defaulters.contains(&w.seller) {
                        faithful_winners.insert(w.seller);
                    }
                    emit_settlement(trace, t, &settled, &state, si);
                    let was_blacklisted = state.blacklisted[si];
                    state.observe_delivery(si, settled.delivered, settled.committed, recovery);
                    emit_reliability(trace, t, &state, si, was_blacklisted);
                    delivered += settled.delivered;
                    winners.push(settled);
                }
                shortfall = demand.saturating_sub(delivered);
            }
        }

        let social_cost: Price = winners.iter().map(|w| w.true_price).sum();
        let platform_cost: Price = winners.iter().map(|w| w.payment_made).sum();
        let clawed_back = Price::new_unchecked(
            winners
                .iter()
                .map(|w| w.payment_due.value() - w.payment_made.value())
                .sum(),
        );
        let sla_violated = shortfall > 0 && demand > 0;
        if sla_violated {
            trace.emit_with(Level::Info, "sla.violation", || {
                vec![
                    ("round", Value::from(t)),
                    ("shortfall", Value::from(shortfall)),
                    ("demand", Value::from(demand)),
                ]
            });
        }
        trace.emit_with(Level::Info, "round.end", || {
            vec![
                ("round", Value::from(t)),
                ("winners", Value::from(winners.len())),
                ("delivered", Value::from(delivered)),
                ("shortfall", Value::from(shortfall)),
                ("backfill_attempts", Value::from(backfill_attempts)),
                ("social_cost", Value::from(social_cost.value())),
                ("platform_cost", Value::from(platform_cost.value())),
                ("clawed_back", Value::from(clawed_back.value())),
            ]
        });
        // Live metrics: strictly reads of round state, after the trace
        // events, so neither outcomes nor traces can be perturbed. The
        // recovery pipeline feeds the auction families too — `serve`
        // always drives this path (empty plans are bit-identical to
        // plain MSOA).
        let pricing_delta = edge_telemetry::pricing::snapshot().delta_since(&pricing_before);
        let supplied: u64 = winners.iter().map(|w| w.committed).sum();
        let psi_max = state.psi.iter().copied().fold(0.0f64, f64::max);
        auction_live.record_round(
            winners.len(),
            primary_infeasible,
            supplied,
            demand,
            platform_cost.value(),
            social_cost.value(),
            psi_max,
            state.chi.iter().sum(),
            capacity_sum,
            &pricing_delta,
        );
        recovery_live.record_round(
            winners.iter().filter(|w| w.delivered < w.committed).count() as u64,
            clawed_back.value(),
            state.blacklisted.iter().filter(|&&b| b).count(),
            sla_violated,
            backfill_attempts,
            shortfall,
        );
        rounds.push(FaultRound {
            round: t,
            demand,
            winners,
            delivered,
            shortfall,
            primary_infeasible,
            backfill_attempts,
            sla_violated,
            social_cost,
            platform_cost,
            clawed_back,
            observed,
        });
    }

    let social_cost: Price = rounds.iter().map(|r| r.social_cost).sum();
    let platform_cost: Price = rounds.iter().map(|r| r.platform_cost).sum();
    let clawed_back: Price = rounds.iter().map(|r| r.clawed_back).sum();
    let shortfall_units: u64 = rounds.iter().map(|r| r.shortfall).sum();
    let demand_units: u64 = rounds.iter().map(|r| r.demand).sum();

    trace.emit_with(Level::Info, "faults.end", || {
        vec![
            ("social_cost", Value::from(social_cost.value())),
            ("platform_cost", Value::from(platform_cost.value())),
            ("clawed_back", Value::from(clawed_back.value())),
            ("shortfall_units", Value::from(shortfall_units)),
            ("demand_units", Value::from(demand_units)),
        ]
    });

    Ok(FaultyMsoaOutcome {
        rounds,
        social_cost,
        platform_cost,
        clawed_back,
        reliability: state.rho,
        blacklisted: state.blacklisted,
        psi: state.psi,
        chi: state.chi,
        alpha,
        beta,
        shortfall_units,
        demand_units,
    })
}

/// Records one winner's settlement on the trace: what it committed,
/// delivered, was owed, and was actually paid.
fn emit_settlement(trace: Trace<'_>, t: u64, w: &FaultWinner, state: &MarketState, si: usize) {
    trace.emit_with(Level::Debug, "settlement", || {
        vec![
            ("round", Value::from(t)),
            ("seller", Value::from(w.seller.index())),
            ("bid", Value::from(w.bid.index())),
            ("backfill", Value::from(w.backfill)),
            ("committed", Value::from(w.committed)),
            ("delivered", Value::from(w.delivered)),
            ("payment_due", Value::from(w.payment_due.value())),
            ("payment_made", Value::from(w.payment_made.value())),
            (
                "clawback",
                Value::from(w.payment_due.value() - w.payment_made.value()),
            ),
            ("psi_after", Value::from(state.psi[si])),
            ("chi_after", Value::from(state.chi[si])),
        ]
    });
}

/// Records the post-delivery reliability score, and a `blacklist` event
/// on the transition into the blacklist.
fn emit_reliability(
    trace: Trace<'_>,
    t: u64,
    state: &MarketState,
    si: usize,
    was_blacklisted: bool,
) {
    trace.emit_with(Level::Debug, "reliability.update", || {
        vec![
            ("round", Value::from(t)),
            ("seller", Value::from(si)),
            ("rho", Value::from(state.rho[si])),
        ]
    });
    if state.blacklisted[si] && !was_blacklisted {
        trace.emit_with(Level::Info, "blacklist", || {
            vec![
                ("round", Value::from(t)),
                ("seller", Value::from(si)),
                ("rho", Value::from(state.rho[si])),
            ]
        });
    }
}

/// Runs one SSAM stage, mapping infeasible demand to `None` (graceful)
/// and anything else to an error. The nested auction's trace events are
/// stamped with the round index.
fn run_stage(
    demand: u64,
    scaled_bids: Vec<Bid>,
    config: &MsoaConfig,
    t: u64,
    trace: Trace<'_>,
) -> Result<Option<crate::ssam::SsamOutcome>, AuctionError> {
    let scoped = trace
        .sink()
        .map(|s| Scoped::new(s, vec![("round", Value::from(t))]));
    let ssam_trace = match &scoped {
        Some(s) => Trace::new(s),
        None => Trace::off(),
    };
    match WspInstance::new(demand, scaled_bids) {
        Ok(inst) => match run_ssam_traced(&inst, &config.ssam, ssam_trace) {
            Ok(o) => Ok(Some(o)),
            Err(AuctionError::InfeasibleDemand { .. }) => Ok(None),
            Err(e) => Err(e),
        },
        Err(AuctionError::InfeasibleDemand { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Applies the plan's default (if any) to one winner: shrink the
/// delivery, claw the payment back pro-rata when recovery is on.
#[allow(clippy::too_many_arguments)]
fn settle_delivery(
    plan: &FaultPlan,
    recovery: &RecoveryConfig,
    round: u64,
    original: &Bid,
    committed: u64,
    scaled_price: Price,
    payment_due: Price,
    backfill: bool,
) -> FaultWinner {
    let delivered = match plan.delivered_fraction(round, original.seller) {
        Some(frac) => {
            let frac = frac.clamp(0.0, 1.0);
            ((frac * committed as f64).floor() as u64).min(committed)
        }
        None => committed,
    };
    let payment_made = if recovery.enabled && delivered < committed && committed > 0 {
        Price::new_unchecked(payment_due.value() * delivered as f64 / committed as f64)
    } else {
        payment_due
    };
    FaultWinner {
        seller: original.seller,
        bid: original.id,
        amount: original.amount,
        committed,
        delivered,
        true_price: original.price,
        scaled_price,
        payment_due,
        payment_made,
        backfill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Seller;
    use crate::msoa::{run_msoa, RoundInput};
    use edge_common::assert_money_eq;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn seller(id: usize, capacity: u64, window: (u64, u64)) -> Seller {
        Seller::new(MicroserviceId::new(id), capacity, window).unwrap()
    }

    fn three_seller_instance(rounds: usize) -> MultiRoundInstance {
        let last = rounds as u64 - 1;
        let sellers = vec![
            seller(0, 100, (0, last)),
            seller(1, 100, (0, last)),
            seller(2, 100, (0, last)),
        ];
        let round_inputs = (0..rounds)
            .map(|_| {
                RoundInput::new(
                    3,
                    3,
                    vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0), bid(2, 0, 2, 8.0)],
                )
            })
            .collect();
        MultiRoundInstance::new(sellers, round_inputs).unwrap()
    }

    fn default_at(round: u64, s: usize, frac: f64) -> FaultPlan {
        let mut plan = FaultPlan::empty();
        plan.defaults.push(DefaultEvent {
            round,
            seller: MicroserviceId::new(s),
            delivered_fraction: frac,
        });
        plan
    }

    #[test]
    fn empty_plan_is_bit_equal_to_plain_msoa() {
        let instance = three_seller_instance(4);
        let config = MsoaConfig::pinned(2.0);
        let plain = run_msoa(&instance, &config).unwrap();
        for recovery in [RecoveryConfig::default(), RecoveryConfig::disabled()] {
            let faulty =
                run_msoa_with_faults(&instance, &config, &FaultPlan::empty(), &recovery).unwrap();
            assert_eq!(faulty.psi, plain.psi);
            assert_eq!(faulty.chi, plain.chi);
            assert_eq!(faulty.social_cost, plain.social_cost);
            assert_eq!(faulty.platform_cost, plain.total_payment);
            assert_eq!(faulty.shortfall_units, 0);
            for (fr, pr) in faulty.rounds.iter().zip(&plain.rounds) {
                assert_eq!(fr.winners.len(), pr.winners.len());
                for (fw, pw) in fr.winners.iter().zip(&pr.winners) {
                    assert_eq!((fw.seller, fw.bid), (pw.seller, pw.bid));
                    assert_eq!(fw.committed, pw.contribution);
                    assert_eq!(fw.delivered, pw.contribution);
                    assert_eq!(fw.scaled_price, pw.scaled_price);
                    assert_eq!(fw.payment_due, pw.payment);
                    assert_eq!(fw.payment_made, pw.payment);
                    assert!(!fw.backfill);
                }
            }
        }
    }

    #[test]
    fn default_triggers_prorata_clawback_and_backfill() {
        let instance = three_seller_instance(1);
        let plan = default_at(0, 0, 0.5);
        let out = run_msoa_with_faults(
            &instance,
            &MsoaConfig::pinned(2.0),
            &plan,
            &RecoveryConfig::default(),
        )
        .unwrap();
        let r = &out.rounds[0];
        // Seller 0 (cheapest) wins 2 units, delivers 1.
        let w0 = r
            .winners
            .iter()
            .find(|w| w.seller == MicroserviceId::new(0))
            .unwrap();
        assert_eq!(w0.committed, 2);
        assert_eq!(w0.delivered, 1);
        assert_money_eq!(w0.payment_made.value(), w0.payment_due.value() * 0.5);
        assert!(r.clawed_back.value() > 0.0);
        // Backfill covered the missing unit; no SLA violation.
        assert!(r.winners.iter().any(|w| w.backfill));
        assert_eq!(r.shortfall, 0);
        assert!(!r.sla_violated);
        assert_eq!(r.delivered, 3);
        assert!(r.backfill_attempts >= 1);
    }

    #[test]
    fn disabled_recovery_pays_in_full_and_eats_the_shortfall() {
        let instance = three_seller_instance(1);
        let plan = default_at(0, 0, 0.5);
        let out = run_msoa_with_faults(
            &instance,
            &MsoaConfig::pinned(2.0),
            &plan,
            &RecoveryConfig::disabled(),
        )
        .unwrap();
        let r = &out.rounds[0];
        let w0 = r
            .winners
            .iter()
            .find(|w| w.seller == MicroserviceId::new(0))
            .unwrap();
        assert_eq!(w0.delivered, 1);
        assert_eq!(w0.payment_made, w0.payment_due, "baseline pays in full");
        assert!(r.winners.iter().all(|w| !w.backfill));
        assert_eq!(r.shortfall, 1);
        assert!(r.sla_violated);
        assert_money_eq!(out.clawed_back, 0.0);
        assert_money_eq!(out.sla_violation_rate(), 1.0);
    }

    #[test]
    fn total_no_show_blacklists_and_primary_excludes_next_round() {
        let instance = three_seller_instance(2);
        let plan = default_at(0, 0, 0.0);
        let recovery = RecoveryConfig {
            reliability_smoothing: 1.0, // ρ jumps straight to the ratio
            ..RecoveryConfig::default()
        };
        let out =
            run_msoa_with_faults(&instance, &MsoaConfig::pinned(2.0), &plan, &recovery).unwrap();
        assert!(out.blacklisted[0]);
        assert_money_eq!(out.reliability[0], 0.0);
        // Round 1's primary auction must not touch the blacklisted
        // seller even though it is the cheapest.
        assert!(out.rounds[1]
            .winners
            .iter()
            .all(|w| w.seller != MicroserviceId::new(0)));
        assert!(!out.rounds[1].sla_violated);
    }

    #[test]
    fn crash_window_excludes_seller_for_its_duration() {
        let instance = three_seller_instance(3);
        let mut plan = FaultPlan::empty();
        plan.crashes.push(CrashWindow {
            seller: MicroserviceId::new(0),
            from: 0,
            until: 2,
        });
        let out = run_msoa_with_faults(
            &instance,
            &MsoaConfig::pinned(2.0),
            &plan,
            &RecoveryConfig::default(),
        )
        .unwrap();
        for t in 0..2 {
            assert!(out.rounds[t]
                .winners
                .iter()
                .all(|w| w.seller != MicroserviceId::new(0)));
        }
        // Healthy again in round 2: the cheap seller returns.
        assert!(out.rounds[2]
            .winners
            .iter()
            .any(|w| w.seller == MicroserviceId::new(0)));
        assert_eq!(out.shortfall_units, 0);
    }

    #[test]
    fn uncoverable_shortfall_degrades_gracefully() {
        // Two sellers, one crashed, one too small: demand 3 cannot be
        // met, with or without backfill.
        let sellers = vec![seller(0, 100, (0, 0)), seller(1, 100, (0, 0))];
        let rounds = vec![RoundInput::new(
            3,
            3,
            vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)],
        )];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let mut plan = FaultPlan::empty();
        plan.crashes.push(CrashWindow {
            seller: MicroserviceId::new(0),
            from: 0,
            until: 1,
        });
        let out = run_msoa_with_faults(
            &instance,
            &MsoaConfig::pinned(2.0),
            &plan,
            &RecoveryConfig::default(),
        )
        .unwrap();
        let r = &out.rounds[0];
        assert!(r.primary_infeasible);
        assert!(r.sla_violated);
        assert_eq!(r.shortfall, 3);
        assert!(r.backfill_attempts > 0, "attempts were spent trying");
    }

    #[test]
    fn backfill_attempts_capped_by_rounds_left() {
        // Single-round instance: rounds_left = 1 caps the ladder below
        // max_backfill_attempts.
        let sellers = vec![seller(0, 100, (0, 0))];
        let rounds = vec![RoundInput::new(2, 2, vec![bid(0, 0, 2, 4.0)])];
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        let plan = default_at(0, 0, 0.0);
        let recovery = RecoveryConfig {
            max_backfill_attempts: 10,
            ..RecoveryConfig::default()
        };
        let out =
            run_msoa_with_faults(&instance, &MsoaConfig::pinned(2.0), &plan, &recovery).unwrap();
        assert_eq!(out.rounds[0].backfill_attempts, 1);
        assert!(out.rounds[0].sla_violated);
    }

    #[test]
    fn blacklisted_seller_returns_via_relaxation_ladder() {
        // Only seller 0 can cover demand 3 alone (others offer 1 unit).
        let sellers = vec![
            seller(0, 100, (0, 1)),
            seller(1, 100, (0, 1)),
            seller(2, 100, (0, 1)),
        ];
        let rounds = (0..3)
            .map(|_| {
                RoundInput::new(
                    3,
                    3,
                    vec![bid(0, 0, 3, 4.0), bid(1, 0, 1, 6.0), bid(2, 0, 1, 8.0)],
                )
            })
            .collect();
        let instance = MultiRoundInstance::new(sellers, rounds).unwrap();
        // Round 0: seller 0 delivers nothing → blacklisted (η = 1).
        let plan = default_at(0, 0, 0.0);
        let recovery = RecoveryConfig {
            reliability_smoothing: 1.0,
            ..RecoveryConfig::default()
        };
        let out =
            run_msoa_with_faults(&instance, &MsoaConfig::pinned(2.0), &plan, &recovery).unwrap();
        assert!(out.blacklisted[0]);
        // Round 1: primary (without seller 0) is infeasible; the k = 1
        // rung re-admits the blacklisted seller and covers the demand.
        let r1 = &out.rounds[1];
        assert!(r1.primary_infeasible);
        assert_eq!(r1.shortfall, 0, "ladder must re-admit the blacklisted");
        assert!(r1
            .winners
            .iter()
            .any(|w| w.seller == MicroserviceId::new(0) && w.backfill));
    }

    #[test]
    fn plan_queries_cover_windows() {
        let mut plan = FaultPlan::empty();
        plan.crashes.push(CrashWindow {
            seller: MicroserviceId::new(1),
            from: 2,
            until: 4,
        });
        plan.dropouts.push(DropoutWindow {
            indicator: Indicator::Rate,
            from: 1,
            until: 3,
        });
        assert!(!plan.crashed(1, MicroserviceId::new(1)));
        assert!(plan.crashed(2, MicroserviceId::new(1)));
        assert!(plan.crashed(3, MicroserviceId::new(1)));
        assert!(!plan.crashed(4, MicroserviceId::new(1)));
        assert!(!plan.crashed(2, MicroserviceId::new(0)));
        assert!(plan.observed(0).is_complete());
        assert!(!plan.observed(1).contains(Indicator::Rate));
        assert!(plan.observed(3).is_complete());
        assert!(plan.delivered_fraction(0, MicroserviceId::new(0)).is_none());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_nested_in_probability() {
        let low = FaultInjectionConfig {
            default_probability: 0.1,
            ..FaultInjectionConfig::default()
        };
        let high = FaultInjectionConfig {
            default_probability: 0.4,
            ..FaultInjectionConfig::default()
        };
        let a = FaultPlan::seeded(7, 20, 5, &low);
        let b = FaultPlan::seeded(7, 20, 5, &low);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(7, 20, 5, &high);
        assert!(c.defaults.len() >= a.defaults.len());
        // Common random numbers: every low-probability default also
        // fires at the higher probability.
        for d in &a.defaults {
            assert!(c
                .defaults
                .iter()
                .any(|e| e.round == d.round && e.seller == d.seller));
        }
        let zero = FaultInjectionConfig {
            default_probability: 0.0,
            crash_probability: 0.0,
            dropout_probability: 0.0,
            ..FaultInjectionConfig::default()
        };
        assert!(FaultPlan::seeded(7, 20, 5, &zero).is_empty());
    }

    #[test]
    fn seeded_fractions_stay_in_bounds_and_windows_do_not_overlap() {
        let cfg = FaultInjectionConfig {
            default_probability: 0.5,
            crash_probability: 0.3,
            dropout_probability: 0.3,
            ..FaultInjectionConfig::default()
        };
        let plan = FaultPlan::seeded(11, 30, 4, &cfg);
        for d in &plan.defaults {
            assert!(d.delivered_fraction >= cfg.min_delivered_fraction);
            assert!(d.delivered_fraction <= cfg.max_delivered_fraction);
        }
        for (i, a) in plan.crashes.iter().enumerate() {
            assert!(a.until <= 30);
            for b in &plan.crashes[i + 1..] {
                if a.seller == b.seller {
                    assert!(
                        a.until <= b.from || b.until <= a.from,
                        "overlap: {a:?} {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn faulty_run_is_deterministic() {
        let instance = three_seller_instance(5);
        let plan = FaultPlan::seeded(3, 5, 3, &FaultInjectionConfig::default());
        let config = MsoaConfig::pinned(2.0);
        let a = run_msoa_with_faults(&instance, &config, &plan, &RecoveryConfig::default());
        let b = run_msoa_with_faults(&instance, &config, &plan, &RecoveryConfig::default());
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn serde_round_trips_plan_and_outcome() {
        let plan = FaultPlan::seeded(5, 10, 3, &FaultInjectionConfig::default());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        let instance = three_seller_instance(2);
        let out = run_msoa_with_faults(
            &instance,
            &MsoaConfig::pinned(2.0),
            &plan,
            &RecoveryConfig::default(),
        )
        .unwrap();
        let json = serde_json::to_string(&out).unwrap();
        let back: FaultyMsoaOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out);
    }
}
