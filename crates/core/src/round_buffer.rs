//! The incrementally-patched scaled-bid buffer shared by the MSOA round
//! loops ([`crate::msoa`], [`crate::recovery`]).
//!
//! Every round, MSOA re-derives each bid's fate — excluded (window,
//! crash, blacklist, capacity) or admitted at a ψ-scaled price — from a
//! handful of per-seller inputs. Between consecutive rounds only the
//! sellers that actually won (or crashed, or crossed a window edge)
//! change, so rebuilding the whole scaled-bid list from scratch is
//! mostly redundant work. [`RoundBuffer`] builds the per-bid [`Slot`]s
//! once and then *patches* them: a seller's slots are re-evaluated only
//! when its context tuple — everything the evaluation reads — changed
//! since the previous round.
//!
//! Correctness is by construction, not by care at the call sites:
//!
//! * The context type `C` must capture **every** input the `eval`
//!   closure reads for that seller (ψ bits, remaining capacity, window
//!   membership, …). Equal context ⇒ `eval` would recompute the exact
//!   same bits, so skipping it is unobservable.
//! * Only *recomputation* is skipped, never *emission*: callers iterate
//!   the returned slots in bid order every round and emit their
//!   exclusion/scaling trace events from them, so traces stay
//!   byte-identical to a cold rebuild.
//! * Float contexts are compared as stored bits (`f64::to_bits` at the
//!   call sites), sidestepping NaN/−0.0 equality pitfalls.
//!
//! The differential suite runs every MSOA scenario through both this
//! patched path and a cold path (`invalidate` before each round) and
//! asserts byte-identical outcomes and traces.

use crate::bid::Bid;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use std::collections::BTreeMap;

/// Lookup from a `(seller, bid id)` back to the bid's position in the
/// round's bid list (last occurrence wins).
pub(crate) type OriginalsIndex = BTreeMap<(MicroserviceId, BidId), usize>;

/// A bid's per-round fate, as cached in the buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Slot {
    /// Excluded this round, with the trace reason.
    Excluded(&'static str),
    /// Admitted at this scaled price.
    Scaled(Price),
}

/// SoA fingerprint of the bid list the slots were built from: four
/// contiguous columns instead of a cloned `Vec<Bid>`, so the per-round
/// staleness check streams cache lines instead of chasing struct
/// padding, and the rebuild snapshot costs four dense arrays.
///
/// Prices are fingerprinted as stored bits: differing bits force a
/// rebuild (always safe — a rebuild recomputes identical results), and
/// equal bits imply equal values, so the check can never *miss* a
/// changed list.
#[derive(Debug, Default)]
struct BidFingerprint {
    sellers: Vec<MicroserviceId>,
    ids: Vec<BidId>,
    amounts: Vec<u64>,
    price_bits: Vec<u64>,
}

impl BidFingerprint {
    fn capture(bids: &[Bid]) -> Self {
        let mut fp = BidFingerprint {
            sellers: Vec::with_capacity(bids.len()),
            ids: Vec::with_capacity(bids.len()),
            amounts: Vec::with_capacity(bids.len()),
            price_bits: Vec::with_capacity(bids.len()),
        };
        for b in bids {
            fp.sellers.push(b.seller);
            fp.ids.push(b.id);
            fp.amounts.push(b.amount);
            fp.price_bits.push(b.price.value().to_bits());
        }
        fp
    }

    fn matches(&self, bids: &[Bid]) -> bool {
        self.sellers.len() == bids.len()
            && bids.iter().enumerate().all(|(i, b)| {
                self.sellers[i] == b.seller
                    && self.ids[i] == b.id
                    && self.amounts[i] == b.amount
                    && self.price_bits[i] == b.price.value().to_bits()
            })
    }
}

/// Arena-backed scaled-bid buffer with per-seller dirty tracking.
#[derive(Debug)]
pub(crate) struct RoundBuffer<C> {
    /// SoA fingerprint of the bid list the slots were built from.
    /// `None` until the first round (and after [`Self::invalidate`]).
    fingerprint: Option<BidFingerprint>,
    /// `(seller index, fate)` per bid, aligned with the bid list.
    slots: Vec<(usize, Slot)>,
    /// Last-seen evaluation context per seller; `None` forces a
    /// re-evaluation of that seller's slots.
    ctx: Vec<Option<C>>,
    /// Last occurrence of each `(seller, bid id)` in the bid list —
    /// settlement's lookup from a (scaled) winner back to the original
    /// bid. Built on rebuild; the *same* map serves cold and patched
    /// rounds, so duplicate-id resolution cannot diverge between them.
    originals: OriginalsIndex,
    /// What the most recent [`Self::round`] did — pure workload facts
    /// (which sellers' contexts changed), independent of any knob.
    last: PatchStats,
}

/// Work accounting for one [`RoundBuffer::round`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PatchStats {
    /// Whether the round was a cold rebuild (vs an incremental patch).
    pub rebuilt: bool,
    /// Sellers whose context changed (patched rounds only).
    pub dirty_sellers: u64,
    /// Bid slots re-evaluated.
    pub patched_slots: u64,
    /// Bid slots in the round.
    pub total_slots: u64,
}

impl<C: PartialEq + Copy> RoundBuffer<C> {
    pub(crate) fn new(num_sellers: usize) -> Self {
        RoundBuffer {
            fingerprint: None,
            slots: Vec::new(),
            ctx: vec![None; num_sellers],
            originals: BTreeMap::new(),
            last: PatchStats::default(),
        }
    }

    /// Drops the fingerprint so the next [`Self::round`] rebuilds from
    /// scratch — the cold oracle calls this before every round.
    pub(crate) fn invalidate(&mut self) {
        self.fingerprint = None;
    }

    /// Brings the slots up to date for this round and returns them in
    /// bid order, plus the original-bid index and the patch accounting
    /// ([`PatchStats`]) for this call.
    ///
    /// `seller_ctx[si]` must contain every input `eval(si, bid)` reads;
    /// `seller_of` maps a bid to its seller index. If `bids` differs
    /// from the list the buffer was built from (or the buffer is cold),
    /// everything is rebuilt; otherwise only the slots of sellers whose
    /// context changed are re-evaluated.
    pub(crate) fn round<F, G>(
        &mut self,
        bids: &[Bid],
        seller_ctx: &[C],
        seller_of: F,
        eval: G,
    ) -> (&[(usize, Slot)], &OriginalsIndex, PatchStats)
    where
        F: Fn(&Bid) -> usize,
        G: Fn(usize, &Bid) -> Slot,
    {
        debug_assert_eq!(self.ctx.len(), seller_ctx.len());
        let rebuild = self
            .fingerprint
            .as_ref()
            .is_none_or(|built| !built.matches(bids));
        if rebuild {
            self.fingerprint = Some(BidFingerprint::capture(bids));
            self.originals.clear();
            for (i, b) in bids.iter().enumerate() {
                self.originals.insert((b.seller, b.id), i);
            }
            self.slots.clear();
            self.slots.extend(bids.iter().map(|b| {
                let si = seller_of(b);
                (si, eval(si, b))
            }));
            for (slot, c) in self.ctx.iter_mut().zip(seller_ctx) {
                *slot = Some(*c);
            }
            self.last = PatchStats {
                rebuilt: true,
                dirty_sellers: 0,
                patched_slots: bids.len() as u64,
                total_slots: bids.len() as u64,
            };
        } else {
            let mut dirty = vec![false; seller_ctx.len()];
            let mut dirty_sellers = 0u64;
            for (si, c) in seller_ctx.iter().enumerate() {
                if self.ctx[si] != Some(*c) {
                    dirty[si] = true;
                    dirty_sellers += 1;
                    self.ctx[si] = Some(*c);
                }
            }
            let mut patched = 0u64;
            for (bid, (si, slot)) in bids.iter().zip(self.slots.iter_mut()) {
                if dirty[*si] {
                    *slot = eval(*si, bid);
                    patched += 1;
                }
            }
            self.last = PatchStats {
                rebuilt: false,
                dirty_sellers,
                patched_slots: patched,
                total_slots: bids.len() as u64,
            };
        }
        (&self.slots, &self.originals, self.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    /// Context = (admitted?, price adjustment); eval counts its calls.
    fn eval_with(counter: &std::cell::Cell<usize>) -> impl Fn(usize, &Bid) -> Slot + '_ {
        move |_, b| {
            counter.set(counter.get() + 1);
            Slot::Scaled(b.price)
        }
    }

    #[test]
    fn clean_round_reevaluates_nothing() {
        let bids = vec![bid(0, 0, 2, 4.0), bid(1, 0, 3, 9.0), bid(0, 1, 1, 1.5)];
        let calls = std::cell::Cell::new(0);
        let mut buf: RoundBuffer<u64> = RoundBuffer::new(2);
        let seller_of = |b: &Bid| b.seller.index();
        buf.round(&bids, &[1, 1], seller_of, eval_with(&calls));
        assert_eq!(calls.get(), 3, "cold build evaluates every bid");
        let (slots, originals, _) = buf.round(&bids, &[1, 1], seller_of, eval_with(&calls));
        assert_eq!(calls.get(), 3, "clean round evaluates nothing");
        assert_eq!(slots.len(), 3);
        assert_eq!(originals.len(), 3);
    }

    #[test]
    fn dirty_seller_reevaluates_only_its_slots() {
        let bids = vec![bid(0, 0, 2, 4.0), bid(1, 0, 3, 9.0), bid(0, 1, 1, 1.5)];
        let calls = std::cell::Cell::new(0);
        let mut buf: RoundBuffer<u64> = RoundBuffer::new(2);
        let seller_of = |b: &Bid| b.seller.index();
        buf.round(&bids, &[1, 1], seller_of, eval_with(&calls));
        calls.set(0);
        buf.round(&bids, &[2, 1], seller_of, eval_with(&calls));
        assert_eq!(calls.get(), 2, "only seller 0's two bids re-evaluated");
    }

    #[test]
    fn changed_bid_list_forces_rebuild() {
        let bids = vec![bid(0, 0, 2, 4.0), bid(1, 0, 3, 9.0)];
        let calls = std::cell::Cell::new(0);
        let mut buf: RoundBuffer<u64> = RoundBuffer::new(2);
        let seller_of = |b: &Bid| b.seller.index();
        buf.round(&bids, &[1, 1], seller_of, eval_with(&calls));
        let other = vec![bid(0, 0, 2, 4.5), bid(1, 0, 3, 9.0)];
        calls.set(0);
        buf.round(&other, &[1, 1], seller_of, eval_with(&calls));
        assert_eq!(calls.get(), 2, "different bid list rebuilds everything");
    }

    #[test]
    fn invalidate_forces_cold_round() {
        let bids = vec![bid(0, 0, 2, 4.0)];
        let calls = std::cell::Cell::new(0);
        let mut buf: RoundBuffer<u64> = RoundBuffer::new(1);
        let seller_of = |b: &Bid| b.seller.index();
        buf.round(&bids, &[1], seller_of, eval_with(&calls));
        buf.invalidate();
        buf.round(&bids, &[1], seller_of, eval_with(&calls));
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn originals_keep_the_last_duplicate() {
        // Degenerate duplicate (seller, id): last occurrence wins, for
        // cold and patched rounds alike.
        let bids = vec![bid(0, 0, 2, 4.0), bid(0, 0, 3, 5.0)];
        let mut buf: RoundBuffer<u64> = RoundBuffer::new(1);
        let (_, originals, _) = buf.round(
            &bids,
            &[1],
            |b| b.seller.index(),
            |_, b| Slot::Scaled(b.price),
        );
        assert_eq!(
            originals.get(&(MicroserviceId::new(0), BidId::new(0))),
            Some(&1)
        );
    }
}
