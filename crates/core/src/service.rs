//! Event-sourced auction service: a pure state machine fed by a log.
//!
//! The online mechanism of the paper is *reactive* — bids, withdrawals,
//! demand reports, and seller defaults arrive over time and the platform
//! clears rounds against whatever book it holds when a round closes.
//! This module turns that into an explicit state machine:
//!
//! * [`ServiceEvent`] — the closed vocabulary of things that can happen
//!   to the market (`BidSubmitted`, `BidWithdrawn`, `DemandReported`,
//!   `RoundClosed`, `SellerDefaulted`);
//! * [`AuctionService`] — the deterministic state machine.
//!   [`AuctionService::apply`] either rejects an event with a structured
//!   [`ServiceError`] (admission control: unknown sellers, duplicate
//!   bids, book caps, bad prices) and leaves the state untouched, or
//!   accepts it and advances the state — including running a full
//!   MSOA/recovery stage whenever enough rounds have closed;
//! * [`LogWriter`] / [`parse_log`] — an append-only JSONL event log with
//!   a versioned header record and per-record FNV-1a digest chaining, so
//!   any truncation or tamper is detected at the exact record.
//!
//! **The log is the source of truth.** All effects are injected: the
//! per-stage base workload comes from a caller-supplied provider
//! closure, so replaying a log through a fresh service with the same
//! provider reproduces every outcome digest, every payment, and the
//! deterministic trace section *byte-identically* — at any pricing
//! thread count. `edge-market replay` and the serve-vs-replay
//! differential suite are built on exactly this property.
//!
//! Stages mirror `edge-market serve`'s seeded drive loop: stage `k`
//! spans up to `stage_rounds` closed rounds, its base instance comes
//! from the provider (the CLI uses `integrated_instance` seeded with
//! `seed + k`), wire bids/demand are merged on top, queued defaults
//! become the stage's [`FaultPlan`], and the stage runs through
//! [`run_msoa_with_faults_traced`]. With no wire events and no defaults
//! the merge is a no-op and the empty fault plan keeps the outcome
//! bit-identical to plain MSOA — the serve baseline of old.

use crate::bid::Bid;
use crate::error::AuctionError;
use crate::live::ServiceLive;
use crate::msoa::{MsoaConfig, MultiRoundInstance, RoundInput};
use crate::recovery::{
    run_msoa_with_faults_traced, DefaultEvent, FaultPlan, FaultyMsoaOutcome, RecoveryConfig,
};
use edge_common::id::{BidId, MicroserviceId};
use edge_telemetry::{Collector, Scoped, Trace, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;

/// The event-log schema version this build writes and understands.
pub const LOG_VERSION: u32 = 1;

/// Domain separator seeding the header record's digest chain.
const LOG_GENESIS: &str = "edge-market-event-log";

/// FNV-1a 64 over a byte string — the same fingerprint the scale
/// benchmark and `serve` use for outcome digests.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One market event, as recorded in the log.
///
/// Sellers are referenced by raw index into the platform's
/// microservice table; `bid` is the *submitter's* id for the bid (its
/// namespace), mapped to internal [`BidId`]s deterministically at stage
/// build time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceEvent {
    /// A seller placed (or refreshed) a standing bid on the book.
    BidSubmitted {
        /// Selling microservice index.
        seller: usize,
        /// Submitter-chosen bid id, unique per seller on the book.
        bid: u64,
        /// Resource units offered.
        amount: u64,
        /// Asking price for the full amount.
        price: f64,
    },
    /// A seller withdrew a standing bid from the book.
    BidWithdrawn {
        /// Selling microservice index.
        seller: usize,
        /// The bid id to remove.
        bid: u64,
    },
    /// A tenant reported additional demand for the next round.
    DemandReported {
        /// Demand units to add to the next closed round.
        units: u64,
    },
    /// The platform closed the current round and auctions its book.
    RoundClosed,
    /// A seller announced it will under-deliver in the next round.
    SellerDefaulted {
        /// Defaulting microservice index.
        seller: usize,
        /// Fraction of committed units actually delivered, in `[0, 1]`.
        delivered_fraction: f64,
    },
}

impl ServiceEvent {
    /// A short stable name for metrics and error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceEvent::BidSubmitted { .. } => "bid_submitted",
            ServiceEvent::BidWithdrawn { .. } => "bid_withdrawn",
            ServiceEvent::DemandReported { .. } => "demand_reported",
            ServiceEvent::RoundClosed => "round_closed",
            ServiceEvent::SellerDefaulted { .. } => "seller_defaulted",
        }
    }
}

/// Static configuration of a service run, recorded in the log header so
/// a log file is self-describing and replayable on its own.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Base RNG seed; stage `k`'s base instance derives from `seed + k`.
    pub seed: u64,
    /// Microservices (sellers) in the platform table.
    pub microservices: usize,
    /// Target request arrivals per simulated round.
    pub requests: u64,
    /// Total rounds before the horizon completes (0 = unbounded).
    pub total_rounds: u64,
    /// Rounds per stage.
    pub stage_rounds: u64,
    /// Admission cap on standing book entries.
    pub book_cap: usize,
    /// Admission cap on pending (unclosed) demand units.
    pub demand_cap: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            seed: 42,
            microservices: 25,
            requests: 100,
            total_rounds: 0,
            stage_rounds: 5,
            book_cap: 4096,
            demand_cap: 1_000_000,
        }
    }
}

/// Structured admission-control rejection. Rejected events leave the
/// service state (and its digest) untouched and are never logged.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The seller index is outside the platform table.
    UnknownSeller {
        /// The offending index.
        seller: usize,
    },
    /// The (seller, bid) pair is already on the book.
    DuplicateBid {
        /// Seller index.
        seller: usize,
        /// Duplicated bid id.
        bid: u64,
    },
    /// The standing book is at its admission cap.
    BookFull {
        /// The configured cap.
        cap: usize,
    },
    /// A bid offered zero units.
    ZeroAmount,
    /// A bid's price is negative or not finite.
    InvalidPrice {
        /// The offending price.
        price: f64,
    },
    /// A withdrawal referenced a bid not on the book.
    UnknownBid {
        /// Seller index.
        seller: usize,
        /// Missing bid id.
        bid: u64,
    },
    /// A demand report of zero units (a no-op is a client bug).
    ZeroDemand,
    /// Accepting the report would exceed the pending-demand cap.
    DemandOverCap {
        /// Units in the rejected report.
        units: u64,
        /// The configured cap.
        cap: u64,
    },
    /// A default's delivered fraction is outside `[0, 1]`.
    InvalidFraction {
        /// The offending fraction.
        fraction: f64,
    },
    /// A round close arrived after `total_rounds` completed.
    HorizonComplete,
    /// The stage auction itself failed (structural error).
    Auction(AuctionError),
}

impl ServiceError {
    /// A stable snake_case code for wire responses and metrics.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownSeller { .. } => "unknown_seller",
            ServiceError::DuplicateBid { .. } => "duplicate_bid",
            ServiceError::BookFull { .. } => "book_full",
            ServiceError::ZeroAmount => "zero_amount",
            ServiceError::InvalidPrice { .. } => "invalid_price",
            ServiceError::UnknownBid { .. } => "unknown_bid",
            ServiceError::ZeroDemand => "zero_demand",
            ServiceError::DemandOverCap { .. } => "demand_over_cap",
            ServiceError::InvalidFraction { .. } => "invalid_fraction",
            ServiceError::HorizonComplete => "horizon_complete",
            ServiceError::Auction(_) => "auction_error",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSeller { seller } => {
                write!(f, "seller {seller} is not in the platform table")
            }
            ServiceError::DuplicateBid { seller, bid } => {
                write!(f, "bid {bid} of seller {seller} is already on the book")
            }
            ServiceError::BookFull { cap } => {
                write!(f, "the book is at its admission cap of {cap} entries")
            }
            ServiceError::ZeroAmount => write!(f, "bids must offer at least one unit"),
            ServiceError::InvalidPrice { price } => {
                write!(f, "price {price} must be finite and non-negative")
            }
            ServiceError::UnknownBid { seller, bid } => {
                write!(f, "bid {bid} of seller {seller} is not on the book")
            }
            ServiceError::ZeroDemand => write!(f, "demand reports must be positive"),
            ServiceError::DemandOverCap { units, cap } => {
                write!(f, "{units} more units would exceed the demand cap of {cap}")
            }
            ServiceError::InvalidFraction { fraction } => {
                write!(f, "delivered fraction {fraction} must lie in [0, 1]")
            }
            ServiceError::HorizonComplete => {
                write!(f, "the configured round horizon is already complete")
            }
            ServiceError::Auction(e) => write!(f, "stage auction failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<AuctionError> for ServiceError {
    fn from(e: AuctionError) -> Self {
        ServiceError::Auction(e)
    }
}

/// What happened when an event was accepted.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The event's kind (for counters and replies).
    pub kind: &'static str,
    /// The service state digest after applying (hex, 16 chars).
    pub state_digest: String,
    /// When the event completed a stage, its summary.
    pub stage: Option<StageSummary>,
}

/// Summary of one completed stage auction.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Stage index (0-based).
    pub stage: u64,
    /// Rounds auctioned in this stage.
    pub rounds: u64,
    /// FNV-1a digest of the serialized stage outcome (hex, 16 chars).
    pub outcome_digest: String,
    /// Sellers with remaining capacity after the stage.
    pub sellers_alive: usize,
    /// Winning bids across the stage.
    pub winners: u64,
    /// Σ payments across the stage.
    pub total_payment: f64,
    /// Σ unmet demand units across the stage's rounds — what a
    /// federated platform would try to buy from a peer.
    pub shortfall_units: u64,
    /// Units actually committed across the stage (Σ χ_i).
    pub units_sold: u64,
    /// Capacity left unsold on non-blacklisted sellers — what a
    /// federated platform could re-sell to a peer.
    pub unsold_capacity: u64,
}

impl StageSummary {
    /// Mean clearing price per sold unit, if anything sold.
    pub fn unit_price(&self) -> Option<f64> {
        (self.units_sold > 0).then(|| self.total_payment / self.units_sold as f64)
    }
}

/// One standing book entry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BookEntry {
    amount: u64,
    price: f64,
}

/// The wire inputs bound to one closed round.
#[derive(Debug, Clone, Default)]
struct RoundOverlay {
    /// Book snapshot at close, in (seller, wire bid id) order.
    bids: Vec<(usize, u64, BookEntry)>,
    /// Wire-reported demand units added to the round.
    demand: u64,
    /// Announced defaults: seller → delivered fraction.
    defaults: Vec<(usize, f64)>,
}

/// The deterministic auction service state machine.
///
/// `P` provides stage base instances: `provider(stage, rounds)` must be
/// a pure function of its arguments (the CLI derives a fresh seeded RNG
/// per call), otherwise replay determinism is lost.
pub struct AuctionService<P> {
    config: ServiceConfig,
    provider: P,
    book: BTreeMap<(usize, u64), BookEntry>,
    pending_demand: u64,
    pending_defaults: BTreeMap<usize, f64>,
    overlays: Vec<RoundOverlay>,
    stage: u64,
    rounds_closed: u64,
    winners: u64,
    total_payment: f64,
    state_digest: u64,
    last_outcome_digest: Option<u64>,
    last_sellers_alive: usize,
    events_applied: u64,
    /// Extra fields stamped onto every stage's trace events (e.g. the
    /// owning platform in a federation). Never folded into digests.
    trace_scope: Vec<(&'static str, Value)>,
    live: ServiceLive,
}

impl<P> fmt::Debug for AuctionService<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuctionService")
            .field("config", &self.config)
            .field("book_len", &self.book.len())
            .field("stage", &self.stage)
            .field("rounds_closed", &self.rounds_closed)
            .field("state_digest", &format!("{:016x}", self.state_digest))
            .finish_non_exhaustive()
    }
}

impl<P: FnMut(u64, u64) -> MultiRoundInstance> AuctionService<P> {
    /// A fresh service over `config`, drawing stage base instances from
    /// `provider(stage, rounds)`.
    pub fn new(config: ServiceConfig, provider: P) -> Self {
        let header = serde_json::to_string(&config).expect("config serialization is infallible");
        AuctionService {
            config,
            provider,
            book: BTreeMap::new(),
            pending_demand: 0,
            pending_defaults: BTreeMap::new(),
            overlays: Vec::new(),
            stage: 0,
            rounds_closed: 0,
            winners: 0,
            total_payment: 0.0,
            state_digest: fnv1a64(format!("{LOG_GENESIS}:v{LOG_VERSION}:{header}").as_bytes()),
            last_outcome_digest: None,
            last_sellers_alive: 0,
            events_applied: 0,
            trace_scope: Vec::new(),
            live: ServiceLive::handle(),
        }
    }

    /// Stamps `fields` onto every subsequent stage's trace events,
    /// before the `stage` coordinate. Used by the federation layer to
    /// tag each platform's audit trail with its node id; digests are
    /// unaffected (the trace is an observer, never an input).
    pub fn set_trace_scope(&mut self, fields: Vec<(&'static str, Value)>) {
        self.trace_scope = fields;
    }

    /// The static configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Rounds closed so far (across all stages).
    pub fn rounds_closed(&self) -> u64 {
        self.rounds_closed
    }

    /// Stages completed so far.
    pub fn stages_completed(&self) -> u64 {
        self.stage
    }

    /// Events accepted so far.
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Standing book size.
    pub fn book_len(&self) -> usize {
        self.book.len()
    }

    /// Winning bids across all completed stages.
    pub fn winners(&self) -> u64 {
        self.winners
    }

    /// Σ payments across all completed stages.
    pub fn total_payment(&self) -> f64 {
        self.total_payment
    }

    /// Sellers with remaining capacity after the last completed stage.
    pub fn sellers_alive(&self) -> usize {
        self.last_sellers_alive
    }

    /// `true` once `total_rounds` rounds have closed (never for 0).
    pub fn horizon_complete(&self) -> bool {
        self.config.total_rounds > 0 && self.rounds_closed >= self.config.total_rounds
    }

    /// The rolling state digest (hex, 16 chars): seeded from the
    /// config, chained over every accepted event and every stage
    /// outcome. Two services that applied the same events from the same
    /// config always agree on it.
    pub fn state_digest_hex(&self) -> String {
        format!("{:016x}", self.state_digest)
    }

    /// Digest of the standing book alone (hex, 16 chars) — hostile
    /// inputs must leave this untouched.
    pub fn book_digest_hex(&self) -> String {
        let mut canon = String::new();
        for ((seller, bid), entry) in &self.book {
            use std::fmt::Write as _;
            let _ = write!(canon, "{seller}:{bid}:{}:{};", entry.amount, entry.price);
        }
        format!("{:016x}", fnv1a64(canon.as_bytes()))
    }

    /// Digest of the last completed stage's outcome (hex), if any.
    pub fn last_outcome_digest_hex(&self) -> Option<String> {
        self.last_outcome_digest.map(|d| format!("{d:016x}"))
    }

    /// Rounds the current stage will span: `stage_rounds`, clamped to
    /// the rounds left before the horizon — the same arithmetic the
    /// seeded serve loop has always used.
    fn current_stage_rounds(&self) -> u64 {
        let base = self.config.stage_rounds.max(1);
        if self.config.total_rounds == 0 {
            return base;
        }
        let closed_before_stage = self.rounds_closed - self.overlays.len() as u64;
        base.min(self.config.total_rounds - closed_before_stage)
    }

    /// Validates an event against the current state without mutating
    /// anything.
    ///
    /// # Errors
    ///
    /// The [`ServiceError`] the matching [`AuctionService::apply`] call
    /// would return.
    pub fn check(&self, event: &ServiceEvent) -> Result<(), ServiceError> {
        match *event {
            ServiceEvent::BidSubmitted {
                seller,
                bid,
                amount,
                price,
            } => {
                if seller >= self.config.microservices {
                    return Err(ServiceError::UnknownSeller { seller });
                }
                if amount == 0 {
                    return Err(ServiceError::ZeroAmount);
                }
                if !price.is_finite() || price < 0.0 {
                    return Err(ServiceError::InvalidPrice { price });
                }
                if self.book.contains_key(&(seller, bid)) {
                    return Err(ServiceError::DuplicateBid { seller, bid });
                }
                if self.book.len() >= self.config.book_cap {
                    return Err(ServiceError::BookFull {
                        cap: self.config.book_cap,
                    });
                }
                Ok(())
            }
            ServiceEvent::BidWithdrawn { seller, bid } => {
                if self.book.contains_key(&(seller, bid)) {
                    Ok(())
                } else {
                    Err(ServiceError::UnknownBid { seller, bid })
                }
            }
            ServiceEvent::DemandReported { units } => {
                if units == 0 {
                    return Err(ServiceError::ZeroDemand);
                }
                if self.pending_demand.saturating_add(units) > self.config.demand_cap {
                    return Err(ServiceError::DemandOverCap {
                        units,
                        cap: self.config.demand_cap,
                    });
                }
                Ok(())
            }
            ServiceEvent::RoundClosed => {
                if self.horizon_complete() {
                    Err(ServiceError::HorizonComplete)
                } else {
                    Ok(())
                }
            }
            ServiceEvent::SellerDefaulted {
                seller,
                delivered_fraction,
            } => {
                if seller >= self.config.microservices {
                    return Err(ServiceError::UnknownSeller { seller });
                }
                if !delivered_fraction.is_finite() || !(0.0..=1.0).contains(&delivered_fraction) {
                    return Err(ServiceError::InvalidFraction {
                        fraction: delivered_fraction,
                    });
                }
                Ok(())
            }
        }
    }

    /// Applies one event. Rejections leave the state byte-identical;
    /// acceptance advances the state digest and may complete a stage
    /// (whose audit-trail events land on `collector`, stamped with the
    /// stage index exactly like the seeded serve loop's).
    ///
    /// # Errors
    ///
    /// A structured [`ServiceError`] on admission rejection, or
    /// [`ServiceError::Auction`] if a completed stage's auction failed
    /// structurally.
    pub fn apply(
        &mut self,
        event: &ServiceEvent,
        collector: Option<&Collector>,
    ) -> Result<Applied, ServiceError> {
        self.check(event)?;
        // Span opens only for *accepted* events: rejections never reach
        // the log, so live and replay runs apply — and therefore span —
        // the exact same event sequence.
        let _apply_span = edge_telemetry::spans::enter("service.apply");
        if edge_telemetry::spans::is_enabled() {
            edge_telemetry::spans::ctr(event.kind(), 1);
        }
        let mut stage_summary = None;
        match *event {
            ServiceEvent::BidSubmitted {
                seller,
                bid,
                amount,
                price,
            } => {
                self.book.insert((seller, bid), BookEntry { amount, price });
            }
            ServiceEvent::BidWithdrawn { seller, bid } => {
                self.book.remove(&(seller, bid));
            }
            ServiceEvent::DemandReported { units } => {
                self.pending_demand += units;
            }
            ServiceEvent::SellerDefaulted {
                seller,
                delivered_fraction,
            } => {
                // Last announcement wins; one default per seller per round.
                self.pending_defaults.insert(seller, delivered_fraction);
            }
            ServiceEvent::RoundClosed => {
                self.overlays.push(RoundOverlay {
                    bids: self.book.iter().map(|(&(s, b), &e)| (s, b, e)).collect(),
                    demand: self.pending_demand,
                    defaults: self
                        .pending_defaults
                        .iter()
                        .map(|(&s, &f)| (s, f))
                        .collect(),
                });
                self.pending_demand = 0;
                self.pending_defaults.clear();
                self.rounds_closed += 1;
            }
        }

        // Fold the accepted event into the state digest before any
        // stage run, so the chain covers the exact event order.
        let canon = serde_json::to_string(event).expect("event serialization is infallible");
        self.state_digest = fnv1a64(
            format!(
                "{:016x}:{}:{}",
                self.state_digest, self.events_applied, canon
            )
            .as_bytes(),
        );
        self.events_applied += 1;
        self.live.record_event(event.kind(), self.book.len());

        if matches!(event, ServiceEvent::RoundClosed)
            && self.overlays.len() as u64 >= self.current_stage_rounds()
        {
            stage_summary = Some(self.run_stage(collector)?);
        }

        Ok(Applied {
            kind: event.kind(),
            state_digest: self.state_digest_hex(),
            stage: stage_summary,
        })
    }

    /// Runs the stage auction over the buffered overlays and folds the
    /// outcome into the state digest.
    fn run_stage(&mut self, collector: Option<&Collector>) -> Result<StageSummary, ServiceError> {
        let overlays = std::mem::take(&mut self.overlays);
        let n_rounds = overlays.len() as u64;
        let base = (self.provider)(self.stage, n_rounds);
        let (instance, plan) = merge_stage(&base, &overlays)?;

        // Stamp this stage's audit trail exactly like the seeded serve
        // loop always has, so multi-stage traces stay explainable. Any
        // ambient scope (e.g. a federation's platform id) goes first so
        // `stage` reads as the innermost coordinate.
        let scoped = collector.map(|c| {
            let mut fields = self.trace_scope.clone();
            fields.push(("stage", Value::from(self.stage)));
            Scoped::new(c, fields)
        });
        let trace = match &scoped {
            Some(s) => Trace::new(s),
            None => Trace::off(),
        };
        let outcome = run_msoa_with_faults_traced(
            &instance,
            &MsoaConfig::pinned(2.0),
            &plan,
            &RecoveryConfig::default(),
            trace,
        )?;

        let serialized =
            serde_json::to_string(&outcome).expect("outcome serialization is infallible");
        let digest = fnv1a64(serialized.as_bytes());
        self.state_digest =
            fnv1a64(format!("{:016x}:outcome:{:016x}", self.state_digest, digest).as_bytes());
        self.last_outcome_digest = Some(digest);
        self.last_sellers_alive = instance
            .sellers()
            .iter()
            .zip(&outcome.chi)
            .filter(|(s, &chi)| chi < s.capacity)
            .count();
        let unsold_capacity = instance
            .sellers()
            .iter()
            .zip(&outcome.chi)
            .zip(&outcome.blacklisted)
            .filter(|(_, &blacklisted)| !blacklisted)
            .map(|((s, &chi), _)| s.capacity.saturating_sub(chi))
            .sum();
        let summary = StageSummary {
            stage: self.stage,
            rounds: n_rounds,
            outcome_digest: format!("{digest:016x}"),
            sellers_alive: self.last_sellers_alive,
            winners: stage_winners(&outcome),
            total_payment: outcome.platform_cost.value(),
            shortfall_units: outcome.shortfall_units,
            units_sold: outcome.chi.iter().sum(),
            unsold_capacity,
        };
        self.winners += summary.winners;
        self.total_payment += summary.total_payment;
        self.stage += 1;
        self.live.record_stage();
        Ok(summary)
    }

    /// Applies a parsed log's events in order. Every record must be
    /// accepted — the log only ever contains accepted events, so a
    /// rejection means the log does not belong to this configuration.
    ///
    /// # Errors
    ///
    /// [`LogError::RejectedEvent`] naming the offending sequence number.
    pub fn apply_all(
        &mut self,
        records: &[LogRecord],
        collector: Option<&Collector>,
    ) -> Result<(), LogError> {
        for record in records {
            self.apply(&record.event, collector)
                .map_err(|source| LogError::RejectedEvent {
                    seq: record.seq,
                    source,
                })?;
        }
        Ok(())
    }
}

/// Winning bids across a stage outcome (primary and backfill).
fn stage_winners(outcome: &FaultyMsoaOutcome) -> u64 {
    outcome.rounds.iter().map(|r| r.winners.len() as u64).sum()
}

/// Merges the wire overlays onto the provider's base instance and
/// collects announced defaults into the stage's fault plan.
///
/// Wire bids are appended after the base round's bids in (seller, wire
/// bid id) order, with internal [`BidId`]s continuing each seller's
/// base numbering — a pure function of (base, overlays), so live and
/// replayed stages see bit-identical instances.
fn merge_stage(
    base: &MultiRoundInstance,
    overlays: &[RoundOverlay],
) -> Result<(MultiRoundInstance, FaultPlan), ServiceError> {
    let mut plan = FaultPlan::empty();
    let mut rounds = Vec::with_capacity(overlays.len());
    for (r, overlay) in overlays.iter().enumerate() {
        let base_round = &base.rounds()[r];
        let mut bids = base_round.bids.clone();
        let mut next_id: BTreeMap<usize, usize> = BTreeMap::new();
        for bid in &bids {
            let e = next_id.entry(bid.seller.index()).or_insert(0);
            *e = (*e).max(bid.id.index() + 1);
        }
        for &(seller, _wire_id, entry) in &overlay.bids {
            let id = next_id.entry(seller).or_insert(0);
            bids.push(
                Bid::new(
                    MicroserviceId::new(seller),
                    BidId::new(*id),
                    entry.amount,
                    entry.price,
                )
                .map_err(ServiceError::Auction)?,
            );
            *id += 1;
        }
        for &(seller, fraction) in &overlay.defaults {
            plan.defaults.push(DefaultEvent {
                round: r as u64,
                seller: MicroserviceId::new(seller),
                delivered_fraction: fraction,
            });
        }
        rounds.push(RoundInput::new(
            base_round.estimated_demand + overlay.demand,
            base_round.true_demand + overlay.demand,
            bids,
        ));
    }
    let instance =
        MultiRoundInstance::new(base.sellers().to_vec(), rounds).map_err(ServiceError::Auction)?;
    Ok((instance, plan))
}

// ---------------------------------------------------------------------
// The append-only event log.
// ---------------------------------------------------------------------

/// One parsed, chain-verified log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Sequence number (1-based; 0 is the header).
    pub seq: u64,
    /// The record's chain digest (hex, 16 chars).
    pub digest: String,
    /// The event.
    pub event: ServiceEvent,
}

/// Event-log reading/validation failure.
#[derive(Debug)]
pub enum LogError {
    /// I/O while reading or appending.
    Io(std::io::Error),
    /// The first record is not a well-formed header.
    MissingHeader,
    /// A record's schema version is not understood.
    UnknownVersion {
        /// The version found.
        version: u64,
    },
    /// A line failed to parse as a log record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A record's digest does not extend the chain.
    DigestMismatch {
        /// The offending record's sequence number.
        seq: u64,
        /// The digest the chain requires.
        expected: String,
        /// The digest on the record.
        found: String,
    },
    /// Sequence numbers are not contiguous.
    SeqGap {
        /// The sequence number the chain requires.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
    /// A replayed event was rejected — the log does not belong to the
    /// header's configuration (or was tampered with).
    RejectedEvent {
        /// The rejected record's sequence number.
        seq: u64,
        /// The admission error.
        source: ServiceError,
    },
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "event log io error: {e}"),
            LogError::MissingHeader => {
                write!(f, "the log's first record is not a v{LOG_VERSION} header")
            }
            LogError::UnknownVersion { version } => {
                write!(
                    f,
                    "unknown event-log version {version} (this build reads v{LOG_VERSION})"
                )
            }
            LogError::Malformed { line, detail } => {
                write!(f, "malformed log record at line {line}: {detail}")
            }
            LogError::DigestMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "digest chain broken at seq {seq}: expected {expected}, found {found}"
            ),
            LogError::SeqGap { expected, found } => {
                write!(f, "sequence gap: expected seq {expected}, found {found}")
            }
            LogError::RejectedEvent { seq, source } => {
                write!(f, "replayed event at seq {seq} was rejected: {source}")
            }
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// The header-record chain digest for a config.
fn header_digest(config: &ServiceConfig) -> u64 {
    let header = serde_json::to_string(config).expect("config serialization is infallible");
    fnv1a64(format!("{LOG_GENESIS}:v{LOG_VERSION}:{header}").as_bytes())
}

/// The chain digest of record `seq` carrying `event_json`, extending
/// `prev`.
fn record_digest(prev: u64, seq: u64, event_json: &str) -> u64 {
    fnv1a64(format!("{prev:016x}:{seq}:{event_json}").as_bytes())
}

/// Appends versioned, digest-chained JSONL records to any writer,
/// flushing after every record so a crash loses at most the record
/// being written.
#[derive(Debug)]
pub struct LogWriter<W: Write> {
    out: W,
    seq: u64,
    digest: u64,
}

impl<W: Write> LogWriter<W> {
    /// Writes the header record for `config` and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(mut out: W, config: &ServiceConfig) -> Result<Self, LogError> {
        let header = serde_json::to_string(config).expect("config serialization is infallible");
        let digest = header_digest(config);
        writeln!(
            out,
            "{{\"v\":{LOG_VERSION},\"seq\":0,\"digest\":\"{digest:016x}\",\"header\":{header}}}"
        )?;
        out.flush()?;
        Ok(LogWriter {
            out,
            seq: 0,
            digest,
        })
    }

    /// Appends one accepted event, returning its (seq, digest).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn append(&mut self, event: &ServiceEvent) -> Result<(u64, String), LogError> {
        let event_json = serde_json::to_string(event).expect("event serialization is infallible");
        self.seq += 1;
        self.digest = record_digest(self.digest, self.seq, &event_json);
        writeln!(
            self.out,
            "{{\"v\":{LOG_VERSION},\"seq\":{},\"digest\":\"{:016x}\",\"event\":{event_json}}}",
            self.seq, self.digest
        )?;
        self.out.flush()?;
        Ok((self.seq, format!("{:016x}", self.digest)))
    }

    /// Records appended so far (excluding the header).
    pub fn len(&self) -> u64 {
        self.seq
    }

    /// `true` while only the header has been written.
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }
}

/// A fully parsed and chain-verified event log.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLog {
    /// The header's service configuration.
    pub config: ServiceConfig,
    /// Every event record, in sequence order.
    pub records: Vec<LogRecord>,
    /// `true` when a trailing partial record (a mid-write crash) was
    /// dropped by lenient parsing.
    pub truncated_tail: bool,
}

/// Parses a JSONL event log, verifying the version, the sequence
/// numbering, and the full digest chain.
///
/// With `lenient_tail`, a malformed *final* line is treated as a
/// mid-write crash and dropped ([`ParsedLog::truncated_tail`] is set);
/// corruption anywhere else is always an error.
///
/// # Errors
///
/// Any [`LogError`] variant except `Io`/`RejectedEvent`.
pub fn parse_log(text: &str, lenient_tail: bool) -> Result<ParsedLog, LogError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let Some(first) = lines.first() else {
        return Err(LogError::MissingHeader);
    };
    let header_value: serde::Value =
        serde_json::from_str(first).map_err(|e| LogError::Malformed {
            line: 1,
            detail: e.to_string(),
        })?;
    let version = envelope_u64(&header_value, "v").ok_or(LogError::MissingHeader)?;
    if version != u64::from(LOG_VERSION) {
        return Err(LogError::UnknownVersion { version });
    }
    let config_value = header_value.get("header").ok_or(LogError::MissingHeader)?;
    let config = ServiceConfig::deserialize(config_value).map_err(|_| LogError::MissingHeader)?;
    let expected_header = header_digest(&config);
    let found = envelope_digest(&header_value).ok_or(LogError::MissingHeader)?;
    if found != format!("{expected_header:016x}") {
        return Err(LogError::DigestMismatch {
            seq: 0,
            expected: format!("{expected_header:016x}"),
            found,
        });
    }

    let mut records = Vec::with_capacity(lines.len().saturating_sub(1));
    let mut chain = expected_header;
    let mut truncated_tail = false;
    for (idx, line) in lines.iter().enumerate().skip(1) {
        let last = idx + 1 == lines.len();
        let parsed: Result<LogRecord, LogError> = parse_record(line, idx + 1, chain);
        match parsed {
            Ok(record) => {
                let expected_seq = records.len() as u64 + 1;
                if record.seq != expected_seq {
                    return Err(LogError::SeqGap {
                        expected: expected_seq,
                        found: record.seq,
                    });
                }
                chain = u64::from_str_radix(&record.digest, 16).expect("verified digests are hex");
                records.push(record);
            }
            Err(LogError::Malformed { .. }) if last && lenient_tail => {
                truncated_tail = true;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ParsedLog {
        config,
        records,
        truncated_tail,
    })
}

/// Parses and chain-checks one event record line.
fn parse_record(line: &str, line_no: usize, chain: u64) -> Result<LogRecord, LogError> {
    let value: serde::Value = serde_json::from_str(line).map_err(|e| LogError::Malformed {
        line: line_no,
        detail: e.to_string(),
    })?;
    let version = envelope_u64(&value, "v").ok_or_else(|| LogError::Malformed {
        line: line_no,
        detail: "missing `v`".into(),
    })?;
    if version != u64::from(LOG_VERSION) {
        return Err(LogError::UnknownVersion { version });
    }
    let seq = envelope_u64(&value, "seq").ok_or_else(|| LogError::Malformed {
        line: line_no,
        detail: "missing `seq`".into(),
    })?;
    let digest = envelope_digest(&value).ok_or_else(|| LogError::Malformed {
        line: line_no,
        detail: "missing `digest`".into(),
    })?;
    let event_value = value.get("event").ok_or_else(|| LogError::Malformed {
        line: line_no,
        detail: "missing `event`".into(),
    })?;
    let event = ServiceEvent::deserialize(event_value).map_err(|e| LogError::Malformed {
        line: line_no,
        detail: e.to_string(),
    })?;
    // Re-serialize and extend the chain: the writer emits canonical
    // JSON, so round-tripping reproduces the exact digested bytes.
    let event_json = serde_json::to_string(&event).expect("event serialization is infallible");
    let expected = record_digest(chain, seq, &event_json);
    if digest != format!("{expected:016x}") {
        return Err(LogError::DigestMismatch {
            seq,
            expected: format!("{expected:016x}"),
            found: digest,
        });
    }
    Ok(LogRecord { seq, digest, event })
}

/// Reads an unsigned envelope field.
fn envelope_u64(value: &serde::Value, key: &str) -> Option<u64> {
    match value.get(key) {
        Some(serde::Value::U64(u)) => Some(*u),
        _ => None,
    }
}

/// Reads the envelope digest field.
fn envelope_digest(value: &serde::Value) -> Option<String> {
    match value.get("digest") {
        Some(serde::Value::Str(s)) if s.len() == 16 => Some(s.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Seller;
    use edge_common::rng::derive_rng;
    use rand::Rng;

    /// A small deterministic provider for state-machine tests (the CLI
    /// injects the real simulator-backed one).
    fn test_provider(stage: u64, rounds: u64) -> MultiRoundInstance {
        let mut rng = derive_rng(100 + stage, "service-test");
        let sellers: Vec<Seller> = (0..6)
            .map(|s| {
                Seller::new(MicroserviceId::new(s), 30, (0, rounds.saturating_sub(1)))
                    .expect("window ordered")
            })
            .collect();
        let rounds: Vec<RoundInput> = (0..rounds)
            .map(|_| {
                let bids: Vec<Bid> = (0..6)
                    .map(|s| {
                        let amount = 1 + rng.gen_range(0..4u64);
                        let price = rng.gen_range(10.0..35.0) * amount as f64 / 5.0;
                        Bid::new(MicroserviceId::new(s), BidId::new(0), amount, price)
                            .expect("valid")
                    })
                    .collect();
                RoundInput::new(4, 4, bids)
            })
            .collect();
        MultiRoundInstance::new(sellers, rounds).expect("valid")
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            seed: 7,
            microservices: 6,
            total_rounds: 6,
            stage_rounds: 3,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn admission_control_rejects_without_touching_state() {
        let mut svc = AuctionService::new(config(), test_provider);
        let before = (svc.state_digest_hex(), svc.book_digest_hex());
        for (event, code) in [
            (
                ServiceEvent::BidSubmitted {
                    seller: 99,
                    bid: 0,
                    amount: 1,
                    price: 5.0,
                },
                "unknown_seller",
            ),
            (
                ServiceEvent::BidSubmitted {
                    seller: 0,
                    bid: 0,
                    amount: 0,
                    price: 5.0,
                },
                "zero_amount",
            ),
            (
                ServiceEvent::BidSubmitted {
                    seller: 0,
                    bid: 0,
                    amount: 1,
                    price: -2.0,
                },
                "invalid_price",
            ),
            (
                ServiceEvent::BidSubmitted {
                    seller: 0,
                    bid: 0,
                    amount: 1,
                    price: f64::NAN,
                },
                "invalid_price",
            ),
            (
                ServiceEvent::BidWithdrawn { seller: 0, bid: 9 },
                "unknown_bid",
            ),
            (ServiceEvent::DemandReported { units: 0 }, "zero_demand"),
            (
                ServiceEvent::SellerDefaulted {
                    seller: 1,
                    delivered_fraction: 1.5,
                },
                "invalid_fraction",
            ),
        ] {
            let err = svc.apply(&event, None).unwrap_err();
            assert_eq!(err.code(), code, "{event:?}");
        }
        assert_eq!(before, (svc.state_digest_hex(), svc.book_digest_hex()));
        assert_eq!(svc.events_applied(), 0);
    }

    #[test]
    fn duplicate_and_caps_are_enforced() {
        let mut svc = AuctionService::new(
            ServiceConfig {
                book_cap: 2,
                demand_cap: 10,
                ..config()
            },
            test_provider,
        );
        let bid = |seller, bid| ServiceEvent::BidSubmitted {
            seller,
            bid,
            amount: 1,
            price: 4.0,
        };
        svc.apply(&bid(0, 0), None).unwrap();
        assert_eq!(
            svc.apply(&bid(0, 0), None).unwrap_err().code(),
            "duplicate_bid"
        );
        svc.apply(&bid(1, 0), None).unwrap();
        assert_eq!(svc.apply(&bid(2, 0), None).unwrap_err().code(), "book_full");
        svc.apply(&ServiceEvent::DemandReported { units: 8 }, None)
            .unwrap();
        assert_eq!(
            svc.apply(&ServiceEvent::DemandReported { units: 3 }, None)
                .unwrap_err()
                .code(),
            "demand_over_cap"
        );
        // Withdrawing frees book space.
        svc.apply(&ServiceEvent::BidWithdrawn { seller: 0, bid: 0 }, None)
            .unwrap();
        svc.apply(&bid(2, 0), None).unwrap();
    }

    #[test]
    fn stages_fire_on_round_boundaries_and_respect_the_horizon() {
        let mut svc = AuctionService::new(config(), test_provider);
        let mut stages = 0;
        for _ in 0..6 {
            let applied = svc.apply(&ServiceEvent::RoundClosed, None).unwrap();
            if applied.stage.is_some() {
                stages += 1;
            }
        }
        assert_eq!(stages, 2, "two 3-round stages");
        assert_eq!(svc.stages_completed(), 2);
        assert_eq!(svc.rounds_closed(), 6);
        assert!(svc.horizon_complete());
        assert_eq!(
            svc.apply(&ServiceEvent::RoundClosed, None)
                .unwrap_err()
                .code(),
            "horizon_complete"
        );
    }

    #[test]
    fn empty_book_stage_matches_plain_recovery_run() {
        // No wire events ⇒ the merged instance IS the provider's, and
        // the empty plan keeps the outcome bit-identical to a direct
        // run — the serve baseline invariant.
        let mut svc = AuctionService::new(config(), test_provider);
        let mut digest = None;
        for _ in 0..3 {
            let applied = svc.apply(&ServiceEvent::RoundClosed, None).unwrap();
            if let Some(stage) = applied.stage {
                digest = Some(stage.outcome_digest);
            }
        }
        let outcome = run_msoa_with_faults_traced(
            &test_provider(0, 3),
            &MsoaConfig::pinned(2.0),
            &FaultPlan::empty(),
            &RecoveryConfig::default(),
            Trace::off(),
        )
        .unwrap();
        let expected = format!(
            "{:016x}",
            fnv1a64(serde_json::to_string(&outcome).unwrap().as_bytes())
        );
        assert_eq!(digest.unwrap(), expected);
    }

    #[test]
    fn log_round_trips_and_replay_reproduces_digests() {
        let events = vec![
            ServiceEvent::BidSubmitted {
                seller: 2,
                bid: 7,
                amount: 3,
                price: 11.25,
            },
            ServiceEvent::DemandReported { units: 2 },
            ServiceEvent::RoundClosed,
            ServiceEvent::SellerDefaulted {
                seller: 2,
                delivered_fraction: 0.5,
            },
            ServiceEvent::RoundClosed,
            ServiceEvent::BidWithdrawn { seller: 2, bid: 7 },
            ServiceEvent::RoundClosed,
        ];
        let mut live = AuctionService::new(config(), test_provider);
        let mut buf = Vec::new();
        let mut writer = LogWriter::new(&mut buf, &config()).unwrap();
        for event in &events {
            live.apply(event, None).unwrap();
            writer.append(event).unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let parsed = parse_log(&text, false).unwrap();
        assert_eq!(parsed.config, config());
        assert_eq!(parsed.records.len(), events.len());
        assert!(!parsed.truncated_tail);

        let mut replayed = AuctionService::new(parsed.config, test_provider);
        replayed.apply_all(&parsed.records, None).unwrap();
        assert_eq!(replayed.state_digest_hex(), live.state_digest_hex());
        assert_eq!(
            replayed.last_outcome_digest_hex(),
            live.last_outcome_digest_hex()
        );
        assert_eq!(replayed.book_digest_hex(), live.book_digest_hex());
    }

    #[test]
    fn tampered_logs_are_detected_at_the_exact_record() {
        let mut buf = Vec::new();
        let mut writer = LogWriter::new(&mut buf, &config()).unwrap();
        for _ in 0..3 {
            writer
                .append(&ServiceEvent::DemandReported { units: 1 })
                .unwrap();
        }
        let text = String::from_utf8(buf).unwrap();

        // Flip a digit inside record 2's event payload, leaving its
        // envelope (seq, digest) untouched.
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[2] = lines[2].replace("{\"units\":1}", "{\"units\":9}");
        let tampered = lines.join("\n");
        match parse_log(&tampered, false) {
            Err(LogError::DigestMismatch { seq, .. }) => assert_eq!(seq, 2),
            other => panic!("expected digest mismatch at seq 2, got {other:?}"),
        }

        // Unknown version is refused.
        let future = text.replace("\"v\":1,\"seq\":0", "\"v\":9,\"seq\":0");
        assert!(matches!(
            parse_log(&future, false),
            Err(LogError::UnknownVersion { version: 9 })
        ));

        // A trailing partial record is fatal strictly, dropped leniently.
        let cut = &text[..text.len() - 10];
        assert!(matches!(
            parse_log(cut, false),
            Err(LogError::Malformed { .. })
        ));
        let lenient = parse_log(cut, true).unwrap();
        assert!(lenient.truncated_tail);
        assert_eq!(lenient.records.len(), 2);
    }

    #[test]
    fn wire_bids_join_the_auction_and_change_the_outcome() {
        // A very cheap wire bid must win over the base bids.
        let mut with_wire = AuctionService::new(config(), test_provider);
        with_wire
            .apply(
                &ServiceEvent::BidSubmitted {
                    seller: 0,
                    bid: 1,
                    amount: 4,
                    price: 0.01,
                },
                None,
            )
            .unwrap();
        let mut without = AuctionService::new(config(), test_provider);
        for _ in 0..3 {
            with_wire.apply(&ServiceEvent::RoundClosed, None).unwrap();
            without.apply(&ServiceEvent::RoundClosed, None).unwrap();
        }
        assert_ne!(
            with_wire.last_outcome_digest_hex(),
            without.last_outcome_digest_hex(),
            "a dominating wire bid must alter the stage outcome"
        );
    }
}
