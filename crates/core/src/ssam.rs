//! SSAM — the Single-Stage Auction Mechanism (Algorithm 1).
//!
//! A primal–dual greedy approximation to the NP-hard WSP with
//! Myerson-style critical-value payments:
//!
//! 1. **Winner selection** — while demand is uncovered, pick the bid with
//!    the minimum *price per unit of marginal contribution*
//!    (`∇_ij / U_ij(𝔼^t)`, line 4); the winner's remaining bids leave the
//!    candidate set (constraint (9)).
//! 2. **Payment** — each winner is paid its *critical value* (Lemma 3):
//!    the supremum of prices at which its bid would still win. The
//!    paper's lines 6–7 approximate this with the runner-up's unit price
//!    at the winning iteration; in the multi-iteration covering setting
//!    that local value is *not* the true threshold (a bid priced just
//!    above it can still win a later iteration), which would break
//!    truthfulness. We therefore compute the exact threshold by replaying
//!    the greedy run without the winner: before the winner's first win
//!    that replay visits exactly the real run's states, so the threshold
//!    is `max_k r_k · U_ij(state_k)` over the replay's iterations — the
//!    paper's formula is the `k = winning iteration` term of this max.
//!    Together with the monotonicity of greedy selection (Lemma 2) the
//!    exact threshold makes truthful bidding dominant (Theorem 4, via
//!    Myerson) and every payment covers the bid price (individual
//!    rationality, Theorem 5).
//! 3. **Dual certificate** — distributing each winning price over the
//!    units it covers yields a feasible dual solution whose value is
//!    `primal / π` with `π = H_X · Ξ` (Theorem 3): `H_X` the harmonic
//!    number of the demand and `Ξ` the max/min spread of assigned unit
//!    prices. The certificate bounds the optimality gap without knowing
//!    the optimum.
//!
//! # Examples
//!
//! ```
//! use edge_auction::bid::Bid;
//! use edge_auction::wsp::WspInstance;
//! use edge_auction::ssam::{run_ssam, SsamConfig};
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let bids = vec![
//!     Bid::new(MicroserviceId::new(0), BidId::new(0), 2, 4.0)?, // $2/u
//!     Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 6.0)?, // $3/u
//! ];
//! let outcome = run_ssam(&WspInstance::new(3, bids)?, &SsamConfig::default())?;
//! assert_eq!(outcome.winners.len(), 2);
//! // Every winner's payment covers its price (individual rationality).
//! assert!(outcome.winners.iter().all(|w| w.payment >= w.price));
//! # Ok(())
//! # }
//! ```

use crate::error::AuctionError;
use crate::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use edge_telemetry::{Level, Trace, Value};
use serde::{Deserialize, Serialize};

/// Configuration of a single-stage auction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SsamConfig {
    /// Optional reserve unit price. When set, bids asking more than this
    /// per unit are excluded up front, and a winner with no runner-up is
    /// paid the reserve instead of its own price — preserving the
    /// critical-value semantics even for lone bidders. When `None`, a
    /// lone winner is paid exactly its bid price (individually rational,
    /// but its threshold is its own report; the paper leaves this case
    /// unspecified).
    pub reserve_unit_price: Option<f64>,
}

/// One accepted bid with its payment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WinningBid {
    /// The winning seller.
    pub seller: MicroserviceId,
    /// Which of the seller's alternative bids won.
    pub bid: BidId,
    /// Units the bid offered (`a_ij^t`).
    pub amount_offered: u64,
    /// Units credited toward the demand (`U_ij(𝔼^t)` at selection time —
    /// may be less than the offer when it over-covers the tail).
    pub contribution: u64,
    /// The price used during selection (the true bid price in SSAM; the
    /// ψ-scaled price when called from MSOA).
    pub price: Price,
    /// The exact critical-value payment to the seller (the supremum of
    /// prices at which this bid still wins).
    pub payment: Price,
}

impl WinningBid {
    /// Unit price assigned to the units this bid covered
    /// (`f(i, Ŝ) = ∇/U`).
    pub fn assigned_unit_price(&self) -> f64 {
        self.price.value() / self.contribution as f64
    }
}

/// The dual-feasibility certificate of Theorem 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioCertificate {
    /// Harmonic number `H_X` of the covered demand.
    pub harmonic: f64,
    /// Max/min spread `Ξ` of assigned unit prices.
    pub xi: f64,
    /// Certified approximation ratio `π = H_X · Ξ`.
    pub pi: f64,
    /// Feasible dual objective `ω / π` — a lower bound on the offline
    /// optimum (weak duality).
    pub dual_objective: f64,
}

/// The full outcome of one single-stage auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsamOutcome {
    /// Accepted bids in selection order.
    pub winners: Vec<WinningBid>,
    /// The demand that was covered.
    pub demand: u64,
    /// Σ winning (selection) prices — the primal objective `ω` of
    /// ILP (12).
    pub social_cost: Price,
    /// Σ payments to winners.
    pub total_payment: Price,
    /// The Theorem 3 certificate.
    pub certificate: RatioCertificate,
}

impl SsamOutcome {
    /// Returns the winner entry for a seller, if it won.
    pub fn winner_for(&self, seller: MicroserviceId) -> Option<&WinningBid> {
        self.winners.iter().find(|w| w.seller == seller)
    }

    /// `true` if a seller won any bid.
    pub fn is_winner(&self, seller: MicroserviceId) -> bool {
        self.winner_for(seller).is_some()
    }
}

/// Provenance of one critical-value payment: the runner-up iteration of
/// the winner-less replay that set the Myerson threshold. Recording this
/// (rather than just the resulting number) is what lets
/// `edge-market explain` re-derive every payment from the trace:
/// `payment = unit_price × contribution` exactly, with both factors as
/// recorded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalSource {
    /// The runner-up seller whose bid priced the winner.
    pub seller: MicroserviceId,
    /// The runner-up's bid.
    pub bid: BidId,
    /// Zero-based iteration of the replay at which the max was attained.
    pub iteration: u64,
    /// The runner-up's price per unit of marginal contribution (`r_k`).
    pub unit_price: f64,
    /// The winner's marginal contribution at that replay state
    /// (`min(amount, remaining_k)`).
    pub contribution: u64,
}

/// Lazy-deletion heap traffic accumulated over a greedy run and its
/// payment replays; surfaced as the `ssam.stats` trace event.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Entries popped from the heap.
    pub pops: u64,
    /// Stale entries re-pushed with a recomputed key.
    pub repushes: u64,
    /// Entries discarded because their seller had already sold.
    pub sold_discards: u64,
    /// Entries discarded permanently as unsafe.
    pub unsafe_discards: u64,
    /// Argmin queries answered (`pop_best` / `pop_best_safe` calls).
    /// Both engines issue exactly one per greedy iteration, so this is
    /// engine-, shard-, batch-, and thread-invariant — it may sit in
    /// the deterministic trace section.
    pub scans: u64,
    /// Lane heads examined across those scans (arena engine only:
    /// `lanes` per query). Grows with the shard count — profile-section
    /// data, never deterministic.
    pub head_reads: u64,
}

impl HeapStats {
    fn absorb(&mut self, other: HeapStats) {
        self.pops += other.pops;
        self.repushes += other.repushes;
        self.sold_discards += other.sold_discards;
        self.unsafe_discards += other.unsafe_discards;
        self.scans += other.scans;
        self.head_reads += other.head_reads;
    }
}

/// Work counters for one single-stage auction: the heap traffic plus the
/// payment phase's replay accounting. `payment_replays` counts one
/// replay per winner; `replay_iterations` counts every iteration those
/// replays advanced through, of which `prefix_iterations` were served in
/// O(1) from the real run's shared prefix instead of heap work — the
/// ratio makes the shared-prefix speedup auditable from a trace
/// (surfaced as the `ssam.stats` event and by `edge-market explain`).
/// All counts are deterministic and independent of the pricing pool
/// size.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SsamStats {
    /// Lazy-deletion heap traffic (selection plus replay suffixes).
    pub heap: HeapStats,
    /// Payment replays performed (one per winner).
    pub payment_replays: u64,
    /// Total replay iterations across all payment replays.
    pub replay_iterations: u64,
    /// Replay iterations answered from the shared prefix.
    pub prefix_iterations: u64,
}

/// Marginal contribution of a bid given the uncovered remainder
/// (Eq. 19 specialised to the aggregate demand).
fn contribution(amount: u64, remaining: u64) -> u64 {
    amount.min(remaining)
}

/// Greedy key: price per unit of marginal contribution.
fn ratio(price: Price, amount: u64, remaining: u64) -> f64 {
    price.value() / contribution(amount, remaining) as f64
}

/// Runs Algorithm 1 on a validated instance.
///
/// # Errors
///
/// Returns [`AuctionError::InfeasibleDemand`] when the reserve filter (if
/// any) leaves too little supply. An instance that was feasible at
/// construction cannot fail otherwise.
pub fn run_ssam(instance: &WspInstance, config: &SsamConfig) -> Result<SsamOutcome, AuctionError> {
    run_ssam_traced(instance, config, Trace::off())
}

/// [`run_ssam`] with an audit trail: every exclusion, selection, and
/// payment decision is recorded on `trace`, including the
/// critical-value provenance ([`CriticalSource`]) that lets
/// `edge-market explain` re-derive each payment exactly. Tracing does
/// not change the outcome — `run_ssam` is this function with the trace
/// off.
///
/// # Errors
///
/// Exactly as [`run_ssam`].
pub fn run_ssam_traced(
    instance: &WspInstance,
    config: &SsamConfig,
    trace: Trace<'_>,
) -> Result<SsamOutcome, AuctionError> {
    let _ssam_span = edge_telemetry::spans::enter("ssam");
    // Candidate set 𝔽^t: all bids, filtered by the reserve if present.
    let candidates: Vec<&crate::bid::Bid> = instance
        .bids()
        .filter(|b| match config.reserve_unit_price {
            Some(r) => b.unit_price() <= r,
            None => true,
        })
        .collect();

    trace.emit_with(Level::Info, "ssam.start", || {
        vec![
            ("demand", Value::from(instance.demand())),
            ("bids", Value::from(instance.bids().count())),
            ("candidates", Value::from(candidates.len())),
            (
                "reserve_unit_price",
                config
                    .reserve_unit_price
                    .map(Value::from)
                    .unwrap_or(Value::F64(f64::NAN)),
            ),
        ]
    });
    if trace.is_on() {
        if let Some(r) = config.reserve_unit_price {
            for b in instance.bids().filter(|b| b.unit_price() > r) {
                trace.emit_with(Level::Debug, "ssam.excluded", || {
                    vec![
                        ("seller", Value::from(b.seller.index())),
                        ("bid", Value::from(b.id.index())),
                        ("unit_price", Value::from(b.unit_price())),
                        ("reason", Value::from("reserve")),
                    ]
                });
            }
        }
    }

    // Feasibility under the filter.
    let mut per_seller_best: std::collections::BTreeMap<MicroserviceId, u64> =
        std::collections::BTreeMap::new();
    for b in &candidates {
        let e = per_seller_best.entry(b.seller).or_insert(0);
        *e = (*e).max(b.amount);
    }
    let supply: u64 = per_seller_best.values().sum();
    if supply < instance.demand() {
        return Err(AuctionError::InfeasibleDemand {
            demand: instance.demand(),
            supply,
        });
    }

    // Winner selection runs on one of two engines computing the same
    // argmin sequence (and therefore bit-identical selections, payments,
    // and traces — the differential suite pins them to each other and to
    // the scan oracle): the SoA lane arena (`crate::arena`), sharded by
    // seller region, for instances whose distinct amounts fit the lane
    // table; or the original lazy-deletion heap for arbitrarily wide
    // instances. Wall-clock telemetry goes to the ambient selection
    // counters, never into the trace.
    let demand = instance.demand();
    let mut stats = SsamStats::default();
    let selection_span = edge_telemetry::spans::enter("selection");
    let selection_start = std::time::Instant::now();
    let table = crate::arena::SellerTable::new(&per_seller_best);
    let class_cap = crate::pricing::lane_class_cap();
    let arena = {
        let _build_span = edge_telemetry::spans::enter("arena.build");
        if class_cap == 0 {
            None
        } else {
            crate::arena::BidArena::build(
                &candidates,
                &table,
                crate::pricing::effective_shards(table.len()),
                class_cap,
            )
        }
    };
    let lanes = arena.as_ref().map_or(0, |a| a.lanes());
    if edge_telemetry::spans::is_enabled() {
        edge_telemetry::spans::diag("lanes", lanes as u64);
        edge_telemetry::spans::lane_gauges(lanes as u64, candidates.len() as u64);
    }
    let mut merge_ns = 0u64;
    let (selection, snapshots) = {
        let _merge_span = edge_telemetry::spans::enter("merge");
        match &arena {
            Some(a) => {
                let merge_start = std::time::Instant::now();
                let (sel, snaps) =
                    greedy_select_arena(a, &table, &candidates, demand, &mut stats.heap);
                merge_ns = merge_start.elapsed().as_nanos() as u64;
                (sel, Some(snaps))
            }
            None => (
                greedy_select(candidates.clone(), demand, &mut stats.heap),
                None,
            ),
        }
    };
    edge_telemetry::selection::record(selection_start.elapsed().as_nanos() as u64, merge_ns);
    // Selection-side work counters on the `selection` span. Scans and
    // snapshot counts are position-determined (knob-invariant); lane
    // head reads grow with the shard count, so they are diagnostics.
    let (selection_scans, selection_reads) = (stats.heap.scans, stats.heap.head_reads);
    if edge_telemetry::spans::is_enabled() {
        edge_telemetry::spans::ctr("winners", selection.len() as u64);
        edge_telemetry::spans::ctr("pop_best_scans", selection_scans);
        edge_telemetry::spans::ctr(
            "snapshots",
            snapshots.as_ref().map_or(0, |s| s.len()) as u64,
        );
        edge_telemetry::spans::diag("lane_head_reads", selection_reads);
    }
    drop(selection_span);

    if trace.is_on() {
        let mut remaining = demand;
        for (order, (winner, c)) in selection.iter().enumerate() {
            let before = remaining;
            remaining -= c;
            trace.emit_with(Level::Debug, "ssam.select", || {
                vec![
                    ("order", Value::from(order)),
                    ("seller", Value::from(winner.seller.index())),
                    ("bid", Value::from(winner.id.index())),
                    ("amount", Value::from(winner.amount)),
                    ("contribution", Value::from(*c)),
                    ("price", Value::from(winner.price.value())),
                    ("unit_price", Value::from(winner.price.value() / *c as f64)),
                    ("remaining_before", Value::from(before)),
                ]
            });
        }
    }

    // Payments: the exact critical value per winner (lines 6–7
    // strengthened — see the module docs). For winner `i`, replay the
    // greedy run *without seller i*; before `i`'s first win that run
    // visits exactly the states of the real run, so `i` wins iff its
    // price undercuts `r_k · U_i(state_k)` at some iteration `k` of the
    // replay. The supremum of winning prices — the Myerson threshold — is
    // therefore `max_k r_k · U_i(state_k)`.
    //
    // Two optimizations, neither observable in the outcome (DESIGN.md
    // §11): the iterations before `i`'s selection position are answered
    // in O(1) each from a precomputed snapshot of the real run
    // ([`PrefixStep`]) instead of heap replays, and the per-winner
    // replays — mutually independent — fan out over the configured
    // pricing pool. Workers only compute; trace emission, stats
    // absorption, and outcome assembly all happen below, on this
    // thread, in winner order, so traces and outcomes are byte-identical
    // at any thread count.
    let pricing_span = edge_telemetry::spans::enter("pricing");
    let pricing_start = std::time::Instant::now();
    let (prefix, position) = {
        let _prefix_span = edge_telemetry::spans::enter("prefix.build");
        build_prefix(&selection, demand, supply, &per_seller_best)
    };
    let replays: Vec<ReplayOutcome> = {
        let _replay_span = edge_telemetry::spans::enter("replays");
        match (&arena, &snapshots) {
            (Some(a), Some(snaps)) => {
                batched_replays(a, &table, &selection, &prefix, &position, snaps)
            }
            _ => crate::pricing::fan_out(selection.len(), |p| {
                let (winner, _) = &selection[p];
                let phantom = per_seller_best.get(&winner.seller).copied().unwrap_or(0);
                replay_payment(&candidates, &prefix, &position, p, winner, phantom)
            }),
        }
    };

    let mut winners: Vec<WinningBid> = Vec::with_capacity(selection.len());
    for ((winner, c), replay) in selection.iter().zip(replays) {
        stats.heap.absorb(replay.heap);
        stats.payment_replays += 1;
        stats.replay_iterations += replay.iterations;
        stats.prefix_iterations += replay.prefix_iterations;
        let threshold = replay.threshold;
        let payment_value = match threshold {
            Some((v, _)) => v,
            // Monopolist residual: no alternate run covers the demand, so
            // any price wins. Cap at the reserve when configured, else at
            // the bid's own price (IR-safe, threshold degenerate).
            None => config
                .reserve_unit_price
                .map(|r| r * winner.amount as f64)
                .unwrap_or(winner.price.value())
                .max(winner.price.value()),
        };
        trace.emit_with(Level::Debug, "ssam.payment", || {
            let mut fields = vec![
                ("seller", Value::from(winner.seller.index())),
                ("bid", Value::from(winner.id.index())),
                ("amount", Value::from(winner.amount)),
                ("price", Value::from(winner.price.value())),
                ("payment", Value::from(payment_value)),
            ];
            match &threshold {
                Some((_, Some(src))) => {
                    fields.push(("kind", Value::from("runner_up")));
                    fields.push(("source_seller", Value::from(src.seller.index())));
                    fields.push(("source_bid", Value::from(src.bid.index())));
                    fields.push(("source_iteration", Value::from(src.iteration)));
                    fields.push(("source_unit_price", Value::from(src.unit_price)));
                    fields.push(("source_contribution", Value::from(src.contribution)));
                }
                Some((_, None)) => fields.push(("kind", Value::from("zero"))),
                None => {
                    let reserve_pay = config.reserve_unit_price.map(|r| r * winner.amount as f64);
                    let kind = match reserve_pay {
                        Some(rp) if rp >= winner.price.value() => "reserve",
                        _ => "own_price",
                    };
                    fields.push(("kind", Value::from(kind)));
                }
            }
            fields
        });
        winners.push(WinningBid {
            seller: winner.seller,
            bid: winner.id,
            amount_offered: winner.amount,
            contribution: *c,
            price: winner.price,
            payment: Price::new_unchecked(payment_value),
        });
    }

    // Wall-clock goes to the ambient profile counters, never into the
    // trace: traces must stay byte-identical across machines and thread
    // counts. The same observation feeds the adaptive pool's per-replay
    // cost EMA (`--pricing-threads 0`).
    let pricing_ns = pricing_start.elapsed().as_nanos() as u64;
    edge_telemetry::pricing::record(
        stats.payment_replays,
        stats.replay_iterations,
        stats.prefix_iterations,
        pricing_ns,
    );
    crate::pricing::note_pricing_phase(stats.payment_replays, pricing_ns);
    // Pricing-side counters: replay totals and argmin scans (both
    // knob-invariant) on the deterministic side; lane head reads (the
    // per-shard scan width the ROADMAP flags) on the profile side.
    if edge_telemetry::spans::is_enabled() {
        edge_telemetry::spans::ctr("replays", stats.payment_replays);
        edge_telemetry::spans::ctr("replay_iterations", stats.replay_iterations);
        edge_telemetry::spans::ctr("prefix_iterations", stats.prefix_iterations);
        edge_telemetry::spans::ctr("pop_best_scans", stats.heap.scans - selection_scans);
        edge_telemetry::spans::diag("lane_head_reads", stats.heap.head_reads - selection_reads);
    }
    drop(pricing_span);

    let social_cost: Price = winners.iter().map(|w| w.price).sum();
    let total_payment: Price = winners.iter().map(|w| w.payment).sum();
    let certificate = build_certificate(&winners, demand, social_cost);

    // The deterministic `ssam.stats` event carries only knob-invariant
    // counters (proven identical across engines, shard counts, batch
    // sizes, and thread pools by the differential suite — which now
    // byte-compares full traces). The engine-dependent heap/lane
    // traffic moves to the `ssam.engine` profile entry below.
    trace.emit_with(Level::Debug, "ssam.stats", || {
        vec![
            ("payment_replays", Value::from(stats.payment_replays)),
            ("replay_iterations", Value::from(stats.replay_iterations)),
            (
                "replay_prefix_iterations",
                Value::from(stats.prefix_iterations),
            ),
            ("pop_best_scans", Value::from(stats.heap.scans)),
        ]
    });
    trace.profile_with("ssam.engine", || {
        vec![
            (
                "engine",
                Value::from(if arena.is_some() { "arena" } else { "heap" }),
            ),
            ("lanes", Value::from(lanes)),
            ("heap_pops", Value::from(stats.heap.pops)),
            ("heap_repushes", Value::from(stats.heap.repushes)),
            ("sold_discards", Value::from(stats.heap.sold_discards)),
            ("unsafe_discards", Value::from(stats.heap.unsafe_discards)),
            ("lane_head_reads", Value::from(stats.heap.head_reads)),
        ]
    });
    trace.emit_with(Level::Info, "ssam.end", || {
        vec![
            ("winners", Value::from(winners.len())),
            ("social_cost", Value::from(social_cost.value())),
            ("total_payment", Value::from(total_payment.value())),
            ("pi", Value::from(certificate.pi)),
            ("xi", Value::from(certificate.xi)),
            ("dual_objective", Value::from(certificate.dual_objective)),
        ]
    });

    Ok(SsamOutcome {
        winners,
        demand,
        social_cost,
        total_payment,
        certificate,
    })
}

/// One slot in the lazy-deletion heap: a candidate bid with the greedy
/// key it had when (re-)pushed and the generation at which that key was
/// computed. Stale slots (older generation) are detected at pop time and
/// re-pushed with a recomputed key; slots of sold sellers are discarded.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    /// `∇/U` at push time — a lower bound on the current key, because
    /// keys only grow as `remaining` shrinks (see [`HeapGreedy`]).
    key: f64,
    /// Generation (number of completed sales) the key was computed at.
    gen: u64,
    seller: MicroserviceId,
    id: BidId,
    /// Index into [`HeapGreedy::bids`].
    idx: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    /// Reversed so `BinaryHeap` (a max-heap) pops the *minimum* of
    /// `(key, seller, id)` — the reference scan's exact tie-break, so
    /// heap and scan pick bit-identical winners.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.seller.cmp(&self.seller))
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Shared state of a greedy run: remaining demand, the max offer of
/// every still-unsold seller (for the feasibility "safety" filter), and
/// a lazy-deletion min-heap over the candidate bids keyed by `∇/U`.
///
/// A bid is *safe* iff selecting it leaves the residual demand coverable
/// by the other unsold sellers' best offers. Every seller's max-amount
/// bid is always safe while the invariant `Σ unsold max ≥ remaining`
/// holds, so a safe candidate always exists and the greedy never strands
/// demand — a necessary strengthening of the paper's line 4 (picking a
/// seller's small cheap bid when feasibility depended on its large bid
/// would otherwise dead-end).
///
/// Two monotonicity facts make the lazy heap sound (proved in
/// `DESIGN.md`):
///
/// * **Keys only grow.** `∇/U = price / min(amount, remaining)` is
///   nondecreasing as `remaining` shrinks, so a stored key is always a
///   lower bound on the current key and a popped entry whose key is
///   still current is the true minimum.
/// * **Once unsafe, always unsafe.** Safety is `amount ≥ remaining −
///   rest_supply`, and `remaining − rest_supply(seller)` never
///   decreases across sales (each sale removes at least as much supply
///   as demand). An unsafe pop can therefore be dropped permanently
///   instead of re-scanned every iteration.
#[derive(Debug)]
struct HeapGreedy<'a> {
    bids: Vec<&'a crate::bid::Bid>,
    heap: std::collections::BinaryHeap<HeapEntry>,
    remaining: u64,
    seller_max: std::collections::BTreeMap<MicroserviceId, u64>,
    total_max: u64,
    /// A "phantom" seller counted in the supply but excluded from
    /// selection — used when replaying a run without one seller to keep
    /// the replay's safety decisions identical to the real run's.
    phantom: u64,
    /// Completed sales; bumps invalidate stored heap keys.
    gen: u64,
    /// Heap-traffic counters (cheap unconditional increments; only
    /// surfaced when tracing).
    stats: HeapStats,
}

impl<'a> HeapGreedy<'a> {
    fn new(bids: Vec<&'a crate::bid::Bid>, demand: u64, phantom: u64) -> Self {
        let mut seller_max = std::collections::BTreeMap::new();
        for b in &bids {
            let e = seller_max.entry(b.seller).or_insert(0u64);
            *e = (*e).max(b.amount);
        }
        let total_max = seller_max.values().sum::<u64>() + phantom;
        let entries: Vec<HeapEntry> = bids
            .iter()
            .enumerate()
            .map(|(idx, b)| HeapEntry {
                key: ratio(b.price, b.amount, demand),
                gen: 0,
                seller: b.seller,
                id: b.id,
                idx,
            })
            .collect();
        HeapGreedy {
            bids,
            heap: std::collections::BinaryHeap::from(entries),
            remaining: demand,
            seller_max,
            total_max,
            phantom,
            gen: 0,
            stats: HeapStats::default(),
        }
    }

    /// Supply of unsold sellers other than `seller` (phantom included).
    fn rest_supply(&self, seller: MicroserviceId) -> u64 {
        self.total_max - self.seller_max.get(&seller).copied().unwrap_or(0)
    }

    fn is_safe(&self, b: &crate::bid::Bid) -> bool {
        contribution(b.amount, self.remaining) + self.rest_supply(b.seller) >= self.remaining
    }

    /// Whether the phantom seller could safely win `amount` units here.
    fn phantom_safe(&self, amount: u64) -> bool {
        contribution(amount, self.remaining) + (self.total_max - self.phantom) >= self.remaining
    }

    /// The safe bid minimizing `∇/U` — pop-validate loop of the lazy
    /// heap. Each pop either settles a bid for good (winner, sold-seller
    /// discard, or permanent unsafe discard) or re-pushes it with a
    /// recomputed key; a bid is re-pushed at most once per generation.
    fn pop_best_safe(&mut self) -> Option<&'a crate::bid::Bid> {
        self.stats.scans += 1;
        while let Some(entry) = self.heap.pop() {
            self.stats.pops += 1;
            if !self.seller_max.contains_key(&entry.seller) {
                self.stats.sold_discards += 1;
                continue; // seller already sold — lazily deleted
            }
            let bid = self.bids[entry.idx];
            if entry.gen != self.gen {
                let key = ratio(bid.price, bid.amount, self.remaining);
                if key.total_cmp(&entry.key).is_ne() {
                    self.stats.repushes += 1;
                    self.heap.push(HeapEntry {
                        key,
                        gen: self.gen,
                        ..entry
                    });
                    continue;
                }
            }
            if !self.is_safe(bid) {
                self.stats.unsafe_discards += 1;
                continue; // once unsafe, always unsafe — drop permanently
            }
            return Some(bid);
        }
        None
    }

    /// Accepts a bid: consume demand, release the seller's supply entry
    /// (its other bids die lazily in the heap), invalidate stored keys.
    fn sell(&mut self, winner: &crate::bid::Bid) -> u64 {
        let c = contribution(winner.amount, self.remaining);
        self.remaining -= c;
        self.total_max -= self.seller_max.remove(&winner.seller).unwrap_or(0);
        self.gen += 1;
        c
    }
}

/// The greedy winner selection of Algorithm 1 (lines 3–12): repeatedly
/// accept the safe bid minimizing `∇/U`, then drop the winner's other
/// bids. Returns `(bid, contribution)` pairs in selection order.
fn greedy_select(
    candidates: Vec<&crate::bid::Bid>,
    demand: u64,
    stats: &mut HeapStats,
) -> Vec<(crate::bid::Bid, u64)> {
    let mut state = HeapGreedy::new(candidates, demand, 0);
    let mut selection = Vec::new();
    while state.remaining > 0 {
        let winner = *state
            .pop_best_safe()
            .expect("a safe bid exists while the feasibility invariant holds");
        let c = state.sell(&winner);
        selection.push((winner, c));
    }
    stats.absorb(state.stats);
    selection
}

/// Cursor snapshots are taken every this many selections; a payment
/// replay forks from the latest snapshot at or before its winner's
/// position. The stride trades snapshot memory (`W/16 × lanes` u32s)
/// against at most 15 extra query-time skips per replay. Crucially the
/// snapshot a replay forks from depends only on its winner's *position*
/// — never on how replays are batched over workers — so batch size
/// cannot change traces or stats.
const SNAPSHOT_STRIDE: usize = 16;

/// The greedy winner selection on the SoA lane arena — the same argmin
/// sequence as [`greedy_select`] (both implement `pop_best_safe`'s
/// functional contract), plus periodic cursor snapshots for the payment
/// replays to fork from.
fn greedy_select_arena(
    arena: &crate::arena::BidArena,
    table: &crate::arena::SellerTable,
    candidates: &[&crate::bid::Bid],
    demand: u64,
    stats: &mut HeapStats,
) -> (Vec<(crate::bid::Bid, u64)>, Vec<Vec<u32>>) {
    let mut cursors = arena.initial_cursors();
    let mut snapshots: Vec<Vec<u32>> = Vec::new();
    let mut sold = vec![false; table.len()];
    let mut total_max = table.total_max();
    let mut remaining = demand;
    let mut selection: Vec<(crate::bid::Bid, u64)> = Vec::new();
    while remaining > 0 {
        if selection.len().is_multiple_of(SNAPSHOT_STRIDE) {
            snapshots.push(cursors.clone());
        }
        let (rem, tm) = (remaining, total_max);
        let pick = arena
            .pop_best(
                &mut cursors,
                rem,
                stats,
                |s| sold[s as usize],
                |a, s| contribution(a, rem) + (tm - table.max_of(s)) >= rem,
            )
            .expect("a safe bid exists while the feasibility invariant holds");
        let winner = *candidates[pick.cand as usize];
        let c = contribution(winner.amount, remaining);
        remaining -= c;
        total_max -= table.max_of(pick.slot);
        sold[pick.slot as usize] = true;
        arena.consume(&mut cursors, &pick);
        selection.push((winner, c));
    }
    (selection, snapshots)
}

/// All winners' payment replays on the arena, batched over the pricing
/// pool. Each batch is one work unit sharing a cursor scratch buffer
/// and a per-batch epoch array (replay-local "sold" marks, cleared by
/// epoch id instead of refilling); each *winner* still forks from the
/// snapshot determined by its own position, so results, traces, and
/// stats are byte-identical at any batch size and thread count —
/// `--replay-batch 1` is the per-winner oracle the differential suite
/// compares against.
fn batched_replays(
    arena: &crate::arena::BidArena,
    table: &crate::arena::SellerTable,
    selection: &[(crate::bid::Bid, u64)],
    prefix: &[PrefixStep],
    position: &std::collections::BTreeMap<MicroserviceId, usize>,
    snapshots: &[Vec<u32>],
) -> Vec<ReplayOutcome> {
    let winners = selection.len();
    if winners == 0 {
        return Vec::new();
    }
    let mut position_by_slot = vec![u32::MAX; table.len()];
    for (s, &p) in position {
        position_by_slot[table.slot_of(*s) as usize] = p as u32;
    }
    let batch =
        crate::pricing::effective_replay_batch(winners, crate::pricing::current_pricing_threads());
    let n_batches = winners.div_ceil(batch);
    let unit_cost = crate::pricing::replay_cost_estimate_ns().saturating_mul(batch as u64);
    // Batch geometry depends on the thread knob — profile side only.
    if edge_telemetry::spans::is_enabled() {
        edge_telemetry::spans::diag_set("replay_batch", batch as u64);
        edge_telemetry::spans::diag_set("replay_batches", n_batches as u64);
    }
    let batched: Vec<Vec<ReplayOutcome>> =
        crate::pricing::fan_out_weighted(n_batches, unit_cost, |bi| {
            let lo = bi * batch;
            let hi = (lo + batch).min(winners);
            let mut work = arena.initial_cursors();
            let mut epoch = vec![0u32; table.len()];
            (lo..hi)
                .map(|p| {
                    let (winner, _) = &selection[p];
                    let w_slot = table.slot_of(winner.seller);
                    work.copy_from_slice(&snapshots[p / SNAPSHOT_STRIDE]);
                    replay_payment_arena(
                        arena,
                        table,
                        prefix,
                        &position_by_slot,
                        p,
                        w_slot,
                        winner.amount,
                        table.max_of(w_slot),
                        &mut work,
                        &mut epoch,
                        (p - lo) as u32 + 1,
                    )
                })
                .collect()
        });
    batched.into_iter().flatten().collect()
}

/// [`replay_payment`] on the arena: identical prefix arithmetic, and a
/// suffix that forks from a selection-time cursor snapshot instead of
/// rebuilding a heap. Sellers sold before position `p` (or the excluded
/// winner, or sellers sold *within this replay* — marked via `epoch`)
/// are skipped at query time, which is exactly the lazy-deletion heap's
/// candidate set, so thresholds and [`CriticalSource`] provenance are
/// bit-identical.
#[allow(clippy::too_many_arguments)]
fn replay_payment_arena(
    arena: &crate::arena::BidArena,
    table: &crate::arena::SellerTable,
    prefix: &[PrefixStep],
    position_by_slot: &[u32],
    p: usize,
    winner_slot: u32,
    amount: u64,
    phantom: u64,
    work: &mut [u32],
    epoch: &mut [u32],
    epoch_id: u32,
) -> ReplayOutcome {
    let mut threshold = 0.0f64;
    let mut source: Option<CriticalSource> = None;
    for (k, step) in prefix.iter().take(p).enumerate() {
        let c = contribution(amount, step.remaining);
        if c + (step.total_max - phantom) >= step.remaining {
            let candidate = step.unit_price * c as f64;
            if candidate > threshold {
                threshold = candidate;
                source = Some(CriticalSource {
                    seller: step.seller,
                    bid: step.bid,
                    iteration: k as u64,
                    unit_price: step.unit_price,
                    contribution: c,
                });
            }
        }
    }
    // Suffix from the fork state: the real run's remaining and
    // total_max entering iteration `p` (the phantom convention makes
    // `prefix[p].total_max` equal the legacy suffix heap's total).
    let mut heap = HeapStats::default();
    let mut remaining = prefix[p].remaining;
    let mut total_max = prefix[p].total_max;
    let mut iteration = p as u64;
    let p32 = p as u32;
    while remaining > 0 {
        let (rem, tm) = (remaining, total_max);
        let pick = arena.pop_best(
            work,
            rem,
            &mut heap,
            |s| {
                s == winner_slot
                    || position_by_slot[s as usize] < p32
                    || epoch[s as usize] == epoch_id
            },
            |a, s| contribution(a, rem) + (tm - table.max_of(s)) >= rem,
        );
        let Some(pick) = pick else {
            return ReplayOutcome {
                threshold: None,
                heap,
                iterations: iteration,
                prefix_iterations: p as u64,
            };
        };
        // `pick.key` is `r_k = price / min(amount, remaining)`, computed
        // with the same operations as `ratio` — same bits.
        if contribution(amount, rem) + (tm - phantom) >= rem {
            let candidate = pick.key * contribution(amount, rem) as f64;
            if candidate > threshold {
                threshold = candidate;
                source = Some(CriticalSource {
                    seller: table.id_of(pick.slot),
                    bid: BidId::new(pick.bid as usize),
                    iteration,
                    unit_price: pick.key,
                    contribution: contribution(amount, rem),
                });
            }
        }
        epoch[pick.slot as usize] = epoch_id;
        total_max -= table.max_of(pick.slot);
        remaining -= contribution(pick.amount, rem);
        arena.consume(work, &pick);
        iteration += 1;
    }
    ReplayOutcome {
        threshold: Some((threshold, source)),
        heap,
        iterations: iteration,
        prefix_iterations: p as u64,
    }
}

/// One iteration of the real greedy run, snapshotted so payment replays
/// can answer their shared prefix in O(1) per step instead of repeating
/// the heap work (see [`replay_payment`]).
#[derive(Debug, Clone, Copy)]
struct PrefixStep {
    /// The seller selected at this iteration of the real run.
    seller: MicroserviceId,
    /// Its winning bid.
    bid: BidId,
    /// Its greedy key `r_k = ∇/U` at this iteration.
    unit_price: f64,
    /// Uncovered demand entering this iteration.
    remaining: u64,
    /// Σ unsold sellers' max offers entering this iteration.
    total_max: u64,
}

/// Snapshots the real run's per-iteration state (`PrefixStep`s in
/// selection order) and each winning seller's selection position.
fn build_prefix(
    selection: &[(crate::bid::Bid, u64)],
    demand: u64,
    supply: u64,
    per_seller_best: &std::collections::BTreeMap<MicroserviceId, u64>,
) -> (
    Vec<PrefixStep>,
    std::collections::BTreeMap<MicroserviceId, usize>,
) {
    let mut prefix = Vec::with_capacity(selection.len());
    let mut position = std::collections::BTreeMap::new();
    let mut remaining = demand;
    let mut total_max = supply;
    for (p, (winner, c)) in selection.iter().enumerate() {
        prefix.push(PrefixStep {
            seller: winner.seller,
            bid: winner.id,
            unit_price: ratio(winner.price, winner.amount, remaining),
            remaining,
            total_max,
        });
        position.insert(winner.seller, p);
        remaining -= c;
        total_max -= per_seller_best.get(&winner.seller).copied().unwrap_or(0);
    }
    (prefix, position)
}

/// What one worker hands back from a payment replay: pure data, merged
/// into the trace and outcome on the calling thread in winner order.
#[derive(Debug, Clone, Copy)]
struct ReplayOutcome {
    /// `Some((threshold, provenance))`, or `None` when the excluded
    /// seller is pivotal (the replay got stuck).
    threshold: Option<(f64, Option<CriticalSource>)>,
    /// Heap traffic of the suffix replay.
    heap: HeapStats,
    /// Iterations this replay advanced through in total.
    iterations: u64,
    /// Of those, iterations answered from the shared prefix.
    prefix_iterations: u64,
}

/// The critical value of the winner at selection position `p`, computed
/// as [`critical_threshold`] would but without re-running the prefix:
///
/// * **Prefix (`k < p`)** — before the excluded seller's first win the
///   replay visits exactly the real run's states (the phantom preserves
///   every safety decision and `total_max`), so iteration `k`'s
///   candidate value and phantom-safety test are evaluated directly on
///   the precomputed [`PrefixStep`] — identical arithmetic on identical
///   bits, no heap.
/// * **Suffix (`k ≥ p`)** — a fresh [`HeapGreedy`] over the candidates
///   still unsold at `p` (minus the excluded seller), seeded with the
///   real run's `remaining_p`. Pop outcomes of the lazy-deletion heap
///   depend only on `(bids, remaining, seller_max)` — not on how the
///   heap got there — so the suffix selects bit-identical winners to a
///   full replay's tail (DESIGN.md §11). Iteration numbering continues
///   at `p`, keeping [`CriticalSource`] provenance byte-identical.
fn replay_payment(
    candidates: &[&crate::bid::Bid],
    prefix: &[PrefixStep],
    position: &std::collections::BTreeMap<MicroserviceId, usize>,
    p: usize,
    winner: &crate::bid::Bid,
    phantom: u64,
) -> ReplayOutcome {
    let amount = winner.amount;
    let mut threshold = 0.0f64;
    let mut source: Option<CriticalSource> = None;
    for (k, step) in prefix.iter().take(p).enumerate() {
        let c = contribution(amount, step.remaining);
        // `phantom_safe` against the real run's state: the replay's
        // total_max at step k equals the real run's (phantom included).
        if c + (step.total_max - phantom) >= step.remaining {
            let candidate = step.unit_price * c as f64;
            if candidate > threshold {
                threshold = candidate;
                source = Some(CriticalSource {
                    seller: step.seller,
                    bid: step.bid,
                    iteration: k as u64,
                    unit_price: step.unit_price,
                    contribution: c,
                });
            }
        }
    }
    // The replay can only get stuck in the suffix: at every prefix step
    // the real run's winner is still available and safe.
    let suffix: Vec<&crate::bid::Bid> = candidates
        .iter()
        .copied()
        .filter(|b| b.seller != winner.seller && position.get(&b.seller).is_none_or(|&q| q >= p))
        .collect();
    let mut state = HeapGreedy::new(suffix, prefix[p].remaining, phantom);
    let mut iteration = p as u64;
    while state.remaining > 0 {
        let best = match state.pop_best_safe() {
            Some(b) => b,
            None => {
                return ReplayOutcome {
                    threshold: None,
                    heap: state.stats,
                    iterations: iteration,
                    prefix_iterations: p as u64,
                };
            }
        };
        let r_k = ratio(best.price, best.amount, state.remaining);
        if state.phantom_safe(amount) {
            let candidate = r_k * contribution(amount, state.remaining) as f64;
            if candidate > threshold {
                threshold = candidate;
                source = Some(CriticalSource {
                    seller: best.seller,
                    bid: best.id,
                    iteration,
                    unit_price: r_k,
                    contribution: contribution(amount, state.remaining),
                });
            }
        }
        state.sell(best);
        iteration += 1;
    }
    ReplayOutcome {
        threshold: Some((threshold, source)),
        heap: state.stats,
        iterations: iteration,
        prefix_iterations: p as u64,
    }
}

/// Replays the greedy run with one seller excluded from selection (but
/// its best offer kept as phantom supply, so safety decisions match the
/// real run's) and returns that seller's critical value for a bid of
/// `amount` units: `max_k r_k · min(amount, remaining_k)` over the
/// iterations where the bid would have been safe — together with the
/// [`CriticalSource`] describing which runner-up iteration attained the
/// max (provenance for the audit trail).
///
/// Returns `None` when the replay gets stuck — the excluded seller is
/// then pivotal and wins at any price.
///
/// This is the *full* replay, starting from the initial state; the hot
/// path uses [`replay_payment`] (shared prefix + suffix heap), and the
/// differential suite checks the two agree bit-for-bit — so the full
/// version is only compiled as part of the reference oracle.
#[cfg(feature = "ssam-reference")]
fn critical_threshold(
    others: Vec<&crate::bid::Bid>,
    demand: u64,
    amount: u64,
    phantom: u64,
    stats: &mut HeapStats,
) -> Option<(f64, Option<CriticalSource>)> {
    let mut state = HeapGreedy::new(others, demand, phantom);
    let mut threshold = 0.0f64;
    let mut source: Option<CriticalSource> = None;
    let mut iteration = 0u64;
    while state.remaining > 0 {
        let best = match state.pop_best_safe() {
            Some(b) => b,
            None => {
                stats.absorb(state.stats);
                return None;
            }
        };
        let r_k = ratio(best.price, best.amount, state.remaining);
        if state.phantom_safe(amount) {
            // `candidate > threshold` tracks the argmax of the original
            // `threshold.max(candidate)` exactly (both operands finite,
            // ties keep the earlier iteration).
            let candidate = r_k * contribution(amount, state.remaining) as f64;
            if candidate > threshold {
                threshold = candidate;
                source = Some(CriticalSource {
                    seller: best.seller,
                    bid: best.id,
                    iteration,
                    unit_price: r_k,
                    contribution: contribution(amount, state.remaining),
                });
            }
        }
        state.sell(best);
        iteration += 1;
    }
    stats.absorb(state.stats);
    Some((threshold, source))
}

/// Builds the Theorem 3 certificate from the assigned unit prices.
fn build_certificate(winners: &[WinningBid], demand: u64, social_cost: Price) -> RatioCertificate {
    if demand == 0 || winners.is_empty() {
        return RatioCertificate {
            harmonic: 0.0,
            xi: 1.0,
            pi: 1.0,
            dual_objective: 0.0,
        };
    }
    let harmonic: f64 = (1..=demand).map(|k| 1.0 / k as f64).sum();
    let unit_prices: Vec<f64> = winners
        .iter()
        .map(WinningBid::assigned_unit_price)
        .collect();
    let max_u = unit_prices.iter().copied().fold(f64::MIN, f64::max);
    let min_u = unit_prices.iter().copied().fold(f64::MAX, f64::min);
    let xi = if min_u > 0.0 { max_u / min_u } else { 1.0 };
    let pi = (harmonic * xi).max(1.0);
    RatioCertificate {
        harmonic,
        xi,
        pi,
        dual_objective: social_cost.value() / pi,
    }
}

/// The seed's scan-based SSAM, kept verbatim as a differential oracle
/// for the heap-based hot path (feature `ssam-reference`, on by
/// default). Selection re-scans every candidate each iteration — O(n²)
/// — which makes it slow but easy to audit; `run_ssam_reference` must
/// return **bit-identical** outcomes to [`run_ssam`] on every instance
/// (`tests/differential_ssam.rs` enforces this over randomized cases).
#[cfg(feature = "ssam-reference")]
pub mod reference {
    use super::*;

    /// Scan-based greedy state — the original implementation.
    #[derive(Debug)]
    struct ScanGreedy<'a> {
        candidates: Vec<&'a crate::bid::Bid>,
        remaining: u64,
        seller_max: std::collections::BTreeMap<MicroserviceId, u64>,
        total_max: u64,
        phantom: u64,
    }

    impl<'a> ScanGreedy<'a> {
        fn new(candidates: Vec<&'a crate::bid::Bid>, demand: u64, phantom: u64) -> Self {
            let mut seller_max = std::collections::BTreeMap::new();
            for b in &candidates {
                let e = seller_max.entry(b.seller).or_insert(0u64);
                *e = (*e).max(b.amount);
            }
            let total_max = seller_max.values().sum::<u64>() + phantom;
            ScanGreedy {
                candidates,
                remaining: demand,
                seller_max,
                total_max,
                phantom,
            }
        }

        fn rest_supply(&self, seller: MicroserviceId) -> u64 {
            self.total_max - self.seller_max.get(&seller).copied().unwrap_or(0)
        }

        fn is_safe(&self, b: &crate::bid::Bid) -> bool {
            contribution(b.amount, self.remaining) + self.rest_supply(b.seller) >= self.remaining
        }

        fn phantom_safe(&self, amount: u64) -> bool {
            contribution(amount, self.remaining) + (self.total_max - self.phantom) >= self.remaining
        }

        fn best_safe(&self) -> Option<&'a crate::bid::Bid> {
            let remaining = self.remaining;
            self.candidates
                .iter()
                .filter(|b| self.is_safe(b))
                .min_by(|a, b| {
                    ratio(a.price, a.amount, remaining)
                        .total_cmp(&ratio(b.price, b.amount, remaining))
                        .then(a.seller.cmp(&b.seller))
                        .then(a.id.cmp(&b.id))
                })
                .copied()
        }

        fn sell(&mut self, winner: &crate::bid::Bid) -> u64 {
            let c = contribution(winner.amount, self.remaining);
            self.remaining -= c;
            self.total_max -= self.seller_max.remove(&winner.seller).unwrap_or(0);
            self.candidates.retain(|b| b.seller != winner.seller);
            c
        }
    }

    fn greedy_select_scan(
        candidates: Vec<&crate::bid::Bid>,
        demand: u64,
    ) -> Vec<(crate::bid::Bid, u64)> {
        let mut state = ScanGreedy::new(candidates, demand, 0);
        let mut selection = Vec::new();
        while state.remaining > 0 {
            let winner = *state
                .best_safe()
                .expect("a safe bid exists while the feasibility invariant holds");
            let c = state.sell(&winner);
            selection.push((winner, c));
        }
        selection
    }

    fn critical_threshold_scan(
        others: Vec<&crate::bid::Bid>,
        demand: u64,
        amount: u64,
        phantom: u64,
    ) -> Option<f64> {
        let mut state = ScanGreedy::new(others, demand, phantom);
        let mut threshold = 0.0f64;
        while state.remaining > 0 {
            let best = *state.best_safe()?;
            let r_k = ratio(best.price, best.amount, state.remaining);
            if state.phantom_safe(amount) {
                threshold = threshold.max(r_k * contribution(amount, state.remaining) as f64);
            }
            state.sell(&best);
        }
        Some(threshold)
    }

    /// Runs Algorithm 1 with the original O(n²) scan selection.
    ///
    /// # Errors
    ///
    /// Exactly as [`run_ssam`]: infeasible demand under the reserve
    /// filter.
    pub fn run_ssam_reference(
        instance: &WspInstance,
        config: &SsamConfig,
    ) -> Result<SsamOutcome, AuctionError> {
        let candidates: Vec<&crate::bid::Bid> = instance
            .bids()
            .filter(|b| match config.reserve_unit_price {
                Some(r) => b.unit_price() <= r,
                None => true,
            })
            .collect();

        let mut per_seller_best: std::collections::BTreeMap<MicroserviceId, u64> =
            std::collections::BTreeMap::new();
        for b in &candidates {
            let e = per_seller_best.entry(b.seller).or_insert(0);
            *e = (*e).max(b.amount);
        }
        let supply: u64 = per_seller_best.values().sum();
        if supply < instance.demand() {
            return Err(AuctionError::InfeasibleDemand {
                demand: instance.demand(),
                supply,
            });
        }

        let demand = instance.demand();
        let selection = greedy_select_scan(candidates.clone(), demand);

        let mut winners: Vec<WinningBid> = Vec::with_capacity(selection.len());
        for (winner, c) in &selection {
            let without: Vec<&crate::bid::Bid> = candidates
                .iter()
                .copied()
                .filter(|b| b.seller != winner.seller)
                .collect();
            let phantom = candidates
                .iter()
                .filter(|b| b.seller == winner.seller)
                .map(|b| b.amount)
                .max()
                .unwrap_or(0);
            let threshold = critical_threshold_scan(without, demand, winner.amount, phantom);
            let payment_value = match threshold {
                Some(v) => v,
                None => config
                    .reserve_unit_price
                    .map(|r| r * winner.amount as f64)
                    .unwrap_or(winner.price.value())
                    .max(winner.price.value()),
            };
            winners.push(WinningBid {
                seller: winner.seller,
                bid: winner.id,
                amount_offered: winner.amount,
                contribution: *c,
                price: winner.price,
                payment: Price::new_unchecked(payment_value),
            });
        }

        let social_cost: Price = winners.iter().map(|w| w.price).sum();
        let total_payment: Price = winners.iter().map(|w| w.payment).sum();
        let certificate = build_certificate(&winners, demand, social_cost);

        Ok(SsamOutcome {
            winners,
            demand,
            social_cost,
            total_payment,
            certificate,
        })
    }

    /// Critical thresholds by *full* heap replay — each winner priced by
    /// replaying from the initial state, no shared prefix. One entry per
    /// winner in selection order, with the same `(threshold, provenance)`
    /// shape the hot path computes; the differential suite asserts
    /// bit-identity against the shared-prefix replays, provenance
    /// included.
    ///
    /// # Errors
    ///
    /// Exactly as [`run_ssam`]: infeasible demand under the reserve
    /// filter.
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn critical_thresholds_full(
        instance: &WspInstance,
        config: &SsamConfig,
    ) -> Result<Vec<Option<(f64, Option<CriticalSource>)>>, AuctionError> {
        let candidates: Vec<&crate::bid::Bid> = instance
            .bids()
            .filter(|b| match config.reserve_unit_price {
                Some(r) => b.unit_price() <= r,
                None => true,
            })
            .collect();
        let mut per_seller_best: std::collections::BTreeMap<MicroserviceId, u64> =
            std::collections::BTreeMap::new();
        for b in &candidates {
            let e = per_seller_best.entry(b.seller).or_insert(0);
            *e = (*e).max(b.amount);
        }
        let supply: u64 = per_seller_best.values().sum();
        if supply < instance.demand() {
            return Err(AuctionError::InfeasibleDemand {
                demand: instance.demand(),
                supply,
            });
        }

        let demand = instance.demand();
        let mut stats = HeapStats::default();
        let selection = greedy_select(candidates.clone(), demand, &mut stats);
        let mut thresholds = Vec::with_capacity(selection.len());
        for (winner, _) in &selection {
            let without: Vec<&crate::bid::Bid> = candidates
                .iter()
                .copied()
                .filter(|b| b.seller != winner.seller)
                .collect();
            let phantom = per_seller_best.get(&winner.seller).copied().unwrap_or(0);
            thresholds.push(critical_threshold(
                without,
                demand,
                winner.amount,
                phantom,
                &mut stats,
            ));
        }
        Ok(thresholds)
    }
}

#[cfg(feature = "ssam-reference")]
pub use reference::run_ssam_reference;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Bid;
    use edge_common::assert_money_eq;

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn inst(demand: u64, bids: Vec<Bid>) -> WspInstance {
        WspInstance::new(demand, bids).unwrap()
    }

    #[test]
    fn greedy_picks_lowest_unit_price_first() {
        // Seller 0: $2/u; seller 1: $3/u; demand 3 needs both.
        let outcome = run_ssam(
            &inst(3, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]),
            &SsamConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.winners.len(), 2);
        assert_eq!(outcome.winners[0].seller, MicroserviceId::new(0));
        assert_eq!(outcome.winners[0].contribution, 2);
        assert_eq!(outcome.winners[1].seller, MicroserviceId::new(1));
        assert_eq!(outcome.winners[1].contribution, 1);
        assert_money_eq!(outcome.social_cost, 10.0);
    }

    #[test]
    fn payment_is_runner_up_unit_price_times_contribution() {
        let outcome = run_ssam(
            &inst(2, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]),
            &SsamConfig::default(),
        )
        .unwrap();
        // Winner: seller 0 at $2/u covering 2; runner-up: seller 1 at
        // $3/u. Payment = 2 × 3 = $6.
        assert_eq!(outcome.winners.len(), 1);
        let w = &outcome.winners[0];
        assert_eq!(w.seller, MicroserviceId::new(0));
        assert_money_eq!(w.payment, 6.0);
        assert!(w.payment >= w.price);
    }

    #[test]
    fn individual_rationality_holds() {
        let outcome = run_ssam(
            &inst(
                6,
                vec![
                    bid(0, 0, 3, 9.0),
                    bid(0, 1, 1, 2.0),
                    bid(1, 0, 2, 5.0),
                    bid(2, 0, 4, 14.0),
                    bid(3, 0, 2, 8.0),
                ],
            ),
            &SsamConfig::default(),
        )
        .unwrap();
        for w in &outcome.winners {
            assert!(w.payment >= w.price, "IR violated for {:?}", w);
        }
        assert!(outcome.total_payment >= outcome.social_cost);
    }

    #[test]
    fn at_most_one_bid_per_seller_wins() {
        let outcome = run_ssam(
            &inst(
                5,
                vec![
                    bid(0, 0, 2, 2.0),
                    bid(0, 1, 3, 3.5),
                    bid(1, 0, 3, 6.0),
                    bid(2, 0, 3, 9.0),
                ],
            ),
            &SsamConfig::default(),
        )
        .unwrap();
        let mut sellers: Vec<_> = outcome.winners.iter().map(|w| w.seller).collect();
        sellers.sort();
        sellers.dedup();
        assert_eq!(sellers.len(), outcome.winners.len(), "a seller won twice");
    }

    #[test]
    fn demand_is_exactly_covered() {
        let outcome = run_ssam(
            &inst(
                7,
                vec![bid(0, 0, 5, 10.0), bid(1, 0, 5, 11.0), bid(2, 0, 5, 12.0)],
            ),
            &SsamConfig::default(),
        )
        .unwrap();
        let covered: u64 = outcome.winners.iter().map(|w| w.contribution).sum();
        assert_eq!(covered, 7);
        // The second winner's contribution is clipped to the remainder.
        assert_eq!(outcome.winners[1].contribution, 2);
    }

    #[test]
    fn zero_demand_trivial_outcome() {
        let outcome = run_ssam(&inst(0, vec![bid(0, 0, 1, 1.0)]), &SsamConfig::default()).unwrap();
        assert!(outcome.winners.is_empty());
        assert_eq!(outcome.social_cost, Price::ZERO);
        assert_eq!(outcome.certificate.dual_objective, 0.0);
    }

    #[test]
    fn lone_seller_without_reserve_is_paid_its_price() {
        let outcome = run_ssam(&inst(2, vec![bid(0, 0, 3, 6.0)]), &SsamConfig::default()).unwrap();
        let w = &outcome.winners[0];
        // A monopolist has no finite threshold; without a reserve it is
        // paid exactly its asking price.
        assert_eq!(w.contribution, 2);
        assert_money_eq!(w.payment, 6.0);
    }

    #[test]
    fn reserve_excludes_expensive_bids() {
        let config = SsamConfig {
            reserve_unit_price: Some(2.5),
        };
        // Seller 1 asks $3/u — above reserve, excluded; supply drops.
        let err = run_ssam(
            &inst(4, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]),
            &config,
        )
        .unwrap_err();
        assert_eq!(
            err,
            AuctionError::InfeasibleDemand {
                demand: 4,
                supply: 2
            }
        );
    }

    #[test]
    fn reserve_pays_lone_winner_the_reserve() {
        let config = SsamConfig {
            reserve_unit_price: Some(5.0),
        };
        let outcome = run_ssam(&inst(2, vec![bid(0, 0, 2, 4.0)]), &config).unwrap();
        let w = &outcome.winners[0];
        assert_money_eq!(w.payment, 10.0); // 2 units × $5 reserve
    }

    #[test]
    fn certificate_bounds_the_optimum() {
        let instance = inst(
            5,
            vec![
                bid(0, 0, 2, 7.0),
                bid(0, 1, 3, 8.0),
                bid(1, 0, 2, 4.0),
                bid(2, 0, 3, 12.0),
                bid(3, 0, 1, 2.0),
            ],
        );
        let outcome = run_ssam(&instance, &SsamConfig::default()).unwrap();
        let opt = instance.to_group_cover().solve_exact().unwrap().cost;
        let cert = &outcome.certificate;
        // Weak duality sandwich: dual ≤ OPT ≤ primal ≤ π · dual.
        assert!(
            cert.dual_objective <= opt + 1e-9,
            "dual {} > opt {opt}",
            cert.dual_objective
        );
        assert!(opt <= outcome.social_cost.value() + 1e-9);
        assert!(outcome.social_cost.value() <= cert.pi * cert.dual_objective + 1e-9);
    }

    #[test]
    fn single_bid_per_seller_certificate_uses_harmonic_only_when_uniform() {
        // All bids same unit price → Ξ = 1, π = H_X.
        let outcome = run_ssam(
            &inst(
                3,
                vec![bid(0, 0, 1, 2.0), bid(1, 0, 1, 2.0), bid(2, 0, 1, 2.0)],
            ),
            &SsamConfig::default(),
        )
        .unwrap();
        assert!((outcome.certificate.xi - 1.0).abs() < 1e-9);
        let h3 = 1.0 + 0.5 + 1.0 / 3.0;
        assert!((outcome.certificate.pi - h3).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_ties() {
        let bids = vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 4.0), bid(2, 0, 2, 4.0)];
        let a = run_ssam(&inst(4, bids.clone()), &SsamConfig::default()).unwrap();
        let b = run_ssam(&inst(4, bids), &SsamConfig::default()).unwrap();
        assert_eq!(a, b);
        // Ties break toward the lower seller id.
        assert_eq!(a.winners[0].seller, MicroserviceId::new(0));
        assert_eq!(a.winners[1].seller, MicroserviceId::new(1));
    }

    #[test]
    fn trace_records_runner_up_provenance() {
        use edge_telemetry::Collector;
        // Three sellers, demand 2: seller 0 ($2/u) wins alone; the
        // replay without it picks seller 1 ($3/u) — the runner-up that
        // must appear as the payment's source. Seller 2 ($5/u) never
        // prices anything.
        let collector = Collector::new();
        let outcome = run_ssam_traced(
            &inst(
                2,
                vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0), bid(2, 0, 2, 10.0)],
            ),
            &SsamConfig::default(),
            Trace::new(&collector),
        )
        .unwrap();
        assert_eq!(outcome.winners.len(), 1);
        let events = collector.events();
        let payment = events.iter().find(|e| e.name == "ssam.payment").unwrap();
        assert_eq!(
            payment.field("kind").and_then(Value::as_str),
            Some("runner_up")
        );
        assert_eq!(
            payment.field("source_seller").and_then(Value::as_f64),
            Some(1.0),
            "seller 1 is the runner-up that priced the winner"
        );
        // The recorded factors reproduce the payment exactly.
        let unit = payment
            .field("source_unit_price")
            .and_then(Value::as_f64)
            .unwrap();
        let contrib = payment
            .field("source_contribution")
            .and_then(Value::as_f64)
            .unwrap();
        let paid = payment.field("payment").and_then(Value::as_f64).unwrap();
        assert_eq!(unit * contrib, paid, "provenance must be exact, not ≈");
        assert_eq!(paid, outcome.winners[0].payment.value());
    }

    #[test]
    fn tracing_does_not_change_the_outcome() {
        use edge_telemetry::Collector;
        let instance = inst(
            6,
            vec![
                bid(0, 0, 3, 9.0),
                bid(0, 1, 1, 2.0),
                bid(1, 0, 2, 5.0),
                bid(2, 0, 4, 14.0),
                bid(3, 0, 2, 8.0),
            ],
        );
        let collector = Collector::new();
        let traced =
            run_ssam_traced(&instance, &SsamConfig::default(), Trace::new(&collector)).unwrap();
        let untraced = run_ssam(&instance, &SsamConfig::default()).unwrap();
        assert_eq!(traced, untraced);
        assert!(!collector.is_empty());
        // Deterministic stats event carries the engine-invariant scan
        // counter; engine traffic lives in the profile section.
        let stats = collector
            .events()
            .into_iter()
            .find(|e| e.name == "ssam.stats")
            .unwrap();
        assert!(
            stats
                .field("pop_best_scans")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
        let engine = collector
            .profile_entries()
            .into_iter()
            .find(|p| p.name == "ssam.engine")
            .unwrap();
        let pops = engine
            .fields
            .iter()
            .find(|(k, _)| *k == "heap_pops")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert!(pops > 0.0);
    }

    #[test]
    fn winner_lookup_helpers() {
        let outcome = run_ssam(
            &inst(2, vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0)]),
            &SsamConfig::default(),
        )
        .unwrap();
        assert!(outcome.is_winner(MicroserviceId::new(0)));
        assert!(!outcome.is_winner(MicroserviceId::new(1)));
        assert_eq!(
            outcome.winner_for(MicroserviceId::new(0)).unwrap().bid,
            BidId::new(0)
        );
    }
}
