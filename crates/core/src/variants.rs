//! The MSOA variants compared in Figure 5(a).
//!
//! * **MSOA** — the plain mechanism, auctioning the *estimated* demand.
//! * **MSOA-DA** — "with optimal demand estimation": the auction sees the
//!   ground-truth demand instead of the estimate.
//! * **MSOA-RC** — "with higher resource capacity values": every seller's
//!   long-run capacity `Θ_i` is multiplied by a relaxation factor.
//! * **MSOA-OA** — both adjustments at once.
//!
//! Each variant is a pure transformation of the instance followed by the
//! unmodified [`run_msoa`], so the comparison isolates exactly the knob
//! the paper describes.

use crate::bid::Seller;
use crate::error::AuctionError;
use crate::msoa::{run_msoa, MsoaConfig, MsoaOutcome, MultiRoundInstance, RoundInput};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which MSOA variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MsoaVariant {
    /// Plain MSOA on estimated demands.
    Plain,
    /// MSOA-DA: perfect demand estimation.
    DemandAware,
    /// MSOA-RC: capacities multiplied by the factor (must be ≥ 1).
    RelaxedCapacity {
        /// Capacity multiplier.
        factor: f64,
    },
    /// MSOA-OA: both perfect demand and relaxed capacity.
    Optimized {
        /// Capacity multiplier.
        factor: f64,
    },
}

impl fmt::Display for MsoaVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsoaVariant::Plain => write!(f, "MSOA"),
            MsoaVariant::DemandAware => write!(f, "MSOA-DA"),
            MsoaVariant::RelaxedCapacity { .. } => write!(f, "MSOA-RC"),
            MsoaVariant::Optimized { .. } => write!(f, "MSOA-OA"),
        }
    }
}

/// Transforms the instance per the variant's definition.
///
/// # Panics
///
/// Panics if a capacity factor is below 1 — the paper's RC/OA variants
/// only *raise* capacities.
pub fn transform_instance(
    instance: &MultiRoundInstance,
    variant: MsoaVariant,
) -> MultiRoundInstance {
    let (use_true_demand, factor) = match variant {
        MsoaVariant::Plain => (false, 1.0),
        MsoaVariant::DemandAware => (true, 1.0),
        MsoaVariant::RelaxedCapacity { factor } => (false, factor),
        MsoaVariant::Optimized { factor } => (true, factor),
    };
    assert!(factor >= 1.0, "capacity relaxation factor must be >= 1");

    let sellers: Vec<Seller> = instance
        .sellers()
        .iter()
        .map(|s| Seller {
            capacity: (s.capacity as f64 * factor).round() as u64,
            ..*s
        })
        .collect();
    let rounds: Vec<RoundInput> = instance
        .rounds()
        .iter()
        .map(|r| {
            let demand = if use_true_demand {
                r.true_demand
            } else {
                r.estimated_demand
            };
            RoundInput::new(demand, r.true_demand, r.bids.clone())
        })
        .collect();
    MultiRoundInstance::new(sellers, rounds).expect("transforming a valid instance keeps it valid")
}

/// Runs the chosen variant.
///
/// # Errors
///
/// Propagates [`run_msoa`] errors.
pub fn run_variant(
    instance: &MultiRoundInstance,
    config: &MsoaConfig,
    variant: MsoaVariant,
) -> Result<MsoaOutcome, AuctionError> {
    run_msoa(&transform_instance(instance, variant), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Bid;
    use edge_common::id::{BidId, MicroserviceId};

    fn instance() -> MultiRoundInstance {
        let sellers = vec![
            Seller::new(MicroserviceId::new(0), 4, (0, 2)).unwrap(),
            Seller::new(MicroserviceId::new(1), 4, (0, 2)).unwrap(),
        ];
        let rounds = (0..3)
            .map(|_| {
                RoundInput::new(
                    4, // over-estimated demand
                    3, // true demand
                    vec![
                        Bid::new(MicroserviceId::new(0), BidId::new(0), 2, 4.0).unwrap(),
                        Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 6.0).unwrap(),
                    ],
                )
            })
            .collect();
        MultiRoundInstance::new(sellers, rounds).unwrap()
    }

    #[test]
    fn demand_aware_uses_true_demand() {
        let t = transform_instance(&instance(), MsoaVariant::DemandAware);
        assert!(t.rounds().iter().all(|r| r.estimated_demand == 3));
        let plain = transform_instance(&instance(), MsoaVariant::Plain);
        assert!(plain.rounds().iter().all(|r| r.estimated_demand == 4));
    }

    #[test]
    fn relaxed_capacity_scales_thetas() {
        let t = transform_instance(&instance(), MsoaVariant::RelaxedCapacity { factor: 2.5 });
        assert!(t.sellers().iter().all(|s| s.capacity == 10));
        // Demands untouched.
        assert!(t.rounds().iter().all(|r| r.estimated_demand == 4));
    }

    #[test]
    fn optimized_applies_both() {
        let t = transform_instance(&instance(), MsoaVariant::Optimized { factor: 2.0 });
        assert!(t.sellers().iter().all(|s| s.capacity == 8));
        assert!(t.rounds().iter().all(|r| r.estimated_demand == 3));
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn shrinking_capacity_is_rejected() {
        transform_instance(&instance(), MsoaVariant::RelaxedCapacity { factor: 0.5 });
    }

    #[test]
    fn relaxed_capacity_unlocks_infeasible_rounds() {
        // Capacity 4 exhausts after two wins of 2 units; plain MSOA goes
        // infeasible by round 2 while RC keeps covering.
        let plain = run_variant(&instance(), &MsoaConfig::default(), MsoaVariant::Plain).unwrap();
        let rc = run_variant(
            &instance(),
            &MsoaConfig::default(),
            MsoaVariant::RelaxedCapacity { factor: 3.0 },
        )
        .unwrap();
        assert!(plain.infeasible_rounds().len() > rc.infeasible_rounds().len());
    }

    #[test]
    fn demand_aware_costs_no_more_than_overestimating_plain() {
        // With demand over-estimated (4 > 3), plain MSOA buys more than
        // needed each round; DA buys exactly the true demand.
        let plain = run_variant(&instance(), &MsoaConfig::default(), MsoaVariant::Plain).unwrap();
        let da = run_variant(
            &instance(),
            &MsoaConfig::default(),
            MsoaVariant::DemandAware,
        )
        .unwrap();
        assert!(da.social_cost <= plain.social_cost);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(MsoaVariant::Plain.to_string(), "MSOA");
        assert_eq!(MsoaVariant::DemandAware.to_string(), "MSOA-DA");
        assert_eq!(
            MsoaVariant::RelaxedCapacity { factor: 2.0 }.to_string(),
            "MSOA-RC"
        );
        assert_eq!(
            MsoaVariant::Optimized { factor: 2.0 }.to_string(),
            "MSOA-OA"
        );
    }
}
