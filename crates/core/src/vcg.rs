//! VCG payments on the exact winner selection — the classical yardstick.
//!
//! The Vickrey–Clarke–Groves mechanism solves the WSP *exactly* and pays
//! each winner its externality: `p_i = OPT(without i) − (OPT − price_i)`.
//! VCG is truthful and individually rational but needs the NP-hard
//! optimum twice per winner — exactly the computational cost the paper's
//! polynomial SSAM avoids. This module implements VCG over the covering
//! DP so experiments can quantify what SSAM trades away:
//!
//! * **allocation efficiency** — `OPT ≤ SSAM social cost ≤ π·OPT`;
//! * **overpayment** — how SSAM's critical-value payments compare with
//!   VCG's externality payments.
//!
//! # Examples
//!
//! ```
//! use edge_auction::bid::Bid;
//! use edge_auction::vcg::run_vcg;
//! use edge_auction::wsp::WspInstance;
//! use edge_common::id::{BidId, MicroserviceId};
//!
//! # fn main() -> Result<(), edge_auction::AuctionError> {
//! let bids = vec![
//!     Bid::new(MicroserviceId::new(0), BidId::new(0), 2, 4.0)?,
//!     Bid::new(MicroserviceId::new(1), BidId::new(0), 2, 6.0)?,
//!     Bid::new(MicroserviceId::new(2), BidId::new(0), 2, 7.0)?,
//! ];
//! let outcome = run_vcg(&WspInstance::new(4, bids)?)?;
//! assert_eq!(outcome.social_cost.value(), 10.0); // optimal: sellers 0 + 1
//! assert!(outcome.winners.iter().all(|w| w.payment >= w.price));
//! # Ok(())
//! # }
//! ```

use crate::error::AuctionError;
use crate::wsp::WspInstance;
use edge_common::id::{BidId, MicroserviceId};
use edge_common::units::Price;
use serde::{Deserialize, Serialize};

/// One VCG winner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcgWinner {
    /// The selling microservice.
    pub seller: MicroserviceId,
    /// Which alternative bid was selected by the exact optimum.
    pub bid: BidId,
    /// Units offered by the selected bid.
    pub amount: u64,
    /// Asking price.
    pub price: Price,
    /// Externality payment `OPT₋ᵢ − (OPT − price_i)`.
    pub payment: Price,
}

/// Outcome of the VCG mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcgOutcome {
    /// Winners of the exact optimum.
    pub winners: Vec<VcgWinner>,
    /// The exact optimal social cost `OPT`.
    pub social_cost: Price,
    /// Σ externality payments.
    pub total_payment: Price,
}

/// Runs VCG: exact winner selection by the covering DP, externality
/// payments from the re-solved instance without each winner.
///
/// # Errors
///
/// Returns [`AuctionError::InfeasibleDemand`] if the instance (already
/// validated at construction) somehow cannot be covered — kept for
/// interface symmetry with the approximate mechanisms.
pub fn run_vcg(instance: &WspInstance) -> Result<VcgOutcome, AuctionError> {
    let cover = instance.to_group_cover();
    let Some(opt) = cover.solve_exact() else {
        return Err(AuctionError::InfeasibleDemand {
            demand: instance.demand(),
            supply: instance.max_supply(),
        });
    };

    let mut winners = Vec::new();
    for (g, choice) in opt.chosen.iter().enumerate() {
        let Some(j) = choice else { continue };
        let bid = &instance.groups()[g][*j];
        // Re-solve without this seller.
        let others: Vec<crate::bid::Bid> = instance
            .bids()
            .filter(|b| b.seller != bid.seller)
            .copied()
            .collect();
        let payment_value = match WspInstance::new(instance.demand(), others) {
            Ok(without) => {
                let opt_without = without
                    .to_group_cover()
                    .solve_exact()
                    .expect("feasibility checked at construction")
                    .cost;
                opt_without - (opt.cost - bid.price.value())
            }
            // Pivotal seller: the rest cannot cover. VCG's externality is
            // unbounded; pay the asking price (the same IR-safe fallback
            // as SSAM without a reserve).
            Err(AuctionError::InfeasibleDemand { .. }) => bid.price.value(),
            Err(e) => return Err(e),
        };
        winners.push(VcgWinner {
            seller: bid.seller,
            bid: bid.id,
            amount: bid.amount,
            price: bid.price,
            payment: Price::new_unchecked(payment_value.max(bid.price.value())),
        });
    }

    let social_cost = Price::new_unchecked(opt.cost);
    let total_payment: Price = winners.iter().map(|w| w.payment).sum();
    Ok(VcgOutcome {
        winners,
        social_cost,
        total_payment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bid::Bid;
    use crate::ssam::{run_ssam, SsamConfig};

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    fn instance() -> WspInstance {
        WspInstance::new(
            4,
            vec![bid(0, 0, 2, 4.0), bid(1, 0, 2, 6.0), bid(2, 0, 2, 7.0)],
        )
        .unwrap()
    }

    #[test]
    fn selects_the_exact_optimum() {
        let out = run_vcg(&instance()).unwrap();
        assert_eq!(out.social_cost.value(), 10.0);
        assert_eq!(out.winners.len(), 2);
        let sellers: Vec<_> = out.winners.iter().map(|w| w.seller.index()).collect();
        assert_eq!(sellers, vec![0, 1]);
    }

    #[test]
    fn externality_payments_by_hand() {
        // OPT = 10 (sellers 0+1). Without seller 0: OPT₋₀ = 6+7 = 13 →
        // p₀ = 13 − (10 − 4) = 7. Without seller 1: OPT₋₁ = 4+7 = 11 →
        // p₁ = 11 − (10 − 6) = 7.
        let out = run_vcg(&instance()).unwrap();
        assert_eq!(out.winners[0].payment.value(), 7.0);
        assert_eq!(out.winners[1].payment.value(), 7.0);
        assert_eq!(out.total_payment.value(), 14.0);
    }

    #[test]
    fn individual_rationality() {
        let out = run_vcg(&instance()).unwrap();
        for w in &out.winners {
            assert!(w.payment >= w.price);
        }
    }

    #[test]
    fn vcg_is_truthful_by_deviation_sweep() {
        // Raising a winner's price above its VCG payment ejects it; any
        // price below keeps the same payment.
        let inst = instance();
        let out = run_vcg(&inst).unwrap();
        let w0 = out.winners[0];
        let cheaper = crate::properties::with_price(&inst, w0.seller, w0.bid, 1.0);
        let out_cheaper = run_vcg(&cheaper).unwrap();
        let again = out_cheaper
            .winners
            .iter()
            .find(|w| w.seller == w0.seller)
            .unwrap();
        assert_eq!(
            again.payment, w0.payment,
            "payment must not depend on own bid"
        );

        let expensive =
            crate::properties::with_price(&inst, w0.seller, w0.bid, w0.payment.value() + 0.5);
        let out_exp = run_vcg(&expensive).unwrap();
        assert!(
            !out_exp.winners.iter().any(|w| w.seller == w0.seller),
            "bidding above the VCG payment must lose"
        );
    }

    #[test]
    fn ssam_cost_at_least_vcg_cost() {
        // VCG allocates optimally, so its social cost lower-bounds
        // SSAM's on every instance.
        for seed in 0..10u64 {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(3..8);
            let bids: Vec<Bid> = (0..n)
                .map(|s| bid(s, 0, rng.gen_range(1..5), rng.gen_range(2..30) as f64))
                .collect();
            let supply: u64 = bids.iter().map(|b| b.amount).sum();
            let inst = WspInstance::new(rng.gen_range(1..=supply), bids).unwrap();
            let vcg = run_vcg(&inst).unwrap();
            let ssam = run_ssam(&inst, &SsamConfig::default()).unwrap();
            assert!(
                ssam.social_cost.value() >= vcg.social_cost.value() - 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lone_pivotal_seller_paid_its_price() {
        let inst = WspInstance::new(2, vec![bid(0, 0, 3, 9.0)]).unwrap();
        let out = run_vcg(&inst).unwrap();
        assert_eq!(out.winners[0].payment.value(), 9.0);
    }
}
