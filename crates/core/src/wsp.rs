//! The single-round Winner Selection Problem (WSP).
//!
//! Given the round's aggregate resource demand `X^t` (constraint (10))
//! and each seller's alternative bids, choose at most one bid per seller
//! (constraint (9)) so the chosen amounts cover the demand at minimum
//! total price — ILP (12). The problem is NP-hard (Theorem 1, by
//! reduction from weighted set cover); this module holds the validated
//! instance plus its conversions into the two exact solvers of
//! [`edge_lp`] used for the offline optimum.

use crate::bid::Bid;
use crate::error::AuctionError;
use edge_common::id::MicroserviceId;
use edge_lp::{ConstraintOp, CoverOption, GroupCover, Model, VarId};
use serde::{Deserialize, Serialize};

/// A validated single-round auction instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WspInstance {
    demand: u64,
    /// Bids grouped by seller (each inner vec = one seller's
    /// alternatives).
    groups: Vec<Vec<Bid>>,
}

impl WspInstance {
    /// Builds an instance from a flat bid list, grouping by seller.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::DuplicateBidId`] — a seller reused a bid id.
    /// * [`AuctionError::InfeasibleDemand`] — even the best bid of every
    ///   seller together cannot reach `demand`.
    pub fn new(demand: u64, bids: Vec<Bid>) -> Result<Self, AuctionError> {
        // Seller → group position, so grouping stays O(n log n) at a
        // million bids. Group order (first-seen seller) and within-group
        // bid order are exactly the flat list's, as before.
        let mut groups: Vec<Vec<Bid>> = Vec::new();
        let mut group_of: std::collections::BTreeMap<MicroserviceId, usize> =
            std::collections::BTreeMap::new();
        let mut seen_ids: std::collections::BTreeSet<(MicroserviceId, edge_common::id::BidId)> =
            std::collections::BTreeSet::new();
        for bid in bids {
            if !seen_ids.insert((bid.seller, bid.id)) {
                return Err(AuctionError::DuplicateBidId {
                    seller: bid.seller.index(),
                    bid: bid.id.index(),
                });
            }
            match group_of.get(&bid.seller) {
                Some(&gi) => groups[gi].push(bid),
                None => {
                    group_of.insert(bid.seller, groups.len());
                    groups.push(vec![bid]);
                }
            }
        }
        let instance = WspInstance { demand, groups };
        let supply = instance.max_supply();
        if supply < demand {
            return Err(AuctionError::InfeasibleDemand { demand, supply });
        }
        Ok(instance)
    }

    /// The aggregate demand `X^t` to cover.
    pub fn demand(&self) -> u64 {
        self.demand
    }

    /// Bids grouped by seller.
    pub fn groups(&self) -> &[Vec<Bid>] {
        &self.groups
    }

    /// All bids, flattened.
    pub fn bids(&self) -> impl Iterator<Item = &Bid> {
        self.groups.iter().flatten()
    }

    /// Number of distinct sellers with at least one bid.
    pub fn num_sellers(&self) -> usize {
        self.groups.len()
    }

    /// The sellers present, in first-bid order.
    pub fn sellers(&self) -> Vec<MicroserviceId> {
        self.groups.iter().map(|g| g[0].seller).collect()
    }

    /// Maximum coverable amount: best single bid per seller.
    pub fn max_supply(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.iter().map(|b| b.amount).max().unwrap_or(0))
            .sum()
    }

    /// Converts to the exact covering-DP form. Choice indices in the
    /// returned [`GroupCover`] match `self.groups()` positions.
    pub fn to_group_cover(&self) -> GroupCover {
        GroupCover::new(
            self.demand,
            self.groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|b| CoverOption::new(b.price.value(), b.amount))
                        .collect()
                })
                .collect(),
        )
    }

    /// Converts to the ILP (12) form; returns the model and the
    /// `(group, bid-in-group)` position of each variable.
    pub fn to_ilp(&self) -> (Model, Vec<(usize, usize)>) {
        let mut m = Model::new();
        let mut positions = Vec::new();
        let mut cover_terms: Vec<(VarId, f64)> = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            let mut one_per_seller: Vec<(VarId, f64)> = Vec::new();
            for (j, bid) in group.iter().enumerate() {
                let v = m
                    .add_binary(&format!("x_{g}_{j}"), bid.price.value())
                    .expect("finite validated price");
                positions.push((g, j));
                cover_terms.push((v, bid.amount as f64));
                one_per_seller.push((v, 1.0));
            }
            m.add_constraint(one_per_seller, ConstraintOp::Le, 1.0)
                .expect("valid constraint");
        }
        m.add_constraint(cover_terms, ConstraintOp::Ge, self.demand as f64)
            .expect("valid constraint");
        (m, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edge_common::id::BidId;
    use edge_lp::{solve_ilp, IlpOptions};

    fn bid(seller: usize, id: usize, amount: u64, price: f64) -> Bid {
        Bid::new(MicroserviceId::new(seller), BidId::new(id), amount, price).unwrap()
    }

    #[test]
    fn groups_by_seller() {
        let inst = WspInstance::new(
            3,
            vec![bid(0, 0, 2, 5.0), bid(1, 0, 2, 4.0), bid(0, 1, 3, 7.0)],
        )
        .unwrap();
        assert_eq!(inst.num_sellers(), 2);
        assert_eq!(inst.groups()[0].len(), 2);
        assert_eq!(inst.max_supply(), 3 + 2);
        assert_eq!(
            inst.sellers(),
            vec![MicroserviceId::new(0), MicroserviceId::new(1)]
        );
    }

    #[test]
    fn rejects_duplicate_bid_ids() {
        let err = WspInstance::new(1, vec![bid(0, 0, 2, 5.0), bid(0, 0, 3, 6.0)]).unwrap_err();
        assert_eq!(err, AuctionError::DuplicateBidId { seller: 0, bid: 0 });
    }

    #[test]
    fn rejects_infeasible_demand() {
        let err = WspInstance::new(10, vec![bid(0, 0, 2, 5.0), bid(0, 1, 3, 6.0)]).unwrap_err();
        // Only one seller; best bid covers 3 < 10.
        assert_eq!(
            err,
            AuctionError::InfeasibleDemand {
                demand: 10,
                supply: 3
            }
        );
    }

    #[test]
    fn dp_and_ilp_agree_on_the_instance() {
        let inst = WspInstance::new(
            4,
            vec![
                bid(0, 0, 2, 6.0),
                bid(0, 1, 1, 2.0),
                bid(1, 0, 2, 5.0),
                bid(1, 1, 3, 9.0),
                bid(2, 0, 2, 4.0),
            ],
        )
        .unwrap();
        let dp = inst.to_group_cover().solve_exact().unwrap();
        let (ilp, _) = inst.to_ilp();
        let bb = solve_ilp(&ilp, &IlpOptions::default()).unwrap();
        assert!((dp.cost - bb.objective).abs() < 1e-9);
        // Optimal: seller1 bid0 ($5, 2u) + seller2 bid0 ($4, 2u) = $9.
        assert_eq!(dp.cost, 9.0);
    }

    #[test]
    fn zero_demand_is_trivially_feasible() {
        let inst = WspInstance::new(0, vec![]).unwrap();
        assert_eq!(inst.max_supply(), 0);
        assert_eq!(inst.to_group_cover().solve_exact().unwrap().cost, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let inst = WspInstance::new(2, vec![bid(0, 0, 2, 5.0), bid(1, 0, 2, 4.0)]).unwrap();
        let json = serde_json::to_string(&inst).unwrap();
        let back: WspInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }
}
